"""repro — Top-k Representative Queries on Graph Databases (SIGMOD 2014).

A from-scratch reproduction of the REP model and NB-Index of Ranu, Hoang
and Singh, with every substrate (graph edit distance, metric indexes) and
every compared baseline (DisC, DIV, C-tree, M-tree) implemented in Python.

Typical usage::

    from repro import TopKRepresentativeQuery, quartile_relevance
    from repro.datasets import dud_like

    database = dud_like(num_graphs=500, seed=7)
    engine = TopKRepresentativeQuery(database)
    q = quartile_relevance(database)
    result = engine.run(q, theta=10.0, k=10)
    exemplars = [database[i] for i in result.answer]

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
reproduction results.
"""

from repro import obs
from repro.core import (
    QueryResult,
    QueryStats,
    RefinementSession,
    TopKRepresentativeQuery,
    baseline_greedy,
    lazy_greedy,
)
from repro.engine import DistanceEngine, resolve_workers
from repro.ged import ExactGED, StarDistance
from repro.graphs import (
    GraphDatabase,
    LabeledGraph,
    quartile_relevance,
)
from repro.index import NBIndex, OffLadderThetaError, QuerySession
from repro.index.errors import ReadOnlyIndexError
from repro.obs import Statable, observe
from repro.resilience import BudgetExceeded, Deadline, RetryPolicy, deadline_scope

__version__ = "1.0.0"

__all__ = [
    "LabeledGraph",
    "GraphDatabase",
    "quartile_relevance",
    "ExactGED",
    "StarDistance",
    "DistanceEngine",
    "resolve_workers",
    "NBIndex",
    "QuerySession",
    "OffLadderThetaError",
    "ShardedIndex",
    "build_shards",
    "QueryResult",
    "QueryStats",
    "TopKRepresentativeQuery",
    "RefinementSession",
    "baseline_greedy",
    "lazy_greedy",
    "obs",
    "observe",
    "Statable",
    "Deadline",
    "deadline_scope",
    "BudgetExceeded",
    "RetryPolicy",
    "open_database",
    "open_index",
    "load_index",
    "load_shards",
    "ReadOnlyIndexError",
    "__version__",
]

# repro.shard builds on repro.index and repro.obs, so it imports last.
from repro.shard import ShardedIndex, build_shards  # noqa: E402


def open_database(path) -> GraphDatabase:
    """Load a :class:`GraphDatabase` from a JSONL file (see
    :mod:`repro.graphs.io`).  The canonical way scripts and the CLI open a
    database."""
    from repro.graphs.io import load_database

    return load_database(path)


def open_index(
    path,
    database,
    distance=None,
    *,
    shards: bool | int | None = None,
    mutable: bool = False,
    journal=None,
    workers: int | None = None,
    seed: int = 0,
):
    """Open any saved index — single or sharded, read-only or mutable.

    The one entry point behind which :func:`load_index` and
    :func:`load_shards` are now deprecated shims.  Every return value
    speaks the same ``Index`` protocol — ``query(query_fn, theta, k)``,
    ``stats()``, ``insert``/``delete``/``update``/``compact`` — with the
    mutation methods raising :class:`ReadOnlyIndexError` unless the index
    was opened with ``mutable=True``.

    ``path``
        A single-index ``.npz`` artifact, a sharded bundle's
        ``manifest.json``, or the bundle directory containing one.
    ``database``
        The :class:`GraphDatabase` the index was built over, or a path to
        its JSONL file (opened via :func:`open_database`).
    ``shards``
        ``None`` (default) auto-detects from ``path``; ``True`` /
        ``False`` force the sharded / single layout; an int additionally
        requires the bundle to have exactly that many shards.
    ``mutable``
        ``True`` wraps the loaded base in a
        :class:`~repro.delta.MutableIndex`: inserts land in an
        exactly-scanned memtable, deletes tombstone, and
        ``compact()`` absorbs the memtable online — with query answers
        bit-identical to a from-scratch build at every point.
    ``journal``
        Path to a mutation journal (``mutable=True`` only).  Existing
        records are replayed over the freshly opened database before the
        base index loads — reopening a mutated deployment restores it
        exactly; subsequent mutations append durably.  A *checkpointed*
        journal (generation > 0, see
        :func:`repro.durability.checkpoint`) pins its own base database
        file next to itself and verifies its crc32 before replay; pass
        ``database`` as a **path** in that case — the journal decides
        which file actually loads.
    """
    from pathlib import Path as _Path

    if distance is None:
        distance = StarDistance()
    if journal is not None and not mutable:
        raise ValueError(
            "journal= is only meaningful with mutable=True — a read-only "
            "open would silently ignore journaled mutations"
        )
    path = _Path(path)
    if path.is_dir():
        path = path / "manifest.json"
    sharded = (
        path.suffix == ".json" if shards is None else bool(shards)
    )

    replayed = None
    if journal is not None:
        # The journal opens FIRST: a checkpointed generation's header
        # names the base file the records replay onto, overriding the
        # caller's database path.
        from repro.delta import MutationJournal
        from repro.durability.checkpoint import resolve_base_path

        replayed = MutationJournal(journal)
        if replayed.base_name is not None and not isinstance(
            database, (str, _Path)
        ):
            from repro.delta.errors import JournalError

            raise JournalError(
                f"{replayed.path}: this journal was checkpointed "
                f"(generation {replayed.generation}) and pins its own "
                f"base database file — pass database as a path, not a "
                f"loaded object, so the pinned base can load and verify"
            )
        if isinstance(database, (str, _Path)):
            base_path = resolve_base_path(replayed, database)
            database = open_database(base_path)
        replayed.replay_into(database)
    elif isinstance(database, (str, _Path)):
        database = open_database(database)

    # The index may cover fewer graphs than the (journaled) live
    # database — load it against the prefix snapshot it was built over.
    if sharded:
        from repro.shard.manifest import ShardManifest

        indexed = ShardManifest.load(path).num_graphs
    else:
        from repro.index.persistence import indexed_graph_count

        indexed = indexed_graph_count(path)
    if indexed > len(database):
        from repro.resilience import DatabaseMismatchError

        raise DatabaseMismatchError(
            f"{path}: index covers {indexed} graphs but the database "
            f"has only {len(database)} — wrong database or missing "
            f"journal"
        )
    base_db = (
        database if indexed == len(database)
        else database.subset(range(indexed))
    )
    if sharded:
        base = ShardedIndex.load(path, base_db, distance, workers=workers)
        if isinstance(shards, int) and not isinstance(shards, bool):
            from repro.utils.validation import require

            require(
                base.num_shards == shards,
                f"{path}: bundle has {base.num_shards} shards, "
                f"caller required {shards}",
            )
    else:
        from repro.index.persistence import load_index as _load_index

        base = _load_index(path, base_db, distance, workers=workers)

    if not mutable:
        return base
    from repro.delta import MutableIndex

    return MutableIndex(
        database,
        base,
        distance=distance,
        workers=workers,
        journal=replayed,
        manifest_path=path if sharded else None,
        index_path=None if sharded else path,
        seed=seed,
    )


_deprecated_loader_warned: set[str] = set()


def _warn_deprecated_loader(name: str) -> None:
    if name in _deprecated_loader_warned:
        return
    _deprecated_loader_warned.add(name)
    import warnings

    warnings.warn(
        f"repro.{name}() is deprecated; use repro.open_index(path, "
        f"database) — it auto-detects the layout and can open mutable",
        DeprecationWarning,
        stacklevel=3,
    )


def load_index(
    path,
    database: GraphDatabase,
    distance=None,
    *,
    workers: int | None = None,
) -> NBIndex:
    """Deprecated shim: use :func:`open_index` (single-index layout)."""
    _warn_deprecated_loader("load_index")
    return open_index(
        path, database, distance, shards=False, workers=workers
    )


def load_shards(
    path,
    database: GraphDatabase,
    distance=None,
    *,
    workers: int | None = None,
) -> ShardedIndex:
    """Deprecated shim: use :func:`open_index` (sharded layout)."""
    _warn_deprecated_loader("load_shards")
    return open_index(
        path, database, distance, shards=True, workers=workers
    )

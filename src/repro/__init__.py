"""repro — Top-k Representative Queries on Graph Databases (SIGMOD 2014).

A from-scratch reproduction of the REP model and NB-Index of Ranu, Hoang
and Singh, with every substrate (graph edit distance, metric indexes) and
every compared baseline (DisC, DIV, C-tree, M-tree) implemented in Python.

Typical usage::

    from repro import TopKRepresentativeQuery, quartile_relevance
    from repro.datasets import dud_like

    database = dud_like(num_graphs=500, seed=7)
    engine = TopKRepresentativeQuery(database)
    q = quartile_relevance(database)
    result = engine.run(q, theta=10.0, k=10)
    exemplars = [database[i] for i in result.answer]

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
reproduction results.
"""

from repro import obs
from repro.core import (
    QueryResult,
    QueryStats,
    RefinementSession,
    TopKRepresentativeQuery,
    baseline_greedy,
    lazy_greedy,
)
from repro.engine import DistanceEngine, resolve_workers
from repro.ged import ExactGED, StarDistance
from repro.graphs import (
    GraphDatabase,
    LabeledGraph,
    quartile_relevance,
)
from repro.index import NBIndex, OffLadderThetaError, QuerySession
from repro.obs import Statable, observe
from repro.resilience import BudgetExceeded, Deadline, RetryPolicy, deadline_scope

__version__ = "1.0.0"

__all__ = [
    "LabeledGraph",
    "GraphDatabase",
    "quartile_relevance",
    "ExactGED",
    "StarDistance",
    "DistanceEngine",
    "resolve_workers",
    "NBIndex",
    "QuerySession",
    "OffLadderThetaError",
    "ShardedIndex",
    "build_shards",
    "QueryResult",
    "QueryStats",
    "TopKRepresentativeQuery",
    "RefinementSession",
    "baseline_greedy",
    "lazy_greedy",
    "obs",
    "observe",
    "Statable",
    "Deadline",
    "deadline_scope",
    "BudgetExceeded",
    "RetryPolicy",
    "open_database",
    "load_index",
    "load_shards",
    "__version__",
]

# repro.shard builds on repro.index and repro.obs, so it imports last.
from repro.shard import ShardedIndex, build_shards  # noqa: E402


def open_database(path) -> GraphDatabase:
    """Load a :class:`GraphDatabase` from a JSONL file (see
    :mod:`repro.graphs.io`).  The canonical way scripts and the CLI open a
    database."""
    from repro.graphs.io import load_database

    return load_database(path)


def load_index(
    path,
    database: GraphDatabase,
    distance=None,
    *,
    workers: int | None = None,
) -> NBIndex:
    """Load a saved :class:`NBIndex` (see :mod:`repro.index.persistence`).

    ``distance`` defaults to :class:`StarDistance` — the metric every
    shipped index is built with; pass the original metric for custom
    builds.
    """
    from repro.index.persistence import load_index as _load_index

    if distance is None:
        distance = StarDistance()
    return _load_index(path, database, distance, workers=workers)


def load_shards(
    path,
    database: GraphDatabase,
    distance=None,
    *,
    workers: int | None = None,
) -> ShardedIndex:
    """Load a sharded NB-Index bundle from its manifest (see
    :mod:`repro.shard`).  The sharded twin of :func:`load_index`; the
    returned :class:`ShardedIndex` answers ``query()`` bit-identically to
    a single index over the same database."""
    if distance is None:
        distance = StarDistance()
    return ShardedIndex.load(path, database, distance, workers=workers)

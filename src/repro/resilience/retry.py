"""Retry policy for pool fan-out recovery.

Capped exponential backoff with multiplicative jitter — the standard shape
for "respawn and try again" loops: the exponent keeps a persistently
broken pool from being hammered, the cap bounds the worst-case stall, and
the jitter de-synchronizes concurrent engines sharing a machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.utils.validation import require


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :class:`~repro.engine.DistanceEngine` pool recovery.

    ``max_attempts`` counts *pool* attempts (the first try included);
    after they are exhausted the engine falls back to in-process serial
    evaluation, which always succeeds and is bit-identical.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        require(self.max_attempts >= 1,
                f"max_attempts must be >= 1, got {self.max_attempts}")
        require(self.base_delay >= 0.0, "base_delay must be >= 0")
        require(self.max_delay >= self.base_delay,
                "max_delay must be >= base_delay")
        require(0.0 <= self.jitter <= 1.0, "jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based): capped
        exponential backoff, jittered upward by at most ``jitter``×."""
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return base * (1.0 + self.jitter * random.random())

    def delays(self):
        """The full backoff schedule: one delay per retry.

        Yields ``max_attempts - 1`` values (the first attempt has no
        preceding sleep), each an independently jittered sample of
        :meth:`delay` for that position.
        """
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt)

"""Resilience layer: deadlines, fault-tolerant fan-out, durable writes.

The paper's value proposition — cheap queries after an expensive offline
phase — only holds in production if a pathological GED pair can't stall a
query forever, a dead pool worker can't kill a batch, and a kill -9 can't
throw away an hour-long build.  This package provides the shared
machinery; the engine, GED, index and persistence layers hook into it.

* :mod:`~repro.resilience.deadline` — budget propagation
  (:class:`Deadline`, :func:`deadline_scope`, :class:`BudgetExceeded`)
  and the exact→beam→bipartite degradation accounting.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` for pool respawn
  backoff.
* :mod:`~repro.resilience.atomicio` — atomic renames and the checksummed
  container (:func:`atomic_write`, :func:`write_checksummed`).
* :mod:`~repro.resilience.checkpoint` — resumable, bit-identical index
  builds (:class:`BuildCheckpoint`).
* :mod:`~repro.resilience.faults` — deterministic fault injection for
  tests and the ``bench_degradation`` benchmark.
* :mod:`~repro.resilience.errors` — the persistence exception hierarchy
  (all ``ValueError`` subclasses).
"""

from repro.resilience import faults
from repro.resilience.atomicio import (
    atomic_write,
    read_checksummed,
    unwrap_checksummed,
    write_checksummed,
)
from repro.resilience.deadline import (
    BudgetExceeded,
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.errors import (
    CheckpointError,
    CorruptIndexError,
    DatabaseMismatchError,
    IndexFormatError,
    PersistenceError,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "BudgetExceeded",
    "RetryPolicy",
    "faults",
    "atomic_write",
    "write_checksummed",
    "read_checksummed",
    "unwrap_checksummed",
    "PersistenceError",
    "CorruptIndexError",
    "IndexFormatError",
    "DatabaseMismatchError",
    "CheckpointError",
]

"""Deterministic fault injection for resilience tests and benchmarks.

A :class:`FaultPlan` describes which failures to inject; code under test
installs it (usually via the :func:`injected` context manager) and the
library's hook points — pool worker entry, exact-GED calls, checksummed
writes, build-stage checkpoints — consult the active plan.  With no plan
installed every hook is a cheap ``None``-check, so production paths pay
nothing.

Cross-process determinism: pool workers are forked, so they inherit the
plan installed in the parent *at pool-creation time*.  One-shot worker
crashes are coordinated through a token *file*: the first worker chunk to
atomically ``unlink`` it wins and dies; every other process sees the token
gone and proceeds.  That makes "exactly one worker crashes, exactly once"
reproducible regardless of scheduling.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class SimulatedCrash(RuntimeError):
    """Raised (in-process) by :func:`maybe_abort_stage` to simulate a kill
    between build checkpoints."""


@dataclass
class FaultPlan:
    """What to inject.  All fields default to "inject nothing".

    crash_token:
        Path to an existing file; the first pool-worker chunk to unlink it
        calls ``os._exit`` — a hard one-shot worker death.
    crash_always:
        Every pool-worker chunk dies — exercises the serial fallback.
    slow_sites:
        ``{site: seconds}`` sleeps injected at named hook sites (e.g.
        ``"ged.exact"``), at most ``slow_limit`` times per process.
    slow_limit:
        Cap on injected sleeps per process (``None`` = unlimited).
    torn_write:
        Truncate the next checksummed write mid-payload, simulating a
        torn/partial write that the checksum footer must catch.
    abort_after_stage:
        Raise :class:`SimulatedCrash` right after this build stage is
        checkpointed — the "kill -9 between stages" scenario.
    replica_kill_token:
        Path to an existing file; the first *shard replica worker* to
        unlink it at op entry dies — a hard one-shot mid-query kill.
    replica_kill_every:
        A replica worker dies once it has served this many ops —
        sustained churn: every restarted worker dies again after the
        same count, so restarts and session restores keep happening for
        the life of the plan.
    replica_kill_replicas:
        Restrict both replica-kill modes to these replica indexes
        (``None`` = any).  Chaos runs that must keep one live replica
        per shard pin kills to index 0 while index 1 survives.
    replica_wedge_token:
        Path to an existing file; the first replica worker to unlink it
        sleeps ``replica_wedge_seconds`` at op entry — the wedged-worker
        scenario (heartbeat/timeout detection, not crash detection).
    replica_wedge_seconds:
        How long a wedged replica sleeps (default 30 s — far past any
        sane op timeout, so the router must fail over, never wait).
    kill_site:
        Name of a :func:`maybe_kill_at` durability site (e.g.
        ``"durability.checkpoint.commit"``).  In-process plans raise
        :class:`SimulatedCrash` when the site is reached (after
        ``kill_skip`` earlier hits), exactly like ``abort_after_stage``;
        subprocess chaos drives the same sites via the
        ``REPRO_FAULT_KILL`` environment variable, which hard-kills with
        ``os._exit(137)`` — the honest ``kill -9`` signature.
    kill_skip:
        How many hits of ``kill_site`` to survive before dying, so a
        chaos sweep can kill at the Nth fsync/rename, not just the first.
    """

    crash_token: str | os.PathLike | None = None
    crash_always: bool = False
    slow_sites: dict = field(default_factory=dict)
    slow_limit: int | None = None
    torn_write: bool = False
    abort_after_stage: str | None = None
    replica_kill_token: str | os.PathLike | None = None
    replica_kill_every: int | None = None
    replica_kill_replicas: tuple | None = None
    replica_wedge_token: str | os.PathLike | None = None
    replica_wedge_seconds: float = 30.0
    kill_site: str | None = None
    kill_skip: int = 0


_PLAN: FaultPlan | None = None
_slow_injected = 0


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the active plan (inherited by workers forked later)."""
    global _PLAN, _slow_injected
    _PLAN = plan
    _slow_injected = 0
    _kill_hits.clear()


def clear() -> None:
    global _PLAN
    _PLAN = None
    _kill_hits.clear()


def active() -> FaultPlan | None:
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """Scoped install/clear — the idiom tests should use."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ---------------------------------------------------------------------------
# Hook sites
# ---------------------------------------------------------------------------
def maybe_crash_worker() -> None:
    """Pool-worker chunk entry.  Never called in the parent process —
    ``os._exit`` here must only ever kill a worker."""
    plan = _PLAN
    if plan is None:
        return
    if plan.crash_always:
        os._exit(3)
    if plan.crash_token is not None:
        try:
            os.unlink(plan.crash_token)  # atomic: exactly one winner
        except FileNotFoundError:
            return
        os._exit(3)


def maybe_slow(site: str) -> None:
    """Named slow-path site (e.g. the exact-GED solver)."""
    plan = _PLAN
    if plan is None:
        return
    seconds = plan.slow_sites.get(site)
    if not seconds:
        return
    global _slow_injected
    if plan.slow_limit is not None and _slow_injected >= plan.slow_limit:
        return
    _slow_injected += 1
    time.sleep(seconds)


def maybe_tear(data: bytes) -> bytes | None:
    """Checksummed-write site: the truncated bytes to write instead, or
    ``None`` for no injection.  One-shot — the plan's flag is consumed."""
    plan = _PLAN
    if plan is None or not plan.torn_write:
        return None
    plan.torn_write = False
    return data[: max(1, len(data) // 2)]


def maybe_abort_stage(stage: str) -> None:
    """Build-checkpoint site: crash after ``stage`` was durably recorded."""
    plan = _PLAN
    if plan is not None and plan.abort_after_stage == stage:
        raise SimulatedCrash(f"fault injection: killed after stage {stage!r}")


#: ``REPRO_FAULT_KILL`` parse cache: unset sentinel → (site, skip) | None.
_KILL_ENV_UNSET = object()
_kill_env = _KILL_ENV_UNSET
_kill_hits: dict = {}


def _kill_env_spec():
    """Parse ``REPRO_FAULT_KILL="site"`` or ``"site:skip"`` once."""
    global _kill_env
    if _kill_env is _KILL_ENV_UNSET:
        raw = os.environ.get("REPRO_FAULT_KILL")
        if not raw:
            _kill_env = None
        else:
            site, _, skip = raw.partition(":")
            _kill_env = (site, int(skip) if skip else 0)
    return _kill_env


def kill_site_hits(site: str) -> int:
    """How many times :func:`maybe_kill_at` matched ``site`` so far —
    lets a chaos driver learn how many fsync/rename points a stage has."""
    return _kill_hits.get(site, 0)


def maybe_kill_at(site: str) -> None:
    """Power-failure site: an fsync/rename point in a durability path.

    Two kill modes share the site names: an installed plan with
    ``kill_site`` raises :class:`SimulatedCrash` (in-process tests roll
    back and re-open), while the ``REPRO_FAULT_KILL`` environment
    variable — inherited by CLI subprocesses — dies hard with
    ``os._exit(137)``, which is as close to ``kill -9`` as a process can
    do to itself: no atexit, no flush, no finally.
    """
    plan = _PLAN
    spec = None
    if plan is not None and plan.kill_site is not None:
        spec = (plan.kill_site, plan.kill_skip, False)
    else:
        env = _kill_env_spec()
        if env is not None:
            spec = (env[0], env[1], True)
    if spec is None or spec[0] != site:
        return
    hits = _kill_hits.get(site, 0)
    _kill_hits[site] = hits + 1
    if hits < spec[1]:
        return
    if spec[2]:
        os._exit(137)
    raise SimulatedCrash(f"fault injection: killed at {site!r}")


def _replica_selected(plan: FaultPlan, replica_index: int) -> bool:
    return plan.replica_kill_replicas is None or (
        replica_index in plan.replica_kill_replicas
    )


def maybe_kill_replica(replica_index: int, ops_served: int) -> None:
    """Shard-replica op entry.  Only ever called inside a forked worker
    process — ``os._exit`` here must never kill the coordinator."""
    plan = _PLAN
    if plan is None or not _replica_selected(plan, replica_index):
        return
    if (
        plan.replica_kill_every is not None
        and ops_served >= plan.replica_kill_every
    ):
        os._exit(3)
    if plan.replica_kill_token is not None:
        try:
            os.unlink(plan.replica_kill_token)  # atomic: exactly one winner
        except FileNotFoundError:
            return
        os._exit(3)


def maybe_wedge_replica(replica_index: int) -> None:
    """Shard-replica op entry: one-shot wedge (long sleep, not death)."""
    plan = _PLAN
    if (
        plan is None
        or plan.replica_wedge_token is None
        or not _replica_selected(plan, replica_index)
    ):
        return
    try:
        os.unlink(plan.replica_wedge_token)
    except FileNotFoundError:
        return
    time.sleep(plan.replica_wedge_seconds)

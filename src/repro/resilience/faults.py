"""Deterministic fault injection for resilience tests and benchmarks.

A :class:`FaultPlan` describes which failures to inject; code under test
installs it (usually via the :func:`injected` context manager) and the
library's hook points — pool worker entry, exact-GED calls, checksummed
writes, build-stage checkpoints — consult the active plan.  With no plan
installed every hook is a cheap ``None``-check, so production paths pay
nothing.

Cross-process determinism: pool workers are forked, so they inherit the
plan installed in the parent *at pool-creation time*.  One-shot worker
crashes are coordinated through a token *file*: the first worker chunk to
atomically ``unlink`` it wins and dies; every other process sees the token
gone and proceeds.  That makes "exactly one worker crashes, exactly once"
reproducible regardless of scheduling.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class SimulatedCrash(RuntimeError):
    """Raised (in-process) by :func:`maybe_abort_stage` to simulate a kill
    between build checkpoints."""


@dataclass
class FaultPlan:
    """What to inject.  All fields default to "inject nothing".

    crash_token:
        Path to an existing file; the first pool-worker chunk to unlink it
        calls ``os._exit`` — a hard one-shot worker death.
    crash_always:
        Every pool-worker chunk dies — exercises the serial fallback.
    slow_sites:
        ``{site: seconds}`` sleeps injected at named hook sites (e.g.
        ``"ged.exact"``), at most ``slow_limit`` times per process.
    slow_limit:
        Cap on injected sleeps per process (``None`` = unlimited).
    torn_write:
        Truncate the next checksummed write mid-payload, simulating a
        torn/partial write that the checksum footer must catch.
    abort_after_stage:
        Raise :class:`SimulatedCrash` right after this build stage is
        checkpointed — the "kill -9 between stages" scenario.
    replica_kill_token:
        Path to an existing file; the first *shard replica worker* to
        unlink it at op entry dies — a hard one-shot mid-query kill.
    replica_kill_every:
        A replica worker dies once it has served this many ops —
        sustained churn: every restarted worker dies again after the
        same count, so restarts and session restores keep happening for
        the life of the plan.
    replica_kill_replicas:
        Restrict both replica-kill modes to these replica indexes
        (``None`` = any).  Chaos runs that must keep one live replica
        per shard pin kills to index 0 while index 1 survives.
    replica_wedge_token:
        Path to an existing file; the first replica worker to unlink it
        sleeps ``replica_wedge_seconds`` at op entry — the wedged-worker
        scenario (heartbeat/timeout detection, not crash detection).
    replica_wedge_seconds:
        How long a wedged replica sleeps (default 30 s — far past any
        sane op timeout, so the router must fail over, never wait).
    """

    crash_token: str | os.PathLike | None = None
    crash_always: bool = False
    slow_sites: dict = field(default_factory=dict)
    slow_limit: int | None = None
    torn_write: bool = False
    abort_after_stage: str | None = None
    replica_kill_token: str | os.PathLike | None = None
    replica_kill_every: int | None = None
    replica_kill_replicas: tuple | None = None
    replica_wedge_token: str | os.PathLike | None = None
    replica_wedge_seconds: float = 30.0


_PLAN: FaultPlan | None = None
_slow_injected = 0


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the active plan (inherited by workers forked later)."""
    global _PLAN, _slow_injected
    _PLAN = plan
    _slow_injected = 0


def clear() -> None:
    global _PLAN
    _PLAN = None


def active() -> FaultPlan | None:
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """Scoped install/clear — the idiom tests should use."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ---------------------------------------------------------------------------
# Hook sites
# ---------------------------------------------------------------------------
def maybe_crash_worker() -> None:
    """Pool-worker chunk entry.  Never called in the parent process —
    ``os._exit`` here must only ever kill a worker."""
    plan = _PLAN
    if plan is None:
        return
    if plan.crash_always:
        os._exit(3)
    if plan.crash_token is not None:
        try:
            os.unlink(plan.crash_token)  # atomic: exactly one winner
        except FileNotFoundError:
            return
        os._exit(3)


def maybe_slow(site: str) -> None:
    """Named slow-path site (e.g. the exact-GED solver)."""
    plan = _PLAN
    if plan is None:
        return
    seconds = plan.slow_sites.get(site)
    if not seconds:
        return
    global _slow_injected
    if plan.slow_limit is not None and _slow_injected >= plan.slow_limit:
        return
    _slow_injected += 1
    time.sleep(seconds)


def maybe_tear(data: bytes) -> bytes | None:
    """Checksummed-write site: the truncated bytes to write instead, or
    ``None`` for no injection.  One-shot — the plan's flag is consumed."""
    plan = _PLAN
    if plan is None or not plan.torn_write:
        return None
    plan.torn_write = False
    return data[: max(1, len(data) // 2)]


def maybe_abort_stage(stage: str) -> None:
    """Build-checkpoint site: crash after ``stage`` was durably recorded."""
    plan = _PLAN
    if plan is not None and plan.abort_after_stage == stage:
        raise SimulatedCrash(f"fault injection: killed after stage {stage!r}")


def _replica_selected(plan: FaultPlan, replica_index: int) -> bool:
    return plan.replica_kill_replicas is None or (
        replica_index in plan.replica_kill_replicas
    )


def maybe_kill_replica(replica_index: int, ops_served: int) -> None:
    """Shard-replica op entry.  Only ever called inside a forked worker
    process — ``os._exit`` here must never kill the coordinator."""
    plan = _PLAN
    if plan is None or not _replica_selected(plan, replica_index):
        return
    if (
        plan.replica_kill_every is not None
        and ops_served >= plan.replica_kill_every
    ):
        os._exit(3)
    if plan.replica_kill_token is not None:
        try:
            os.unlink(plan.replica_kill_token)  # atomic: exactly one winner
        except FileNotFoundError:
            return
        os._exit(3)


def maybe_wedge_replica(replica_index: int) -> None:
    """Shard-replica op entry: one-shot wedge (long sleep, not death)."""
    plan = _PLAN
    if (
        plan is None
        or plan.replica_wedge_token is None
        or not _replica_selected(plan, replica_index)
    ):
        return
    try:
        os.unlink(plan.replica_wedge_token)
    except FileNotFoundError:
        return
    time.sleep(plan.replica_wedge_seconds)

"""Checkpointed NB-Index builds.

``NBIndex.build(checkpoint=path)`` snapshots each completed build stage —
vantage selection, the vantage embedding, the threshold ladder, the
flattened NB-Tree — into a single checksummed, atomically replaced file.
A build killed between stages resumes with ``resume=True`` and, because
the RNG state is checkpointed alongside every stage that consumes it,
produces a **bit-identical** index to an uninterrupted build.

The file is the same container + ``.npz`` pairing as the index itself
(see :mod:`repro.resilience.atomicio`): stage arrays are stored under
``"<stage>.<key>"``, the completed-stage list under ``"stages"``, and the
database fingerprint guards against resuming someone else's build.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.resilience import faults
from repro.resilience.atomicio import unwrap_checksummed, write_checksummed
from repro.resilience.errors import CheckpointError, DatabaseMismatchError

_META_KEYS = frozenset({"stages", "fingerprint"})


class BuildCheckpoint:
    """Accumulating stage snapshots for one index build."""

    def __init__(self, path: str | Path, fingerprint: np.ndarray):
        self.path = Path(path)
        self._fingerprint = np.asarray(fingerprint)
        self._stages: list[str] = []
        self._arrays: dict[str, np.ndarray] = {}

    @classmethod
    def open(cls, path: str | Path, database, resume: bool = False) -> "BuildCheckpoint":
        """Start (or, with ``resume=True`` and an existing file, reload) a
        checkpoint for ``database``."""
        # Lazy import: persistence imports the index package; this module
        # must stay importable from anywhere.
        from repro.index.persistence import database_fingerprint

        checkpoint = cls(path, database_fingerprint(database))
        if resume and checkpoint.path.exists():
            checkpoint._load()
        return checkpoint

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        payload = unwrap_checksummed(
            self.path.read_bytes(), source=str(self.path)
        )
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            if "stages" not in data.files or "fingerprint" not in data.files:
                raise CheckpointError(
                    f"{self.path}: not a build checkpoint (missing metadata)"
                )
            stored = data["fingerprint"]
            if stored.shape != self._fingerprint.shape or not bool(
                (stored == self._fingerprint).all()
            ):
                raise DatabaseMismatchError(
                    f"{self.path}: checkpoint fingerprint does not match the "
                    f"provided database"
                )
            self._stages = [str(stage) for stage in data["stages"]]
            self._arrays = {
                key: data[key].copy()
                for key in data.files
                if key not in _META_KEYS
            }

    def completed(self, stage: str) -> bool:
        return stage in self._stages

    @property
    def stages(self) -> tuple[str, ...]:
        return tuple(self._stages)

    def array(self, stage: str, key: str) -> np.ndarray:
        try:
            return self._arrays[f"{stage}.{key}"]
        except KeyError:
            raise CheckpointError(
                f"{self.path}: stage {stage!r} has no array {key!r}"
            ) from None

    def stage_arrays(self, stage: str) -> dict[str, np.ndarray]:
        """All arrays recorded for ``stage``, keyed without the prefix."""
        prefix = stage + "."
        return {
            key[len(prefix):]: value
            for key, value in self._arrays.items()
            if key.startswith(prefix)
        }

    def restore_rng(self, stage: str, rng) -> None:
        """Reset ``rng`` to its state right after ``stage`` completed."""
        blob = self._arrays.get(f"{stage}.rng")
        if blob is None:
            raise CheckpointError(
                f"{self.path}: stage {stage!r} recorded no RNG state"
            )
        rng.bit_generator.state = json.loads(bytes(bytearray(blob)).decode("utf-8"))

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_stage(self, stage: str, rng=None, **arrays) -> None:
        """Durably record ``stage``'s outputs (and RNG state when the stage
        consumed randomness), then hit the fault-injection site."""
        for key, value in arrays.items():
            self._arrays[f"{stage}.{key}"] = np.asarray(value)
        if rng is not None:
            state = json.dumps(rng.bit_generator.state)
            self._arrays[f"{stage}.rng"] = np.frombuffer(
                state.encode("utf-8"), dtype=np.uint8
            )
        if stage not in self._stages:
            self._stages.append(stage)
        self._flush()
        faults.maybe_abort_stage(stage)

    def _flush(self) -> None:
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            stages=np.array(self._stages),
            fingerprint=self._fingerprint,
            **self._arrays,
        )
        write_checksummed(self.path, buffer.getvalue())

    def __repr__(self) -> str:
        return f"BuildCheckpoint(path={str(self.path)!r}, stages={self._stages})"

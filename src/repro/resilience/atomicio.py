"""Atomic, checksummed file writes.

Two layers, usable independently:

* :func:`atomic_write` — the classic write-temp → flush → fsync →
  ``os.replace`` dance (plus a best-effort directory fsync), so readers
  only ever see the old file or the complete new one, never a prefix.
* :func:`write_checksummed` / :func:`unwrap_checksummed` — a tiny
  self-verifying container (magic, payload length, payload, crc32 footer)
  for binary artifacts such as the index ``.npz``.  A torn or bit-rotted
  file fails the length/checksum check and loading raises a clear
  :class:`~repro.resilience.errors.CorruptIndexError` instead of a numpy
  traceback.

The container exists because atomicity only protects writes *through this
code path*; files copied over flaky transports, truncated by full disks on
other tools, or hand-edited still reach :func:`unwrap_checksummed`, which
is the last line of defense.
"""

from __future__ import annotations

import contextlib
import os
import struct
import tempfile
import zlib
from pathlib import Path

from repro.resilience import faults
from repro.resilience.errors import CorruptIndexError

#: Container magic: "RePRo Container v1".
MAGIC = b"RPRC1\n"
_LEN = struct.Struct("<Q")
_CRC = struct.Struct("<I")


@contextlib.contextmanager
def atomic_write(path: str | os.PathLike, mode: str = "wb", encoding: str | None = None):
    """Yield a file handle whose contents replace ``path`` atomically.

    The temp file lives in the destination directory (``os.replace`` must
    not cross filesystems) and is removed if the body raises.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    # Persist the rename itself (directory entry); best-effort — some
    # filesystems refuse O_RDONLY directory fsync.
    with contextlib.suppress(OSError):
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def write_checksummed(path: str | os.PathLike, payload: bytes) -> None:
    """Atomically write ``payload`` wrapped in the checksummed container."""
    data = MAGIC + _LEN.pack(len(payload)) + payload + _CRC.pack(zlib.crc32(payload))
    torn = faults.maybe_tear(data)
    with atomic_write(path, "wb") as handle:
        handle.write(data if torn is None else torn)


def unwrap_checksummed(data: bytes, source: str = "<bytes>") -> bytes:
    """Verify and strip the container; raise :class:`CorruptIndexError`
    on any integrity failure (wrong magic, truncation, checksum)."""
    header = len(MAGIC) + _LEN.size
    if len(data) < header + _CRC.size:
        raise CorruptIndexError(
            f"{source}: truncated file ({len(data)} bytes is smaller than "
            f"the container header)"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise CorruptIndexError(
            f"{source}: bad magic — not a checksummed repro file"
        )
    (declared,) = _LEN.unpack_from(data, len(MAGIC))
    expected_total = header + declared + _CRC.size
    if len(data) != expected_total:
        raise CorruptIndexError(
            f"{source}: torn write detected — payload declares {declared} "
            f"bytes but the file holds {len(data) - header - _CRC.size}"
        )
    payload = data[header:header + declared]
    (stored_crc,) = _CRC.unpack_from(data, header + declared)
    if zlib.crc32(payload) != stored_crc:
        raise CorruptIndexError(f"{source}: checksum mismatch — file is corrupt")
    return payload


def read_checksummed(path: str | os.PathLike) -> bytes:
    """Read ``path`` and return its verified payload."""
    path = Path(path)
    return unwrap_checksummed(path.read_bytes(), source=str(path))

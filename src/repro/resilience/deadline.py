"""Deadline/budget propagation for distance evaluation.

A :class:`Deadline` carries a wall-clock budget (seconds) and/or a per-call
A* expansion budget through the query stack: callers pass it to
``NBIndex.build``/``QuerySession.query`` (or install it ambiently with
:func:`deadline_scope`), the :class:`~repro.engine.DistanceEngine` ships it
to pool workers alongside each chunk, and :class:`~repro.ged.ExactGED`
checks it during the A* search.  On expiry the exact solver raises
:class:`BudgetExceeded` and *degrades* to a polynomial upper bound instead
of stalling — see the degradation ladder in ``docs/resilience.md``.

Every degradation is recorded on the deadline itself (``degradations`` is
a ``{kind: count}`` dict), mirrored into :mod:`repro.obs` counters
(``resilience.degraded.<kind>``), and merged back from worker processes,
so a result computed under pressure is *flagged*, never silently wrong.

Expiry is an absolute ``time.monotonic()`` instant, which is comparable
across forked worker processes (same system clock), so a deadline shipped
to the pool means the same moment everywhere.
"""

from __future__ import annotations

import contextlib
import threading
import time

from repro import obs
from repro.utils.validation import require


class BudgetExceeded(Exception):
    """Raised inside a budgeted computation when its deadline expires.

    ``reason`` is ``"time"`` (wall-clock budget exhausted) or
    ``"expansions"`` (A* expansion budget exhausted with time remaining);
    the degradation ladder picks its fallback from it.
    """

    def __init__(self, reason: str, message: str | None = None):
        super().__init__(message or f"budget exceeded ({reason})")
        self.reason = reason


class Deadline:
    """A time and/or expansion budget with degradation accounting.

    Parameters
    ----------
    seconds:
        Wall-clock budget from *now*; ``None`` for no time limit.
    expansion_limit:
        Maximum A* state expansions per exact-GED call; ``None`` for no
        expansion limit.  At least one budget must be set.
    """

    def __init__(self, seconds: float | None = None, *, expansion_limit: int | None = None):
        require(
            seconds is not None or expansion_limit is not None,
            "Deadline needs a time budget (seconds) or an expansion_limit",
        )
        if seconds is not None:
            require(float(seconds) >= 0.0, f"seconds must be >= 0, got {seconds}")
        if expansion_limit is not None:
            require(int(expansion_limit) >= 1,
                    f"expansion_limit must be >= 1, got {expansion_limit}")
        self.seconds = None if seconds is None else float(seconds)
        self.expansion_limit = None if expansion_limit is None else int(expansion_limit)
        self._expires_at = (
            None if self.seconds is None else time.monotonic() + self.seconds
        )
        #: ``{degradation kind: count}`` accumulated under this deadline.
        self.degradations: dict[str, int] = {}

    @classmethod
    def from_timeout_ms(
        cls, milliseconds: float, *, expansion_limit: int | None = None
    ) -> "Deadline":
        """Millisecond-budget constructor shared by the CLI
        (``--deadline-ms``) and the service admission path."""
        require(
            float(milliseconds) >= 0.0,
            f"timeout must be >= 0 ms, got {milliseconds}",
        )
        return cls(float(milliseconds) / 1000.0, expansion_limit=expansion_limit)

    @classmethod
    def after_ms(cls, milliseconds: float, *, expansion_limit: int | None = None) -> "Deadline":
        """Alias of :meth:`from_timeout_ms` (the original CLI spelling)."""
        return cls.from_timeout_ms(milliseconds, expansion_limit=expansion_limit)

    # ------------------------------------------------------------------
    # Budget checks
    # ------------------------------------------------------------------
    def remaining(self) -> float | None:
        """Seconds left, clamped at ``0.0`` once expired; ``None`` with no
        time budget.  Never negative, so callers can use it directly as a
        wait timeout without re-clamping."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        """True once the wall-clock budget is exhausted."""
        return (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        )

    # ------------------------------------------------------------------
    # Degradation accounting
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def record_degradation(self, kind: str) -> None:
        """Note one budget-forced fallback (e.g. ``'ged.exact.bipartite'``)."""
        self.degradations[kind] = self.degradations.get(kind, 0) + 1
        obs.counter("resilience.degradations")
        obs.counter(f"resilience.degraded.{kind}")

    def merge_degradations(self, other: dict) -> None:
        """Fold a worker's degradation counts in (obs already merged via
        the worker's own registry delta — no double counting here)."""
        for kind, count in other.items():
            self.degradations[kind] = self.degradations.get(kind, 0) + int(count)

    # ------------------------------------------------------------------
    # Cross-process shipping
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Picklable form for pool payloads (absolute monotonic expiry)."""
        return {
            "seconds": self.seconds,
            "expansion_limit": self.expansion_limit,
            "expires_at": self._expires_at,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Deadline":
        """Rebuild a worker-side deadline sharing the parent's expiry."""
        deadline = cls.__new__(cls)
        deadline.seconds = state["seconds"]
        deadline.expansion_limit = state["expansion_limit"]
        deadline._expires_at = state["expires_at"]
        deadline.degradations = {}
        return deadline

    def __repr__(self) -> str:
        remaining = self.remaining()
        clock = "none" if remaining is None else f"{remaining:.3f}s"
        return (
            f"Deadline(remaining={clock}, expansion_limit={self.expansion_limit}, "
            f"degradations={sum(self.degradations.values())})"
        )


# ---------------------------------------------------------------------------
# Ambient deadline.  The stack is *thread-local*: the query service runs
# concurrent requests on worker threads, each under its own per-request
# deadline, and a shared stack would leak one request's budget into
# another.  Forked pool workers never rely on the ambient stack — the
# engine ships the deadline state inside each chunk payload.
# ---------------------------------------------------------------------------
_local = threading.local()


def _stack() -> list[Deadline]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_deadline() -> Deadline | None:
    """The innermost active deadline *on this thread*, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` as the ambient budget for the enclosed work.

    ``deadline_scope(None)`` is a no-op — an enclosing scope (if any)
    stays in effect, so plumbing code can pass its optional deadline
    through unconditionally.
    """
    if deadline is None:
        yield None
        return
    stack = _stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()

"""Exception types for the resilience layer.

Persistence failures all derive from :class:`PersistenceError`, which is a
``ValueError`` so existing ``except ValueError`` call sites (and tests)
keep working — the subclasses exist so callers can *distinguish* a corrupt
file from a version skew from a wrong database, each of which needs a
different operator response (restore from backup / upgrade the reader /
point at the right dataset).
"""

from __future__ import annotations


class PersistenceError(ValueError):
    """Base class for index/database persistence failures."""


class CorruptIndexError(PersistenceError):
    """The on-disk bytes fail their integrity check (torn/truncated write,
    bit rot, or a file that was never ours)."""


class IndexFormatError(PersistenceError):
    """The file is intact but written by an unsupported format version."""


class DatabaseMismatchError(PersistenceError):
    """The index/checkpoint fingerprint does not match the database it is
    being attached to."""


class CheckpointError(PersistenceError):
    """A build checkpoint is unusable (missing stage data, bad contents)."""

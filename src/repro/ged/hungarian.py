"""A from-scratch Hungarian (Kuhn–Munkres) assignment solver.

The star edit distance and the bipartite GED approximation both reduce to
the linear sum assignment problem.  Production call sites use
:func:`scipy.optimize.linear_sum_assignment` (LAPJV, C speed); this module
provides an independent O(n³) potentials-based implementation that the test
suite cross-validates against SciPy — so the repository is self-contained
down to the assignment solver, and a SciPy regression would be caught.

The algorithm is the shortest-augmenting-path formulation with dual
potentials (Jonker–Volgenant family): rows are inserted one at a time and
an augmenting path of minimum reduced cost is grown with Dijkstra-style
labels ``minv``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

_INF = float("inf")


def hungarian(cost) -> tuple[list[int], float]:
    """Solve the square linear sum assignment problem.

    Parameters
    ----------
    cost:
        An ``(n, n)`` array-like of finite costs.

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column assigned to row ``i``; ``total`` is
        the minimised sum of ``cost[i][assignment[i]]``.
    """
    matrix = np.asarray(cost, dtype=float)
    require(matrix.ndim == 2, f"cost must be 2-D, got {matrix.ndim}-D")
    require(
        matrix.shape[0] == matrix.shape[1],
        f"cost must be square, got {matrix.shape}; pad rectangular problems first",
    )
    require(bool(np.isfinite(matrix).all()), "cost entries must be finite")
    n = matrix.shape[0]
    if n == 0:
        return [], 0.0

    # 1-indexed potentials and matching, per the classic formulation:
    # u — row potentials, v — column potentials, p[j] — row matched to
    # column j (0 = unmatched), way[j] — previous column on the augmenting
    # path ending at j.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [_INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = _INF
            j1 = 0
            row = matrix[i0 - 1]
            u_i0 = u[i0]
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = row[j - 1] - u_i0 - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Unwind the augmenting path.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [0] * n
    for j in range(1, n + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = float(sum(matrix[i, assignment[i]] for i in range(n)))
    return assignment, total


def assignment_cost(cost) -> float:
    """Minimum total cost of a square assignment problem (value only)."""
    _, total = hungarian(cost)
    return total

"""Cheap lower bounds on graph edit distance.

These bounds cost O(|V| + |E|) per pair and are used to pre-filter pairs
before any expensive distance evaluation — by the C-tree-style baseline
index, by the exact A* search (as its admissible heuristic core), and as
sanity envelopes in tests.

All bounds assume the unit cost model; for custom constant costs they scale
by the minimum operation cost and remain valid (we keep the unit form here
since the paper's experiments use unit costs throughout).
"""

from __future__ import annotations

from repro.graphs.graph import LabeledGraph


def _histogram_matching_cost(hist_a: dict[str, int], hist_b: dict[str, int]) -> float:
    """Minimum unit cost of editing one label multiset into another.

    Matching equal labels is free, substituting a differing label costs 1,
    inserting/deleting costs 1, so the optimum is
    ``max(|A|, |B|) - |A ∩ B|`` (multiset intersection).
    """
    size_a = sum(hist_a.values())
    size_b = sum(hist_b.values())
    common = sum(min(count, hist_b.get(label, 0)) for label, count in hist_a.items())
    return float(max(size_a, size_b) - common)


def label_lower_bound(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """Node-label multiset bound: any edit path must pay at least the cost
    of reconciling the node label multisets."""
    return _histogram_matching_cost(g1.label_histogram(), g2.label_histogram())


def edge_count_lower_bound(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """Edge-count bound: each edge insertion/deletion costs 1, so any edit
    path pays at least ``| |E1| - |E2| |``."""
    return float(abs(g1.num_edges - g2.num_edges))


def size_lower_bound(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """Combined structural bound: node-label reconciliation plus the edge
    count difference.  Valid because node operations and edge
    insert/delete operations are disjoint cost pools."""
    return label_lower_bound(g1, g2) + edge_count_lower_bound(g1, g2)


def trivial_upper_bound(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """Delete everything, insert everything — always a valid edit path."""
    return float(
        g1.num_nodes + g1.num_edges + g2.num_nodes + g2.num_edges
    )

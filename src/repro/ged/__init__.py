"""Graph edit distance: exact solver, polynomial metric surrogate, bounds."""

from repro.ged.costs import UNIT_COSTS, CustomCostModel, UnitCostModel
from repro.ged.bounds import (
    edge_count_lower_bound,
    label_lower_bound,
    size_lower_bound,
    trivial_upper_bound,
)
from repro.ged.exact import DELETED, ExactGED, edit_path_cost
from repro.ged.star import StarDistance, star_assignment_value, star_ged_lower_bound
from repro.ged.bipartite import BipartiteGED, bipartite_upper_bound
from repro.ged.beam import BeamGED
from repro.ged.hungarian import assignment_cost, hungarian
from repro.ged.metric import (
    CachingDistance,
    CountingDistance,
    GraphDistance,
    check_metric_axioms,
    pairwise_matrix,
)

__all__ = [
    "UnitCostModel",
    "CustomCostModel",
    "UNIT_COSTS",
    "ExactGED",
    "DELETED",
    "edit_path_cost",
    "StarDistance",
    "star_assignment_value",
    "star_ged_lower_bound",
    "BipartiteGED",
    "BeamGED",
    "bipartite_upper_bound",
    "hungarian",
    "assignment_cost",
    "label_lower_bound",
    "edge_count_lower_bound",
    "size_lower_bound",
    "trivial_upper_bound",
    "GraphDistance",
    "CountingDistance",
    "CachingDistance",
    "pairwise_matrix",
    "check_metric_axioms",
]

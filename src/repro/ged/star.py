"""Star edit distance — a polynomial *metric* on labelled graphs.

The paper's distance is graph edit distance, which is NP-hard; its own
reference for computing/approximating GED is Zeng et al., *Comparing Stars:
On Approximating Graph Edit Distance* (PVLDB'09) [28].  Following that work,
a graph is summarized by the multiset of its vertex *stars* (vertex label +
multiset of ``(edge label, neighbor label)`` branch tokens) and two graphs
are compared by an optimal assignment between their star multisets.

Our star-to-star ground cost is designed so the resulting assignment
distance is a true metric (symmetry, identity of indiscernibles on star
multisets, and the triangle inequality) — which is exactly what the
NB-Index machinery (Theorems 3–8) requires of ``d``:

* root cost: 0/1 on label equality (a discrete metric);
* branch cost: the optimal unit-cost matching between the two branch-token
  multisets, which has the closed form ``(|deg₁ − deg₂| + L1(c₁, c₂)) / 2``
  where ``c`` are branch-token count vectors — itself a metric;
* the null star (used to pad unequal vertex counts) costs ``1 + deg`` to
  delete, consistent with the triangle inequality against real stars.

The assignment ("matching") distance over multisets with a metric ground
cost including a null element is a metric, so
:class:`StarDistance` is metric by construction; the test suite verifies the
triangle inequality property-based and against exact GED on small graphs.

The same machinery yields Zeng-style bounds on the *exact* GED:
:func:`star_ged_lower_bound` (the assignment value divided by
``max(4, Δ + 1)``) and a bipartite upper bound lives in
:mod:`repro.ged.bipartite`.
"""

from __future__ import annotations

import weakref

import numpy as np
from scipy.optimize import linear_sum_assignment
from scipy.spatial.distance import cdist

from repro import obs
from repro.graphs.graph import LabeledGraph

#: Off-diagonal padding cost — larger than any real star cost can be.
_BIG = 1e12


class _StarProfile:
    """Cached numeric star representation of one graph.

    ``roots`` are vertex-label ids, ``tokens[v]`` the sorted branch-token id
    array of vertex ``v``; the dense per-vertex token-count matrix against a
    joint vocabulary is built lazily per comparison.
    """

    __slots__ = ("roots", "token_counts", "degrees")

    def __init__(self, g: LabeledGraph):
        self.roots: list[str] = [g.node_label(v) for v in g.nodes()]
        self.degrees = np.array([g.degree(v) for v in g.nodes()], dtype=float)
        counts: list[dict[tuple[str, str], int]] = []
        for v in g.nodes():
            tokens: dict[tuple[str, str], int] = {}
            for u in g.neighbors(v):
                token = (g.edge_label(v, u), g.node_label(u))
                tokens[token] = tokens.get(token, 0) + 1
            counts.append(tokens)
        self.token_counts = counts


def _star_cost_matrix(p1: _StarProfile, p2: _StarProfile) -> np.ndarray:
    """Pairwise star ground costs between all vertices of two graphs.

    ``cost[u, v] = [root_u ≠ root_v] + (|deg_u − deg_v| + L1(c_u, c_v)) / 2``.
    """
    vocabulary: dict[tuple[str, str], int] = {}
    for counts in p1.token_counts:
        for token in counts:
            vocabulary.setdefault(token, len(vocabulary))
    for counts in p2.token_counts:
        for token in counts:
            vocabulary.setdefault(token, len(vocabulary))

    def dense(profile: _StarProfile) -> np.ndarray:
        matrix = np.zeros((len(profile.token_counts), max(len(vocabulary), 1)))
        for v, counts in enumerate(profile.token_counts):
            for token, count in counts.items():
                matrix[v, vocabulary[token]] = count
        return matrix

    c1, c2 = dense(p1), dense(p2)
    l1 = cdist(c1, c2, metric="cityblock") if len(vocabulary) else np.zeros(
        (len(p1.roots), len(p2.roots))
    )
    deg_diff = np.abs(p1.degrees[:, None] - p2.degrees[None, :])
    roots1 = np.array(p1.roots)
    roots2 = np.array(p2.roots)
    root_cost = (roots1[:, None] != roots2[None, :]).astype(float)
    return root_cost + (deg_diff + l1) / 2.0


def _padded_cost_matrix(p1: _StarProfile, p2: _StarProfile) -> np.ndarray:
    """Square Riesen–Bunke style cost matrix with null-star padding.

    Layout ``[[C, D], [I, 0]]`` where ``D`` is diagonal deletion costs
    (``1 + deg``), ``I`` diagonal insertion costs, and the zero block lets
    surplus null stars match each other for free.
    """
    n1, n2 = len(p1.roots), len(p2.roots)
    size = n1 + n2
    matrix = np.full((size, size), _BIG)
    matrix[:n1, :n2] = _star_cost_matrix(p1, p2)
    for i in range(n1):
        matrix[i, n2 + i] = 1.0 + p1.degrees[i]
    for j in range(n2):
        matrix[n1 + j, j] = 1.0 + p2.degrees[j]
    matrix[n1:, n2:] = 0.0
    return matrix


class StarDistance:
    """The star edit distance: a polynomial metric on labelled graphs.

    Instances are callables returning a float.  Star profiles are cached per
    graph object (keyed by ``id``, weakref-guarded against id recycling), so
    repeated distance evaluations against the same database — the dominant
    access pattern in all index structures — only pay the assignment cost,
    while transient graphs are evicted as they are collected.

    ``normalized=True`` divides the raw assignment value by
    ``max(4, Δ + 1)`` with ``Δ`` the larger maximum degree, following the
    lower-bound normalization of Zeng et al.; the default keeps the raw
    (integer-valued, larger-spread) distance, which matches the scale of the
    paper's edit-distance thresholds better.
    """

    def __init__(self, normalized: bool = False):
        self.normalized = normalized
        self._profiles: dict[int, tuple[weakref.ref, _StarProfile]] = {}

    def _profile(self, g: LabeledGraph) -> _StarProfile:
        # Keyed by id() for speed, guarded against id recycling: the entry
        # stores a weak reference to the graph it was computed for, and a
        # hit only counts when that referent *is* the queried graph.  The
        # weakref callback evicts entries as their graphs are collected, so
        # transient-graph workloads (property tests, live mutations) can't
        # inherit a stale profile or grow the cache without bound.
        key = id(g)
        entry = self._profiles.get(key)
        if entry is not None and entry[0]() is g:
            return entry[1]
        profile = _StarProfile(g)

        def _evict(_ref, *, _profiles=self._profiles, _key=key):
            _profiles.pop(_key, None)

        self._profiles[key] = (weakref.ref(g, _evict), profile)
        return profile

    def assignment(self, g1: LabeledGraph, g2: LabeledGraph):
        """The optimal star assignment: ``(rows, cols, raw_value)``.

        Row/column indices refer to the padded matrix; entries below the
        real vertex counts encode vertex substitutions, the rest padding.
        """
        p1, p2 = self._profile(g1), self._profile(g2)
        matrix = _padded_cost_matrix(p1, p2)
        rows, cols = linear_sum_assignment(matrix)
        value = float(matrix[rows, cols].sum())
        return rows, cols, value

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        obs.counter("ged.star.calls")
        if g1.num_nodes == 0 and g2.num_nodes == 0:
            return 0.0
        _, _, value = self.assignment(g1, g2)
        if self.normalized:
            max_degree = max(
                [g1.degree(v) for v in g1.nodes()] +
                [g2.degree(v) for v in g2.nodes()] + [0]
            )
            return value / max(4.0, max_degree + 1.0)
        return value

    def clear_cache(self) -> None:
        self._profiles.clear()

    def __repr__(self) -> str:
        return f"StarDistance(normalized={self.normalized})"


def star_assignment_value(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """Raw optimal star-assignment value λ(g1, g2) (one-shot, uncached)."""
    if g1.num_nodes == 0 and g2.num_nodes == 0:
        return 0.0
    _, _, value = StarDistance().assignment(g1, g2)
    return value


def star_ged_lower_bound(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """Zeng-style lower bound on exact GED: ``λ / max(4, Δ + 1)``.

    Each unit-cost edit operation perturbs the star assignment value by at
    most ``max(4, Δ + 1)`` (a node relabel touches its own star and every
    neighbour's branch token), so the exact GED is at least this quotient.
    """
    value = star_assignment_value(g1, g2)
    max_degree = max(
        [g1.degree(v) for v in g1.nodes()] +
        [g2.degree(v) for v in g2.nodes()] + [0]
    )
    return value / max(4.0, max_degree + 1.0)

"""Exact graph edit distance via A* search.

Computing GED is NP-hard [28]; this module implements the classical exact
A* formulation (Riesen/Bunke lineage): vertices of ``g1`` are processed in a
fixed order and each is either substituted for an unused vertex of ``g2`` or
deleted, with edge costs charged incrementally as both endpoints of an edge
become decided.  The heuristic combines a label-multiset matching bound on
the undecided vertices with an edge-count bound on the undecided edges —
both admissible, so the returned distance is exact.

Because the vertex processing order is fixed, every search state is reached
exactly once (the search space is a tree), so no closed set is needed.

This solver is meant for *small* graphs (≈ 10 vertices) — enough for the
test suite to validate every approximate distance and bound in the library,
and for exact experiments on toy databases.  Benchmark-scale databases use
the polynomial star edit distance (see :mod:`repro.ged.star` and DESIGN.md).
"""

from __future__ import annotations

import heapq
import itertools

from repro import obs
from repro.ged.costs import UNIT_COSTS, UnitCostModel
from repro.graphs.graph import LabeledGraph
from repro.resilience import faults
from repro.resilience.deadline import BudgetExceeded, current_deadline

_INF = float("inf")

#: A* loop iterations between wall-clock deadline checks (the expansion
#: budget is checked every iteration — it is just an integer compare).
_DEADLINE_STRIDE = 64

#: Sentinel in a mapping tuple meaning "this g1 vertex is deleted".
DELETED = -1


class ExactGED:
    """Exact GED oracle with a pluggable cost model.

    Instances are callables: ``distance = ExactGED()(g1, g2)``.

    Parameters
    ----------
    costs:
        The edit cost model; defaults to unit costs (the paper's setting).
    """

    def __init__(self, costs: UnitCostModel = UNIT_COSTS):
        self.costs = costs
        self._beam = None
        self._bipartite = None

    def __call__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        limit: float = _INF,
    ) -> float:
        """The exact edit distance, or ``inf`` if it provably exceeds ``limit``.

        The ``limit`` short-circuit makes range queries (``d ≤ θ``?) cheap:
        once every frontier state has ``f > limit`` the search stops.

        Under an active :class:`~repro.resilience.Deadline` the A* search
        checks its time/expansion budget as it runs; on expiry the call
        *degrades* to a polynomial upper bound (beam search while time
        remains, the bipartite bound otherwise) and records the
        degradation on the deadline — see ``docs/resilience.md``.
        """
        obs.counter("ged.exact.calls")
        faults.maybe_slow("ged.exact")
        deadline = current_deadline()
        if deadline is None:
            return _astar_ged(g1, g2, self.costs, limit)
        try:
            return _astar_ged(g1, g2, self.costs, limit, deadline)
        except BudgetExceeded as exceeded:
            return self._degrade(g1, g2, deadline, exceeded.reason)

    def _degrade(self, g1, g2, deadline, reason: str) -> float:
        """Budget expired mid-search: fall down the degradation ladder.

        An exhausted *expansion* budget with wall-clock time remaining
        affords the beam search (tighter, still polynomial); an exhausted
        *time* budget gets the cheapest bound we have, the bipartite
        assignment.  Both are upper bounds, so a ``within`` check can only
        turn false-negative, never report a spurious neighbor.
        """
        if reason == "expansions" and not deadline.expired():
            if self._beam is None:
                from repro.ged.beam import BeamGED

                self._beam = BeamGED(costs=self.costs)
            kind, fallback = "beam", self._beam
        else:
            if self._bipartite is None:
                from repro.ged.bipartite import BipartiteGED

                self._bipartite = BipartiteGED(costs=self.costs)
            kind, fallback = "bipartite", self._bipartite
        deadline.record_degradation(f"ged.exact.{kind}")
        obs.counter(f"ged.exact.degraded.{kind}")
        return float(fallback(g1, g2))

    def within(self, g1: LabeledGraph, g2: LabeledGraph, threshold: float) -> bool:
        """``d(g1, g2) <= threshold`` without always computing ``d`` fully."""
        return self(g1, g2, limit=threshold) <= threshold

    def __repr__(self) -> str:
        return f"ExactGED(costs={self.costs!r})"


def _astar_ged(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: UnitCostModel,
    limit: float,
    deadline=None,
) -> float:
    if deadline is not None and deadline.expired():
        raise BudgetExceeded("time")
    n1, n2 = g1.num_nodes, g2.num_nodes
    # Process high-degree vertices first: their edge costs are decided early,
    # which tightens g-costs and prunes sooner.
    order = sorted(range(n1), key=g1.degree, reverse=True)

    # Suffix label histograms of g1 under the processing order: labels of the
    # not-yet-processed vertices after step i.
    suffix_hists: list[dict[str, int]] = [dict() for _ in range(n1 + 1)]
    for i in range(n1 - 1, -1, -1):
        hist = dict(suffix_hists[i + 1])
        label = g1.node_label(order[i])
        hist[label] = hist.get(label, 0) + 1
        suffix_hists[i] = hist

    # Number of g1 edges with at least one endpoint still unprocessed, per
    # prefix length.  Edge (u, v) is "decided" once both endpoints are
    # processed.
    position = {v: i for i, v in enumerate(order)}
    remaining_e1 = [0] * (n1 + 1)
    for u, v, _ in g1.edges():
        decided_at = max(position[u], position[v]) + 1
        for i in range(decided_at):
            remaining_e1[i] += 1

    g2_labels = g2.label_histogram()
    total_e2 = g2.num_edges

    node_sub_max = costs.max_node_op_cost

    def heuristic(i: int, used_labels: dict[str, int], decided_e2: int) -> float:
        """Admissible bound on the cost of completing a prefix of length i."""
        remaining1 = suffix_hists[i]
        size1 = sum(remaining1.values())
        size2 = n2 - sum(used_labels.values())
        common = 0
        for label, count in remaining1.items():
            available = g2_labels.get(label, 0) - used_labels.get(label, 0)
            if available > 0:
                common += min(count, available)
        # min(size1, size2) - common substitutions of differing labels plus
        # |size1 - size2| insertions/deletions.
        sub_cost = costs.node_substitution("a", "b")
        indel_cost = costs.node_indel("a")
        node_part = sub_cost * max(0, min(size1, size2) - common) + indel_cost * abs(
            size1 - size2
        )
        edge_part = costs.edge_indel("-") * abs(
            remaining_e1[i] - (total_e2 - decided_e2)
        )
        return node_part + edge_part

    # State: (f, tiebreak, g_cost, i, mapping, used_labels, decided_e2)
    # mapping is a tuple of length i over g2 vertex ids / DELETED;
    # used_labels is the label histogram of the matched g2 vertices;
    # decided_e2 is the number of g2 edges with both endpoints matched.
    counter = itertools.count()
    start_h = heuristic(0, {}, 0)
    if start_h > limit:
        return _INF
    heap: list[tuple] = [(start_h, next(counter), 0.0, 0, (), {}, 0)]

    expanded = 0
    while heap:
        f, _, g_cost, i, mapping, used_labels, decided_e2 = heapq.heappop(heap)
        expanded += 1
        if deadline is not None:
            if (
                deadline.expansion_limit is not None
                and expanded > deadline.expansion_limit
            ):
                obs.counter("ged.exact.expansions", expanded)
                raise BudgetExceeded("expansions")
            if expanded % _DEADLINE_STRIDE == 0 and deadline.expired():
                obs.counter("ged.exact.expansions", expanded)
                raise BudgetExceeded("time")
        if f > limit:
            obs.counter("ged.exact.expansions", expanded)
            return _INF
        if i == n1:
            # Completion: insert all unused g2 vertices and every g2 edge
            # with at least one unmatched endpoint.
            used = frozenset(v for v in mapping if v != DELETED)
            completion = 0.0
            for v in g2.nodes():
                if v not in used:
                    completion += costs.node_indel(g2.node_label(v))
            for a, b, label in g2.edges():
                if a not in used or b not in used:
                    completion += costs.edge_indel(label)
            total = g_cost + completion
            if total <= limit:
                obs.counter("ged.exact.expansions", expanded)
                return total
            continue

        u = order[i]
        u_label = g1.node_label(u)
        used = set(v for v in mapping if v != DELETED)

        # Option 1: substitute u with each unused g2 vertex.
        for v in g2.nodes():
            if v in used:
                continue
            step = costs.node_substitution(u_label, g2.node_label(v))
            # Edge costs against every previously processed g1 vertex.
            for j in range(i):
                w = mapping[j]
                e1 = g1.has_edge(u, order[j])
                e2 = w != DELETED and g2.has_edge(v, w)
                if e1 and e2:
                    step += costs.edge_substitution(
                        g1.edge_label(u, order[j]), g2.edge_label(v, w)
                    )
                elif e1:
                    step += costs.edge_indel(g1.edge_label(u, order[j]))
                elif e2:
                    step += costs.edge_indel(g2.edge_label(v, w))
            new_g = g_cost + step
            new_used_labels = dict(used_labels)
            v_label = g2.node_label(v)
            new_used_labels[v_label] = new_used_labels.get(v_label, 0) + 1
            new_decided = decided_e2 + sum(
                1 for w in used if g2.has_edge(v, w)
            )
            h = heuristic(i + 1, new_used_labels, new_decided)
            new_f = new_g + h
            if new_f <= limit:
                heapq.heappush(
                    heap,
                    (new_f, next(counter), new_g, i + 1, mapping + (v,),
                     new_used_labels, new_decided),
                )

        # Option 2: delete u (its edges to processed vertices are deleted too).
        step = costs.node_indel(u_label)
        for j in range(i):
            if g1.has_edge(u, order[j]):
                step += costs.edge_indel(g1.edge_label(u, order[j]))
        new_g = g_cost + step
        h = heuristic(i + 1, used_labels, decided_e2)
        new_f = new_g + h
        if new_f <= limit:
            heapq.heappush(
                heap,
                (new_f, next(counter), new_g, i + 1, mapping + (DELETED,),
                 used_labels, decided_e2),
            )

    obs.counter("ged.exact.expansions", expanded)
    return _INF


def edit_path_cost(
    g1: LabeledGraph,
    g2: LabeledGraph,
    mapping: dict[int, int | None],
    costs: UnitCostModel = UNIT_COSTS,
) -> float:
    """Cost of the edit path induced by a *complete* vertex mapping.

    ``mapping[u]`` is the g2 vertex that g1 vertex ``u`` maps to, or ``None``
    for deletion; every g1 vertex must appear and no g2 vertex may be used
    twice.  g2 vertices absent from the image are inserted.  The result is a
    valid upper bound on the exact edit distance for any mapping, and equals
    it for an optimal one.
    """
    if set(mapping.keys()) != set(g1.nodes()):
        raise ValueError("mapping must cover every vertex of g1")
    targets = [v for v in mapping.values() if v is not None]
    if len(targets) != len(set(targets)):
        raise ValueError("mapping must be injective on matched vertices")

    total = 0.0
    # Node operations.
    for u in g1.nodes():
        v = mapping[u]
        if v is None:
            total += costs.node_indel(g1.node_label(u))
        else:
            total += costs.node_substitution(g1.node_label(u), g2.node_label(v))
    used = set(targets)
    for v in g2.nodes():
        if v not in used:
            total += costs.node_indel(g2.node_label(v))
    # Edge operations: g1 edges mapped / deleted.
    for u, w, label in g1.edges():
        mu, mw = mapping[u], mapping[w]
        if mu is not None and mw is not None and g2.has_edge(mu, mw):
            total += costs.edge_substitution(label, g2.edge_label(mu, mw))
        else:
            total += costs.edge_indel(label)
    # g2 edges with no matched pre-image are inserted.
    inverse = {v: u for u, v in mapping.items() if v is not None}
    for a, b, label in g2.edges():
        u, w = inverse.get(a), inverse.get(b)
        if u is None or w is None or not g1.has_edge(u, w):
            total += costs.edge_indel(label)
    return total

"""Beam-search graph edit distance — a tunable approximation.

Runs the same vertex-mapping search as the exact A* solver
(:mod:`repro.ged.exact`) but keeps only the ``beam_width`` most promising
partial mappings per depth.  The result is always the cost of a *complete,
feasible* edit path, hence a valid **upper bound** on the exact GED; wider
beams approach exactness (an unbounded beam is exhaustive).

This is the classic accuracy/speed dial between the one-shot bipartite
approximation (cheapest, loosest) and exact A* (exponential):

``exact ≤ beam(w) ≤ beam(1) ≈ greedy path``, and in practice
``beam(w) ≤ bipartite`` already for small ``w``.

Not a metric (like every upper-bound approximation), so not a drop-in
distance for the NB-Index — use :class:`repro.ged.star.StarDistance` for
that; beam GED is the better *estimate* when a single accurate distance
value matters.
"""

from __future__ import annotations

import heapq

from repro import obs
from repro.ged.costs import UNIT_COSTS, UnitCostModel
from repro.graphs.graph import LabeledGraph
from repro.utils.validation import require

#: Sentinel meaning "this g1 vertex is deleted" (matches repro.ged.exact).
_DELETED = -1


class BeamGED:
    """Approximate GED via beam search over vertex mappings.

    Parameters
    ----------
    beam_width:
        Partial mappings kept per depth.  1 = greedy descent; larger
        values tighten the bound toward exact GED.
    costs:
        Edit cost model (defaults to unit costs).
    """

    def __init__(self, beam_width: int = 8, costs: UnitCostModel = UNIT_COSTS):
        require(beam_width >= 1, f"beam_width must be >= 1, got {beam_width}")
        self.beam_width = beam_width
        self.costs = costs

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        obs.counter("ged.beam.calls")
        n1, n2 = g1.num_nodes, g2.num_nodes
        costs = self.costs
        order = sorted(range(n1), key=g1.degree, reverse=True)

        # Each beam entry: (cost_so_far, mapping tuple over g2 ids/_DELETED)
        beam: list[tuple[float, tuple[int, ...]]] = [(0.0, ())]
        expansions = 0
        for i in range(n1):
            u = order[i]
            u_label = g1.node_label(u)
            candidates: list[tuple[float, tuple[int, ...]]] = []
            for cost_so_far, mapping in beam:
                used = set(v for v in mapping if v != _DELETED)
                # Substitution options.
                for v in g2.nodes():
                    if v in used:
                        continue
                    step = costs.node_substitution(u_label, g2.node_label(v))
                    for j in range(i):
                        w = mapping[j]
                        e1 = g1.has_edge(u, order[j])
                        e2 = w != _DELETED and g2.has_edge(v, w)
                        if e1 and e2:
                            step += costs.edge_substitution(
                                g1.edge_label(u, order[j]),
                                g2.edge_label(v, w),
                            )
                        elif e1:
                            step += costs.edge_indel(g1.edge_label(u, order[j]))
                        elif e2:
                            step += costs.edge_indel(g2.edge_label(v, w))
                    candidates.append((cost_so_far + step, mapping + (v,)))
                # Deletion option.
                step = costs.node_indel(u_label)
                for j in range(i):
                    if g1.has_edge(u, order[j]):
                        step += costs.edge_indel(g1.edge_label(u, order[j]))
                candidates.append((cost_so_far + step, mapping + (_DELETED,)))
            expansions += len(candidates)
            beam = heapq.nsmallest(self.beam_width, candidates)
        obs.counter("ged.beam.expansions", expansions)

        best = float("inf")
        for cost_so_far, mapping in beam:
            used = set(v for v in mapping if v != _DELETED)
            completion = sum(
                costs.node_indel(g2.node_label(v))
                for v in g2.nodes() if v not in used
            )
            completion += sum(
                costs.edge_indel(label)
                for a, b, label in g2.edges()
                if a not in used or b not in used
            )
            best = min(best, cost_so_far + completion)
        return best

    def __repr__(self) -> str:
        return f"BeamGED(beam_width={self.beam_width}, costs={self.costs!r})"

"""Bipartite (assignment-based) upper bound on graph edit distance.

The optimal star assignment (see :mod:`repro.ged.star`) induces a concrete
vertex mapping between two graphs; evaluating the true cost of the edit path
implied by that mapping gives a valid *upper* bound on the exact GED — the
classic Riesen–Bunke bipartite approximation.  Together with the star lower
bound this sandwiches the exact distance:

``star_ged_lower_bound(g1, g2) ≤ GED(g1, g2) ≤ bipartite_upper_bound(g1, g2)``

The test suite verifies the sandwich against the exact A* solver on random
small graphs.
"""

from __future__ import annotations

from repro.ged.costs import UNIT_COSTS, UnitCostModel
from repro.ged.exact import edit_path_cost
from repro.ged.star import StarDistance
from repro.graphs.graph import LabeledGraph


class BipartiteGED:
    """Approximate GED from the star-assignment-induced edit path.

    Always an upper bound on exact GED (any complete mapping is a feasible
    edit path).  Not guaranteed to satisfy the triangle inequality, so it is
    *not* a drop-in metric for the NB-Index — use :class:`StarDistance` for
    that — but it is the natural "accurate-but-cheap" estimate when a single
    distance value is needed.
    """

    def __init__(self, costs: UnitCostModel = UNIT_COSTS):
        self.costs = costs
        self._star = StarDistance()

    def mapping(self, g1: LabeledGraph, g2: LabeledGraph) -> dict[int, int | None]:
        """The vertex mapping induced by the optimal star assignment."""
        n1, n2 = g1.num_nodes, g2.num_nodes
        rows, cols, _ = self._star.assignment(g1, g2)
        mapping: dict[int, int | None] = {}
        for r, c in zip(rows, cols):
            if r < n1:
                mapping[int(r)] = int(c) if c < n2 else None
        return mapping

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        if g1.num_nodes == 0:
            return float(
                sum(self.costs.node_indel(g2.node_label(v)) for v in g2.nodes())
                + sum(self.costs.edge_indel(label) for _, _, label in g2.edges())
            )
        return edit_path_cost(g1, g2, self.mapping(g1, g2), self.costs)

    def __repr__(self) -> str:
        return f"BipartiteGED(costs={self.costs!r})"


def bipartite_upper_bound(g1: LabeledGraph, g2: LabeledGraph) -> float:
    """One-shot upper bound on exact GED (unit costs)."""
    return BipartiteGED()(g1, g2)

"""Distance facades: counting, caching and batch evaluation.

Every index structure and algorithm in the library takes a *distance* — any
callable ``(LabeledGraph, LabeledGraph) → float``.  The wrappers here add
the two cross-cutting capabilities the experiments need:

* :class:`CountingDistance` — counts evaluations, because "number of edit
  distance computations" is the quantity the paper's index design optimizes
  (e.g. "< 1% of the candidate pairs" during index construction, Sec. 8.3.2);
* :class:`CachingDistance` — memoizes symmetric pairs by graph id, the
  access pattern of the greedy loop, which touches the same θ-neighborhoods
  repeatedly.

:func:`pairwise_matrix` materializes a full distance matrix — the paper's
"best-case running time" baseline (inset of Fig. 5(i)).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.graphs.graph import LabeledGraph

GraphDistanceFn = Callable[[LabeledGraph, LabeledGraph], float]


class GraphDistance(Protocol):
    """Structural distance between two labelled graphs."""

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float: ...


def _pair_key(g1: LabeledGraph, g2: LabeledGraph) -> tuple:
    """Symmetric cache key.

    Uses ``graph_id`` when both graphs carry one (the database case), falling
    back to object identity for free-standing graphs.
    """
    a = g1.graph_id if g1.graph_id is not None else -id(g1)
    b = g2.graph_id if g2.graph_id is not None else -id(g2)
    return (a, b) if a <= b else (b, a)


class CountingDistance:
    """Wrap a distance and count how many times it is evaluated."""

    def __init__(self, inner: GraphDistanceFn):
        self.inner = inner
        self.calls = 0

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        self.calls += 1
        return self.inner(g1, g2)

    def reset(self) -> None:
        self.calls = 0

    def stats(self) -> dict:
        """Counter snapshot, merged with any wrapped stats-bearing layer.

        The wrappers compose in either order: ``Counting(Caching(d))`` and
        ``Caching(Counting(d))`` both report the same ``evaluations`` (real
        metric computations), ``cache_hits`` and ``hit_rate``.
        """
        stats = {"calls": self.calls, "evaluations": self.calls}
        inner_stats = getattr(self.inner, "stats", None)
        if callable(inner_stats):
            inner = inner_stats()
            # A cache below us absorbs hits: our call count includes them,
            # but only its misses reached the real metric.
            if "cache_misses" in inner:
                stats["evaluations"] = inner["evaluations"]
            for key, value in inner.items():
                stats.setdefault(key, value)
        return stats

    def __repr__(self) -> str:
        return f"CountingDistance(calls={self.calls}, inner={self.inner!r})"


class CachingDistance:
    """Wrap a distance with a symmetric memo cache.

    ``hits``/``misses`` are tracked so experiments can report both the cache
    effectiveness and the number of *distinct* distance computations.
    """

    def __init__(self, inner: GraphDistanceFn):
        self.inner = inner
        self._cache: dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        key = _pair_key(g1, g2)
        value = self._cache.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = float(self.inner(g1, g2))
        self._cache[key] = value
        return value

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Counter snapshot, merged with any wrapped stats-bearing layer."""
        lookups = self.hits + self.misses
        stats = {
            "calls": lookups,
            "evaluations": self.misses,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "cache_size": len(self._cache),
        }
        inner_stats = getattr(self.inner, "stats", None)
        if callable(inner_stats):
            for key, value in inner_stats().items():
                stats.setdefault(key, value)
        return stats

    def __repr__(self) -> str:
        return (
            f"CachingDistance(size={len(self._cache)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def pairwise_matrix(
    graphs: Sequence[LabeledGraph],
    distance: GraphDistanceFn,
    engine=None,
) -> np.ndarray:
    """Full symmetric pairwise distance matrix (zero diagonal).

    O(n²/2) distance evaluations — the cost the NB-Index exists to avoid;
    used as the best-case comparator and in exact tests.  Pass a
    :class:`~repro.engine.DistanceEngine` to evaluate the triangle in
    batches (identical values, same row-major order).
    """
    if engine is not None:
        return engine.matrix(graphs)
    n = len(graphs)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = float(distance(graphs[i], graphs[j]))
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix


def check_metric_axioms(
    graphs: Sequence[LabeledGraph],
    distance: GraphDistanceFn,
    tolerance: float = 1e-9,
) -> list[str]:
    """Exhaustively check metric axioms over a small set of graphs.

    Returns a list of human-readable violations (empty = all axioms hold).
    Intended for tests and for validating user-supplied distances before
    they are handed to the NB-Index, whose correctness depends on them.
    """
    violations: list[str] = []
    n = len(graphs)
    matrix = pairwise_matrix(graphs, distance)
    for i in range(n):
        if abs(float(distance(graphs[i], graphs[i]))) > tolerance:
            violations.append(f"d(g{i}, g{i}) != 0")
        for j in range(i + 1, n):
            forward = float(distance(graphs[i], graphs[j]))
            backward = float(distance(graphs[j], graphs[i]))
            if abs(forward - backward) > tolerance:
                violations.append(f"d(g{i}, g{j}) != d(g{j}, g{i})")
            if forward < -tolerance:
                violations.append(f"d(g{i}, g{j}) < 0")
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if matrix[i, k] > matrix[i, j] + matrix[j, k] + tolerance:
                    violations.append(
                        f"triangle violated: d(g{i}, g{k}) > "
                        f"d(g{i}, g{j}) + d(g{j}, g{k})"
                    )
    return violations

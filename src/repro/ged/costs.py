"""Edit cost models for graph edit distance.

The paper (Definition 2) uses the *classical* graph edit distance: the
minimum total cost of node insertions/deletions/substitutions and edge
insertions/deletions/substitutions transforming one graph into another.
For the triangle-inequality machinery of Section 6 to hold, the individual
operation costs must themselves be metric (Sec. 6.1).

:class:`UnitCostModel` is the standard unit-cost scheme (every operation
costs 1; substituting an identical label costs 0), which is metric.
:class:`CustomCostModel` admits different constant weights and validates the
triangle constraints that keep the resulting edit distance a metric.
"""

from __future__ import annotations

from repro.utils.validation import require, require_positive


class UnitCostModel:
    """Unit edit costs: indel = 1, substitution = 0/1 by label equality.

    This is the cost scheme of the paper's experiments and of the cited
    GED references [12, 28].
    """

    def node_substitution(self, label_a: str, label_b: str) -> float:
        return 0.0 if label_a == label_b else 1.0

    def node_indel(self, label: str) -> float:
        return 1.0

    def edge_substitution(self, label_a: str, label_b: str) -> float:
        return 0.0 if label_a == label_b else 1.0

    def edge_indel(self, label: str) -> float:
        return 1.0

    @property
    def max_node_op_cost(self) -> float:
        """Upper bound on any single node operation — used by heuristics."""
        return 1.0

    @property
    def max_edge_op_cost(self) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "UnitCostModel()"


class CustomCostModel(UnitCostModel):
    """Constant-weight cost model with metric validation.

    Parameters
    ----------
    node_sub, node_ins_del, edge_sub, edge_ins_del:
        Costs of substituting a differing node label, inserting/deleting a
        node, substituting a differing edge label, and inserting/deleting an
        edge.  Substituting an identical label is always free.

    The discrete-metric triangle constraints require
    ``node_sub <= 2 * node_ins_del`` and ``edge_sub <= 2 * edge_ins_del``;
    violating either can break the triangle inequality of the edit distance,
    so they are enforced here.
    """

    def __init__(
        self,
        node_sub: float = 1.0,
        node_ins_del: float = 1.0,
        edge_sub: float = 1.0,
        edge_ins_del: float = 1.0,
    ):
        require_positive(node_sub, "node_sub")
        require_positive(node_ins_del, "node_ins_del")
        require_positive(edge_sub, "edge_sub")
        require_positive(edge_ins_del, "edge_ins_del")
        require(
            node_sub <= 2 * node_ins_del,
            "node_sub must be <= 2 * node_ins_del for the edit distance "
            "to remain a metric",
        )
        require(
            edge_sub <= 2 * edge_ins_del,
            "edge_sub must be <= 2 * edge_ins_del for the edit distance "
            "to remain a metric",
        )
        self._node_sub = float(node_sub)
        self._node_indel = float(node_ins_del)
        self._edge_sub = float(edge_sub)
        self._edge_indel = float(edge_ins_del)

    def node_substitution(self, label_a: str, label_b: str) -> float:
        return 0.0 if label_a == label_b else self._node_sub

    def node_indel(self, label: str) -> float:
        return self._node_indel

    def edge_substitution(self, label_a: str, label_b: str) -> float:
        return 0.0 if label_a == label_b else self._edge_sub

    def edge_indel(self, label: str) -> float:
        return self._edge_indel

    @property
    def max_node_op_cost(self) -> float:
        return max(self._node_sub, self._node_indel)

    @property
    def max_edge_op_cost(self) -> float:
        return max(self._edge_sub, self._edge_indel)

    def __repr__(self) -> str:
        return (
            f"CustomCostModel(node_sub={self._node_sub:g}, "
            f"node_ins_del={self._node_indel:g}, "
            f"edge_sub={self._edge_sub:g}, "
            f"edge_ins_del={self._edge_indel:g})"
        )


#: Shared default instance — the cost model of the paper's experiments.
UNIT_COSTS = UnitCostModel()

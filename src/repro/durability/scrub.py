"""Background scrubber: continuous re-verification of cold artifacts.

Checksums only help if someone reads them.  The scrubber walks a live
deployment's on-disk artifacts — shard ``.npz`` files against the
manifest's crc32s, the manifest against its own footer, the mutation
journal's per-record crc32s, a checkpointed journal's pinned base file —
and re-verifies every one, so bit rot is found on the scrubber's clock
instead of the next unlucky reload's.

Detection is only half the job.  A corrupt artifact is **self-healed**
when a source of truth is still live, in escalating order:

1. a replica worker still holds the artifact's original bytes in memory
   (:meth:`ReplicatedIndex.fetch_shard_bytes`) — re-fetch, verify the
   fetched crc against the manifest, atomically rewrite (the manifest is
   untouched: the bytes are the originals);
2. the loaded in-memory index object can rewrite the artifact
   (``save_index`` → verify → atomic replace).  Rewritten ``.npz`` bytes
   are *not* identical to the originals (zip metadata), so the manifest
   entry's checksum is updated and the manifest re-saved — the same
   commit discipline as compaction;
3. neither exists → :class:`~repro.durability.errors.ScrubError` is
   recorded (and raised from :meth:`Scrubber.scrub_once` with
   ``raise_errors=True``) — the operator restores from backup.

In-flight queries never stop: heals touch only files (atomic replaces)
and swap the in-memory manifest under the mutable index's write latch
when one exists.  The background loop runs in a daemon thread at low
priority (``pace_s`` sleeps between artifacts) and survives every error.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import time
import zlib
from pathlib import Path

from repro import obs
from repro.delta.journal import scan_journal
from repro.durability.errors import ScrubError
from repro.resilience.atomicio import atomic_write, unwrap_checksummed


class Scrubber:
    """Continuously re-verify one deployment's artifacts.

    ``index`` is the live index object (any of the facade's shapes:
    ``NBIndex``, ``ShardedIndex``, ``ReplicatedIndex``, ``MutableIndex``)
    or a zero-argument callable returning the current one — pass the
    service's ``lambda: manager.index`` so hot reloads and compactions
    are always scrubbed at their current generation.
    """

    def __init__(
        self,
        index,
        *,
        interval_s: float = 30.0,
        pace_s: float = 0.0,
        database_path=None,
    ):
        self._source = index
        self.interval_s = float(interval_s)
        self.pace_s = float(pace_s)
        #: Lets the scrubber verify a generation-0 journal's base too.
        self.database_path = (
            Path(database_path) if database_path is not None else None
        )
        self.cycles = 0
        self.files_checked = 0
        self.records_checked = 0
        self.corruptions = 0
        self.heals = 0
        self.escalations = 0
        self.torn_tails = 0
        self.last_report: dict | None = None
        self.last_error: str | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # One pass
    # ------------------------------------------------------------------
    def _resolve(self):
        return self._source() if callable(self._source) else self._source

    def scrub_once(self, *, raise_errors: bool = False) -> dict:
        """One full verification pass; returns the cycle report.

        With ``raise_errors=True`` (the CLI/test path) an unhealed
        corruption raises :class:`ScrubError` after the full pass, so one
        bad artifact does not hide another.
        """
        report = {
            "files": 0,
            "records": 0,
            "corruptions": [],
            "healed": [],
            "escalations": [],
            "skipped": [],
        }
        index = self._resolve()
        if index is not None:
            self._scrub_index(index, report)
        with self._lock:
            self.cycles += 1
            self.files_checked += report["files"]
            self.records_checked += report["records"]
            self.corruptions += len(report["corruptions"])
            self.heals += len(report["healed"])
            self.escalations += len(report["escalations"])
            self.last_report = report
        obs.counter("durability.scrub_cycles")
        obs.counter("durability.scrub_files", report["files"])
        obs.counter("durability.scrub_records", report["records"])
        if report["corruptions"]:
            obs.counter(
                "durability.scrub_corruptions", len(report["corruptions"])
            )
        if report["healed"]:
            obs.counter("durability.scrub_heals", len(report["healed"]))
        if report["escalations"]:
            obs.counter(
                "durability.scrub_escalations", len(report["escalations"])
            )
        if raise_errors and report["escalations"]:
            raise ScrubError(
                f"scrub found unhealable corruption: "
                f"{'; '.join(report['escalations'])}"
            )
        return report

    # ------------------------------------------------------------------
    # Dispatch over index shapes
    # ------------------------------------------------------------------
    def _scrub_index(self, index, report: dict) -> None:
        journal = getattr(index, "journal", None)
        if journal is not None:
            self._scrub_journal(journal, report)
        base = getattr(index, "base", None)
        if base is not None:  # MutableIndex: descend into the base
            if hasattr(base, "manifest"):
                manifest_path = getattr(index, "manifest_path", None) or (
                    getattr(base, "path", None)
                )
                self._scrub_bundle(
                    base, manifest_path, report,
                    latch=getattr(index, "latch", None),
                )
            else:
                self._scrub_single(
                    base, getattr(index, "index_path", None), report
                )
            return
        if hasattr(index, "manifest"):
            self._scrub_bundle(
                index, getattr(index, "path", None), report, latch=None,
            )
            return
        self._scrub_single(index, getattr(index, "index_path", None), report)

    # ------------------------------------------------------------------
    # Journal + pinned base
    # ------------------------------------------------------------------
    def _scrub_journal(self, journal, report: dict) -> None:
        path = journal.path
        if not path.exists():
            report["skipped"].append(f"{path}: journal file absent")
            return
        self._pace()
        scan = scan_journal(path)
        report["files"] += 1
        report["records"] += scan["records"]
        if scan["torn_tail"]:
            # A live writer's in-flight append looks exactly like a torn
            # tail; recovery truncates it on reopen.  Count, don't flag.
            with self._lock:
                self.torn_tails += 1
            obs.counter("durability.scrub_torn_tails")
        for problem in scan["problems"]:
            report["corruptions"].append(problem)
            report["escalations"].append(
                f"{problem} (journals carry the only copy of unfolded "
                f"mutations — restore from backup)"
            )
        base_name = scan["base"]
        base_crc = scan["base_crc32"]
        if base_name is None:
            base_path = self.database_path
            base_crc = None
        else:
            base_path = path.parent / base_name
        if base_path is None:
            return
        self._pace()
        try:
            raw = base_path.read_bytes()
        except OSError as error:
            message = f"{base_path}: journal base unreadable: {error}"
            report["corruptions"].append(message)
            report["escalations"].append(message)
            return
        report["files"] += 1
        if base_crc is not None and zlib.crc32(raw) != base_crc:
            message = (
                f"{base_path}: base database fails the crc32 pinned in "
                f"the generation-{scan['generation']} journal header"
            )
            report["corruptions"].append(message)
            report["escalations"].append(message)

    # ------------------------------------------------------------------
    # Shard bundle (ShardedIndex / ReplicatedIndex)
    # ------------------------------------------------------------------
    def _scrub_bundle(self, index, manifest_path, report, *, latch) -> None:
        from repro.shard.errors import ManifestError
        from repro.shard.manifest import ShardManifest

        manifest = index.manifest
        if manifest_path is None:
            report["skipped"].append("shard bundle has no manifest path")
            return
        manifest_path = Path(manifest_path)
        self._pace()
        if not manifest_path.exists():
            report["skipped"].append(
                f"{manifest_path}: absent (compaction swap in flight?)"
            )
        else:
            report["files"] += 1
            try:
                ShardManifest.load(manifest_path)
            except ManifestError as error:
                report["corruptions"].append(str(error))
                # The serving manifest object is the source of truth —
                # rewrite the file from it.
                manifest.save(manifest_path)
                report["healed"].append(
                    f"{manifest_path}: rewritten from the serving manifest"
                )
        for entry in manifest.shards:
            self._pace()
            artifact = manifest_path.parent / entry.path
            try:
                raw = artifact.read_bytes()
            except OSError:
                report["skipped"].append(
                    f"{artifact}: absent (compaction swap in flight?)"
                )
                continue
            report["files"] += 1
            if zlib.crc32(raw) == entry.checksum:
                continue
            report["corruptions"].append(
                f"{artifact}: crc32 mismatch against the shard manifest"
            )
            self._heal_shard(
                index, manifest_path, entry, artifact, report, latch=latch,
            )

    def _heal_shard(
        self, index, manifest_path, entry, artifact, report, *, latch,
    ) -> None:
        # 1. A live replica still holds the original bytes.
        fetch = getattr(index, "fetch_shard_bytes", None)
        if fetch is not None:
            try:
                fetched = fetch(entry.shard_id)
            except Exception as error:  # replica down ≠ unhealable yet
                report["skipped"].append(
                    f"{artifact}: replica fetch failed ({error}); trying "
                    f"local rewrite"
                )
                fetched = None
            if fetched is not None and zlib.crc32(fetched) == entry.checksum:
                with atomic_write(artifact, "wb") as handle:
                    handle.write(fetched)
                report["healed"].append(
                    f"{artifact}: re-fetched from a live replica"
                )
                return
        # 2. The loaded in-memory shard object can rewrite the artifact.
        shards = getattr(index, "shards", None)
        if shards is not None:
            from repro.index.persistence import save_index

            staging = artifact.with_name(artifact.name + ".scrub-heal")
            save_index(shards[entry.shard_id], staging)
            raw = staging.read_bytes()
            unwrap_checksummed(raw, source=str(staging))
            os.replace(staging, artifact)
            # Rewritten npz bytes differ (zip metadata) — update the
            # manifest entry's checksum and commit, as compaction does.
            manifest = index.manifest
            new_entries = tuple(
                dataclasses.replace(e, checksum=zlib.crc32(raw))
                if e.shard_id == entry.shard_id else e
                for e in manifest.shards
            )
            new_manifest = dataclasses.replace(manifest, shards=new_entries)
            new_manifest.save(manifest_path)
            swap = latch.write() if latch is not None else (
                contextlib.nullcontext()
            )
            with swap:
                index.manifest = new_manifest
            report["healed"].append(
                f"{artifact}: rewritten from the loaded shard object"
            )
            return
        # 3. Nobody holds good bytes.
        report["escalations"].append(
            f"{artifact}: corrupt and no live replica or loaded object "
            f"holds matching bytes — restore from backup"
        )

    # ------------------------------------------------------------------
    # Single checksummed .npz
    # ------------------------------------------------------------------
    def _scrub_single(self, index, index_path, report: dict) -> None:
        if index_path is None:
            return  # purely in-memory index: nothing on disk to scrub
        index_path = Path(index_path)
        self._pace()
        if not index_path.exists():
            report["skipped"].append(f"{index_path}: absent")
            return
        report["files"] += 1
        from repro.resilience.errors import CorruptIndexError

        try:
            unwrap_checksummed(
                index_path.read_bytes(), source=str(index_path)
            )
            return
        except CorruptIndexError as error:
            report["corruptions"].append(str(error))
        from repro.index.persistence import save_index

        staging = index_path.with_name(index_path.name + ".scrub-heal")
        save_index(index, staging)
        unwrap_checksummed(staging.read_bytes(), source=str(staging))
        os.replace(staging, index_path)
        report["healed"].append(
            f"{index_path}: rewritten from the loaded index object"
        )

    def _pace(self) -> None:
        if self.pace_s > 0:
            time.sleep(self.pace_s)

    # ------------------------------------------------------------------
    # Background service
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run :meth:`scrub_once` every ``interval_s`` in a daemon thread.
        Every exception is caught and recorded — the scrubber outlives
        transient failures."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.scrub_once()
                except Exception as error:  # never kill the service
                    with self._lock:
                        self.last_error = (
                            f"{type(error).__name__}: {error}"
                        )
                    obs.counter("durability.scrub_cycle_errors")

        self._thread = threading.Thread(
            target=loop, name="repro-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def status(self) -> dict:
        """Statable summary — the service's ``scrub_status`` op payload."""
        with self._lock:
            return {
                "running": self.running,
                "interval_s": self.interval_s,
                "cycles": self.cycles,
                "files_checked": self.files_checked,
                "records_checked": self.records_checked,
                "corruptions": self.corruptions,
                "heals": self.heals,
                "escalations": self.escalations,
                "torn_tails": self.torn_tails,
                "last_error": self.last_error,
                "last_report": self.last_report,
            }

    def __repr__(self) -> str:
        return (
            f"<Scrubber cycles={self.cycles} files={self.files_checked} "
            f"corruptions={self.corruptions} heals={self.heals} "
            f"running={self.running}>"
        )

"""Exception types for the durability subsystem.

All of them are :class:`~repro.resilience.errors.PersistenceError`
subclasses, so callers that already handle "the stored artifact is
unusable" (the service's typed rejections, ``repro verify``) catch these
for free.
"""

from __future__ import annotations

from repro.resilience.errors import PersistenceError


class DurabilityError(PersistenceError):
    """Base class for checkpoint/backup/restore/scrub failures."""


class CheckpointError(DurabilityError):
    """Journal checkpointing failed and was rolled back.

    The commit point is the atomic rename of the new-generation journal;
    this error means the rename either never happened (old generation
    fully intact, on disk and in memory) or happened and the process was
    then killed mid-epilogue (new generation fully intact — reopening
    sees it).  Either way ``base + journal = database`` still holds.
    The cause is chained as ``__cause__``."""


class BackupError(DurabilityError):
    """Snapshot capture failed; the staged directory was discarded and
    the target path was never created."""


class RestoreError(DurabilityError):
    """Restore refused or failed.  Verification failures are raised
    *before* any file is touched — a backup that fails its checksums
    never gets near the destination."""


class ScrubError(DurabilityError):
    """The scrubber found corruption it could not heal: no live replica
    holds matching bytes and no loaded in-memory object can rewrite the
    artifact.  Carries the artifact path in the message; surfaced through
    ``durability.scrub_escalations`` and ``Scrubber.status()``."""

"""Journal checkpointing: fold the journal into a fresh base database.

The mutation journal grows without bound — every insert carries its full
graph, and compaction cannot drop records because the original base file
still lacks the inserted graphs.  A *checkpoint* rewrites the base:

1. **Snapshot under the read latch** — the live database (tombstones
   included) and the journal's current record count.  Queries and
   mutations keep flowing the moment the latch drops.
2. **Write the new base outside any latch** —
   :func:`~repro.graphs.io.save_database` round-trips tombstones, so the
   rewritten file *is* the mutated database up to the snapshot; its
   crc32 is computed from the bytes on disk.
3. **Commit under the write latch** —
   :meth:`~repro.delta.journal.MutationJournal.start_generation` writes
   a complete replacement journal (new generation header pinning the
   base file + crc, plus any records that landed after the snapshot) and
   ``os.replace``s it over the live journal.  That single rename is the
   commit point: a crash before it rolls back to the old generation
   (old base + old journal, both untouched), a crash after it reopens
   into the new one.  ``base + journal = database`` holds on both sides.

After a quiet checkpoint the journal carries **zero** mutation records;
records appended by mutations racing the checkpoint are carried into the
new generation and still replay correctly (inserts land past the
snapshot length, deletes re-mark).

Fault sites (:func:`repro.resilience.faults.maybe_kill_at`):
``durability.checkpoint.base`` (new base durable, journal untouched),
``durability.checkpoint.journal`` (replacement staged, not yet renamed),
``durability.checkpoint.commit`` (rename done).  The power-failure smoke
kills hard at each and asserts bit-identical reopen.
"""

from __future__ import annotations

import time
import zlib
from pathlib import Path

from repro import obs
from repro.delta.errors import JournalError
from repro.delta.journal import MutationJournal
from repro.durability.errors import CheckpointError
from repro.graphs.io import load_database, save_database
from repro.resilience import faults


def base_file_name(journal_path: Path, generation: int) -> str:
    """Deterministic name of one generation's base database file (lives
    next to the journal; relocates with it)."""
    return f"{Path(journal_path).name}.base-gen{generation:04d}.jsonl"


def resolve_base_path(journal: MutationJournal, database_path=None) -> Path:
    """The database file this journal's records replay onto.

    Generation 0 replays onto the caller-provided ``database_path``; a
    checkpointed journal pins its own base file next to itself and that
    file's bytes must match the crc32 recorded in the journal header —
    a swapped or bit-rotted base raises
    :class:`~repro.delta.errors.JournalError` before any replay.
    """
    if journal.base_name is None:
        if database_path is None:
            raise JournalError(
                f"{journal.path}: generation-0 journal needs the original "
                f"database file to replay onto"
            )
        return Path(database_path)
    base_path = journal.path.parent / journal.base_name
    try:
        raw = base_path.read_bytes()
    except OSError as error:
        raise JournalError(
            f"{journal.path}: checkpointed base file {base_path} is "
            f"missing or unreadable: {error}"
        ) from error
    if zlib.crc32(raw) != journal.base_crc32:
        raise JournalError(
            f"{base_path}: base database fails the crc32 recorded in "
            f"the generation-{journal.generation} journal header — the "
            f"file is corrupt or was swapped"
        )
    return base_path


def _write_base(snapshot, journal: MutationJournal) -> tuple[str, int, int]:
    """Write the next generation's base file; returns (name, crc, bytes)."""
    name = base_file_name(journal.path, journal.generation + 1)
    base_path = journal.path.parent / name
    save_database(snapshot, base_path)  # atomic: temp + fsync + rename
    faults.maybe_kill_at("durability.checkpoint.base")
    raw = base_path.read_bytes()
    return name, zlib.crc32(raw), len(raw)


def _drop_old_base(journal: MutationJournal, old_base_name) -> None:
    """Post-commit: the superseded generation's base file is unreferenced.

    Best-effort, and only ever a file *this module* named — the user's
    original generation-0 database is never touched.
    """
    if old_base_name is None or old_base_name == journal.base_name:
        return
    try:
        (journal.path.parent / old_base_name).unlink()
    except OSError:  # pragma: no cover - cleanup is advisory
        pass


def checkpoint(mutable) -> dict:
    """Online checkpoint of a live :class:`~repro.delta.MutableIndex`.

    Concurrent queries and mutations keep serving throughout; only the
    final journal swap takes the write latch.  On any failure before the
    commit rename the old generation keeps serving — in memory and on
    disk — and :class:`CheckpointError` is raised with the cause chained.
    """
    journal = mutable.journal
    if journal is None:
        raise CheckpointError(
            "checkpoint needs a journal — open the index with "
            "journal=PATH (mutations without a journal have no durable "
            "log to fold)"
        )
    started = time.perf_counter()
    with mutable.latch.read():
        n1 = len(mutable.database)
        fold_count = journal.num_records
        # ``subset`` renumbers from zero (identity here) but does not
        # carry soft-deletion marks — re-mark them so the saved base
        # round-trips the tombstones.
        snapshot = mutable.database.subset(range(n1))
        for gid in mutable.database.deleted:
            snapshot.mark_deleted(int(gid))
    old_base_name = journal.base_name
    try:
        with obs.span(
            "durability.checkpoint", generation=journal.generation + 1,
            folded=fold_count,
        ):
            name, crc, nbytes = _write_base(snapshot, journal)
            with mutable.latch.write():
                carried = journal.records_snapshot()[fold_count:]
                journal.start_generation(
                    base_name=name, base_crc32=crc, carried_records=carried,
                )
    except Exception as error:
        obs.counter("durability.checkpoint_failures")
        raise CheckpointError(
            f"checkpoint failed — generation {journal.generation} still "
            f"serving: {type(error).__name__}: {error}"
        ) from error
    _drop_old_base(journal, old_base_name)
    obs.counter("durability.checkpoints")
    obs.observe_time(
        "durability.checkpoint_seconds", time.perf_counter() - started
    )
    report = {
        "generation": journal.generation,
        "folded_records": fold_count,
        "carried_records": journal.num_records,
        "base": journal.base_name,
        "base_crc32": journal.base_crc32,
        "base_bytes": nbytes,
        "seconds": round(time.perf_counter() - started, 6),
    }
    return report


def checkpoint_offline(database_path, journal_path) -> dict:
    """Checkpoint a journal without loading any index (the CLI path).

    Replays the journal over its base (the checkpointed base for
    generation > 0, else ``database_path``), writes the folded database
    as the next generation's base, and swaps the journal — the same
    commit discipline as the online path, minus the latches (nothing
    else holds the journal open).
    """
    started = time.perf_counter()
    journal = MutationJournal(journal_path)
    try:
        base_path = resolve_base_path(journal, database_path)
        database = load_database(base_path)
        journal.replay_into(database)
        old_base_name = journal.base_name
        fold_count = journal.num_records
        try:
            name, crc, nbytes = _write_base(database, journal)
            journal.start_generation(
                base_name=name, base_crc32=crc, carried_records=[],
            )
        except Exception as error:
            obs.counter("durability.checkpoint_failures")
            raise CheckpointError(
                f"checkpoint failed — generation {journal.generation} "
                f"still serving: {type(error).__name__}: {error}"
            ) from error
        _drop_old_base(journal, old_base_name)
    finally:
        journal.close()
    obs.counter("durability.checkpoints")
    return {
        "generation": journal.generation,
        "folded_records": fold_count,
        "carried_records": 0,
        "base": journal.base_name,
        "base_crc32": journal.base_crc32,
        "base_bytes": nbytes,
        "seconds": round(time.perf_counter() - started, 6),
    }

"""Crash-consistent snapshot, verified restore, offline verify.

A backup is one directory: every file of a deployment (database, journal,
shard manifest + npz artifacts or single index npz) copied byte-for-byte,
plus ``backup.json`` — a versioned archive manifest recording each file's
role, size and crc32, itself protected by a crc32 over its canonical
body.  The capture stages into ``<out>.tmp-<pid>`` and commits by a
single directory rename, so a half-written backup is never mistaken for
a real one; reading the source bytes can run under a read latch so a
live mutable deployment yields a consistent journal prefix.

``restore`` is verify-then-install: every checksum in the archive is
re-checked against the copied bytes *before* anything is written.  A
fresh destination is installed by staging + directory rename (all or
nothing); ``force=True`` overwrites an existing deployment with per-file
atomic replaces ordered so the journal — whose header binds the base
file by crc — lands last, making the journal swap the effective commit.

:func:`verify_deployment` is the offline auditor behind ``repro verify``:
point it at a backup directory, a shard bundle, a single ``.npz``, a
journal, or a database file and it re-checks every checksum it can reach.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import zlib
from pathlib import Path

from repro import obs
from repro.delta.journal import scan_journal
from repro.durability.errors import BackupError, RestoreError
from repro.resilience import faults
from repro.resilience.atomicio import atomic_write

BACKUP_SCHEMA = "repro.backup/v1"
MANIFEST_NAME = "backup.json"

#: Restore order: artifacts first, the journal last — its header's
#: ``base_crc32`` binds the database file, so a crash mid-install leaves
#: either no journal (old deployment, if any) or a journal whose base is
#: already in place.
_ROLE_ORDER = {"shard": 0, "index": 0, "manifest": 1, "database": 2,
               "journal": 3}


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: Path) -> None:
    with contextlib.suppress(OSError):
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------
def collect_deployment_files(
    *, database=None, journal=None, index=None, shards=None,
) -> list[tuple[Path, str]]:
    """Resolve a deployment description into ``(path, role)`` pairs.

    A checkpointed journal supersedes ``database``: its header pins the
    base file the records replay onto, and *that* is the file a restore
    must bring back.  Validation happens here — a journal that cannot
    replay or a manifest that fails its self-check refuses to be backed
    up (a backup you cannot restore from is worse than none).
    """
    from repro.shard.manifest import ShardManifest

    files: list[tuple[Path, str]] = []
    if journal is not None:
        journal = Path(journal)
        report = scan_journal(journal)
        if report["problems"]:
            raise BackupError(
                f"{journal}: journal is not replayable: "
                f"{'; '.join(report['problems'])}"
            )
        files.append((journal, "journal"))
        if report["base"] is not None:
            files.append((journal.parent / report["base"], "database"))
        elif database is not None:
            files.append((Path(database), "database"))
        else:
            raise BackupError(
                f"{journal}: generation-0 journal needs the database "
                f"file it replays onto (pass database=)"
            )
    elif database is not None:
        files.append((Path(database), "database"))
    if index is not None and shards is not None:
        raise BackupError("pass index= or shards=, not both")
    if index is not None:
        files.append((Path(index), "index"))
    if shards is not None:
        manifest_path = Path(shards)
        if manifest_path.is_dir():
            manifest_path = manifest_path / "manifest.json"
        manifest = ShardManifest.load(manifest_path)  # typed ManifestError
        files.append((manifest_path, "manifest"))
        for entry in manifest.shards:
            files.append((manifest_path.parent / entry.path, "shard"))
    if not files:
        raise BackupError(
            "nothing to back up — pass database=/journal= and optionally "
            "index= or shards="
        )
    seen: dict[str, Path] = {}
    for path, _role in files:
        previous = seen.get(path.name)
        if previous is not None and previous != path:
            raise BackupError(
                f"backup flattens files by name and {path.name!r} appears "
                f"twice ({previous} and {path}); rename one"
            )
        seen[path.name] = path
    return files


def create_backup(
    out_dir,
    *,
    database=None,
    journal=None,
    index=None,
    shards=None,
    latch=None,
) -> dict:
    """Capture one crash-consistent snapshot into directory ``out_dir``.

    ``latch`` (optional) is a read-write latch whose *read* side is held
    while the source bytes are read — pass the live
    :class:`~repro.delta.MutableIndex`'s latch so no mutation or
    checkpoint swap lands mid-copy.  The target directory must not exist;
    the staged copy becomes visible only through the final rename.
    """
    out = Path(out_dir)
    if out.exists():
        raise BackupError(
            f"{out}: backup target already exists; back up to a fresh "
            f"directory (one backup, one directory)"
        )
    files = collect_deployment_files(
        database=database, journal=journal, index=index, shards=shards,
    )
    read_side = latch.read() if latch is not None else contextlib.nullcontext()
    with read_side:
        blobs = []
        for path, role in files:
            try:
                blobs.append((path.name, role, path.read_bytes()))
            except OSError as error:
                raise BackupError(
                    f"{path}: cannot read deployment file: {error}"
                ) from error
    stage = out.parent / f"{out.name}.tmp-{os.getpid()}"
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir(parents=True)
    try:
        entries = []
        for name, role, data in blobs:
            target = stage / name
            target.write_bytes(data)
            _fsync_file(target)
            entries.append({
                "name": name,
                "role": role,
                "bytes": len(data),
                "crc32": zlib.crc32(data),
            })
        faults.maybe_kill_at("durability.backup.copy")
        body = {"schema": BACKUP_SCHEMA, "files": entries}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        document = {"backup": body, "crc32": zlib.crc32(canonical.encode())}
        manifest_path = stage / MANIFEST_NAME
        with manifest_path.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        faults.maybe_kill_at("durability.backup.manifest")
        _fsync_dir(stage)
        os.rename(stage, out)
        _fsync_dir(out.parent)
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    faults.maybe_kill_at("durability.backup.commit")
    obs.counter("durability.backups")
    return {
        "path": str(out),
        "files": len(entries),
        "bytes": sum(entry["bytes"] for entry in entries),
        "roles": sorted({entry["role"] for entry in entries}),
    }


# ---------------------------------------------------------------------------
# Verify
# ---------------------------------------------------------------------------
def read_backup_manifest(backup_dir) -> dict:
    """Load and self-check ``backup.json``; raises :class:`BackupError`."""
    manifest_path = Path(backup_dir) / MANIFEST_NAME
    try:
        document = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BackupError(
            f"{manifest_path}: unreadable backup manifest: {error}"
        ) from error
    if not isinstance(document, dict) or "backup" not in document:
        raise BackupError(f"{manifest_path}: not a backup manifest")
    body = document["backup"]
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode()) != document.get("crc32"):
        raise BackupError(
            f"{manifest_path}: backup manifest checksum mismatch — the "
            f"archive index itself is corrupt"
        )
    if body.get("schema") != BACKUP_SCHEMA:
        raise BackupError(
            f"{manifest_path}: unsupported backup schema "
            f"{body.get('schema')!r} (this build reads {BACKUP_SCHEMA!r})"
        )
    return body


def verify_backup(backup_dir) -> dict:
    """Re-check every file in a backup against the archive manifest."""
    backup_dir = Path(backup_dir)
    problems: list[str] = []
    checked: list[str] = []
    try:
        body = read_backup_manifest(backup_dir)
    except BackupError as error:
        return {"ok": False, "problems": [str(error)], "checked": []}
    for entry in body["files"]:
        path = backup_dir / entry["name"]
        try:
            raw = path.read_bytes()
        except OSError as error:
            problems.append(f"{path}: missing from archive: {error}")
            continue
        if len(raw) != int(entry["bytes"]):
            problems.append(
                f"{path}: {len(raw)} bytes on disk, archive manifest "
                f"says {entry['bytes']}"
            )
        elif zlib.crc32(raw) != int(entry["crc32"]):
            problems.append(
                f"{path}: crc32 mismatch against the archive manifest"
            )
        else:
            checked.append(entry["name"])
    return {"ok": not problems, "problems": problems, "checked": checked}


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------
def restore_backup(backup_dir, dest_dir, *, force: bool = False) -> dict:
    """Verify a backup, then install it into ``dest_dir``.

    Every checksum is verified before any byte is written — a corrupt
    archive raises :class:`RestoreError` with the destination untouched.
    A fresh destination is installed atomically (stage + rename); with
    ``force=True`` an existing directory is overwritten file by file in
    role order with atomic replaces, the journal last.
    """
    backup_dir = Path(backup_dir)
    report = verify_backup(backup_dir)
    if not report["ok"]:
        raise RestoreError(
            f"{backup_dir}: refusing to restore from a backup that fails "
            f"verification: {'; '.join(report['problems'])}"
        )
    faults.maybe_kill_at("durability.restore.verify")
    body = read_backup_manifest(backup_dir)
    entries = sorted(
        body["files"], key=lambda e: _ROLE_ORDER.get(e["role"], 1)
    )
    dest = Path(dest_dir)
    if dest.exists():
        if not force:
            raise RestoreError(
                f"{dest}: destination exists; pass force=True "
                f"(--force) to overwrite it in place"
            )
        for entry in entries:
            raw = (backup_dir / entry["name"]).read_bytes()
            with atomic_write(dest / entry["name"], "wb") as handle:
                handle.write(raw)
            faults.maybe_kill_at("durability.restore.install")
    else:
        stage = dest.parent / f"{dest.name}.tmp-{os.getpid()}"
        if stage.exists():
            shutil.rmtree(stage)
        stage.mkdir(parents=True)
        try:
            for entry in entries:
                raw = (backup_dir / entry["name"]).read_bytes()
                target = stage / entry["name"]
                target.write_bytes(raw)
                _fsync_file(target)
                faults.maybe_kill_at("durability.restore.install")
            _fsync_dir(stage)
            os.rename(stage, dest)
            _fsync_dir(dest.parent)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
    faults.maybe_kill_at("durability.restore.commit")
    obs.counter("durability.restores")
    return {
        "path": str(dest),
        "files": len(entries),
        "roles": sorted({entry["role"] for entry in entries}),
        "forced": bool(force and dest.exists()),
    }


# ---------------------------------------------------------------------------
# Offline audit (``repro verify``)
# ---------------------------------------------------------------------------
def _verify_journal(path: Path, problems, checked) -> None:
    report = scan_journal(path)
    problems.extend(report["problems"])
    if not report["problems"]:
        checked.append(f"{path} ({report['records']} records, "
                       f"generation {report['generation']})")
    if report["base"] is not None:
        base_path = path.parent / report["base"]
        try:
            raw = base_path.read_bytes()
        except OSError as error:
            problems.append(f"{base_path}: journal base missing: {error}")
            return
        if zlib.crc32(raw) != report["base_crc32"]:
            problems.append(
                f"{base_path}: base database fails the crc32 in the "
                f"journal header"
            )
        else:
            checked.append(str(base_path))


def _verify_manifest_bundle(path: Path, problems, checked) -> None:
    from repro.shard.errors import ManifestError
    from repro.shard.manifest import ShardManifest

    try:
        manifest = ShardManifest.load(path)
    except ManifestError as error:
        problems.append(str(error))
        return
    checked.append(str(path))
    for entry in manifest.shards:
        artifact = path.parent / entry.path
        try:
            raw = artifact.read_bytes()
        except OSError as error:
            problems.append(f"{artifact}: shard artifact missing: {error}")
            continue
        if zlib.crc32(raw) != entry.checksum:
            problems.append(
                f"{artifact}: crc32 mismatch against the shard manifest"
            )
        else:
            checked.append(str(artifact))


def verify_deployment(path) -> dict:
    """Offline checksum audit of whatever lives at ``path``.

    Dispatches on shape: a backup directory (or its ``backup.json``), a
    shard bundle directory or manifest, a checksummed index ``.npz``, a
    mutation journal (plus its pinned base file), or a database JSONL.
    Returns ``{"ok": bool, "problems": [...], "checked": [...]}``.
    """
    from repro.resilience.atomicio import read_checksummed
    from repro.resilience.errors import CorruptIndexError

    path = Path(path)
    problems: list[str] = []
    checked: list[str] = []
    if path.is_dir():
        if (path / MANIFEST_NAME).exists():
            report = verify_backup(path)
            report["checked"] = [
                str(path / name) for name in report["checked"]
            ]
            return report
        if (path / "manifest.json").exists():
            _verify_manifest_bundle(path / "manifest.json", problems, checked)
            return {"ok": not problems, "problems": problems,
                    "checked": checked}
        return {
            "ok": False,
            "problems": [f"{path}: no backup.json or manifest.json here"],
            "checked": [],
        }
    if not path.exists():
        return {"ok": False, "problems": [f"{path}: does not exist"],
                "checked": []}
    if path.name == MANIFEST_NAME:
        return verify_deployment(path.parent)
    if path.suffix == ".npz":
        try:
            read_checksummed(path)
            checked.append(str(path))
        except CorruptIndexError as error:
            problems.append(str(error))
        return {"ok": not problems, "problems": problems, "checked": checked}
    try:
        with path.open("rb") as handle:
            first = handle.readline(65536)
    except OSError as error:
        return {"ok": False, "problems": [f"{path}: unreadable: {error}"],
                "checked": []}
    if b"repro.mutation-journal" in first:
        _verify_journal(path, problems, checked)
    elif b"repro-graphdb" in first:
        from repro.graphs.io import load_database

        try:
            load_database(path)
            checked.append(str(path))
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            problems.append(f"{path}: database file does not parse: {error}")
    elif path.suffix == ".json":
        _verify_manifest_bundle(path, problems, checked)
    else:
        problems.append(
            f"{path}: not a recognized repro artifact (backup dir, shard "
            f"manifest, .npz index, journal, or database JSONL)"
        )
    return {"ok": not problems, "problems": problems, "checked": checked}

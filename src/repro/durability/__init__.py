"""`repro.durability`: checkpointing, backup/restore, and scrubbing.

The mutation layer (PR 7) made the deployment *crash-consistent*: base +
journal = database, with every record fsynced and checksummed.  This
package makes it *operable over time*:

* :func:`checkpoint` / :func:`checkpoint_offline` fold the journal into
  a fresh generation-numbered base database so the journal stays small —
  the atomic rename of the replacement journal is the commit point.
* :func:`create_backup` / :func:`restore_backup` /
  :func:`verify_backup` capture crash-consistent snapshots into
  checksummed archives and refuse to install anything that fails
  verification.
* :class:`Scrubber` continuously re-verifies every artifact's checksum
  in the background and self-heals what a live replica or loaded object
  can still vouch for.
* :func:`verify_deployment` is the offline auditor behind
  ``repro verify``.
"""

from repro.durability.backup import (
    create_backup,
    restore_backup,
    verify_backup,
    verify_deployment,
)
from repro.durability.checkpoint import (
    base_file_name,
    checkpoint,
    checkpoint_offline,
    resolve_base_path,
)
from repro.durability.errors import (
    BackupError,
    CheckpointError,
    DurabilityError,
    RestoreError,
    ScrubError,
)
from repro.durability.scrub import Scrubber

__all__ = [
    "BackupError",
    "CheckpointError",
    "DurabilityError",
    "RestoreError",
    "ScrubError",
    "Scrubber",
    "base_file_name",
    "checkpoint",
    "checkpoint_offline",
    "create_backup",
    "resolve_base_path",
    "restore_backup",
    "verify_backup",
    "verify_deployment",
]

"""Batched star-distance evaluation — the engine's in-process fast path.

:class:`repro.ged.star.StarDistance` evaluates one pair at a time: build a
token vocabulary for the pair, densify both count matrices, run ``cdist``,
assemble the doubled ``(n1+n2)²`` Riesen–Bunke padded matrix and solve the
assignment.  When the engine evaluates a *batch* of pairs (index build,
neighborhood materialization), almost all of that work can be shared or
shrunk without changing a single output bit:

* **Persistent token registry** — branch tokens ``(edge label, neighbor
  label)`` are interned once per evaluator into integer columns; per-graph
  sparse profiles are cached and reused across every batch.
* **Overlap by sparse matmul** — the per-vertex branch cost has the closed
  form ``(|deg_u − deg_v| + L1(c_u, c_v)) / 2 = max(deg_u, deg_v) −
  overlap(u, v)`` where ``overlap = Σ_tok min(c_u, c_v)``.  Expanding each
  token into *count levels* ``(tok, 1), …, (tok, c)`` turns the multiset
  intersection into a binary dot product, so one CSR matmul yields the
  branch costs of a whole source-vs-batch block.  All quantities are
  integer-valued, so the floats match the serial path exactly.
* **Reduced assignment** — the star ground cost satisfies ``cost(a, b) <
  cost(a, ε) + cost(ε, b)`` for every star pair (substitution is strictly
  cheaper than delete + insert), so the optimal padded assignment never
  pairs a deletion with an insertion and the ``(n1+n2)²`` problem collapses
  to a ``max(n1, n2)²`` one: pad the smaller side with null stars only.
  Same optimum, an ~8× smaller Hungarian problem.

Every cost entry is a multiple of 0.5 far below 2⁵³, so sums are exact and
the evaluator is **bit-identical** to ``StarDistance`` — the equivalence
tests assert ``==``, not ``approx``.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linear_sum_assignment

from repro import obs
from repro.ged.metric import CachingDistance, CountingDistance
from repro.ged.star import StarDistance
from repro.graphs.graph import LabeledGraph


class _SparseStarProfile:
    """Per-graph numeric star profile against a shared token registry."""

    __slots__ = ("graph", "indptr", "cols", "roots", "degrees")

    def __init__(self, g: LabeledGraph, token_ids: dict, root_ids: dict):
        n = g.num_nodes
        indptr = np.empty(n + 1, dtype=np.int64)
        indptr[0] = 0
        cols: list[int] = []
        roots = np.empty(n, dtype=np.int64)
        degrees = np.empty(n, dtype=np.float64)
        for v in range(n):
            label = g.node_label(v)
            code = root_ids.get(label)
            if code is None:
                code = root_ids[label] = len(root_ids)
            roots[v] = code
            counts: dict[tuple[str, str], int] = {}
            for u in g.neighbors(v):
                token = (g.edge_label(v, u), g.node_label(u))
                counts[token] = counts.get(token, 0) + 1
            degree = 0
            for token, count in counts.items():
                degree += count
                for level in range(1, count + 1):
                    key = (token[0], token[1], level)
                    col = token_ids.get(key)
                    if col is None:
                        col = token_ids[key] = len(token_ids)
                    cols.append(col)
            degrees[v] = float(degree)
            indptr[v + 1] = len(cols)
        self.graph = g  # strong ref: keeps the id()-keyed cache sound
        self.indptr = indptr
        self.cols = np.asarray(cols, dtype=np.int64)
        self.roots = roots
        self.degrees = degrees


class BatchStarEvaluator:
    """Batch evaluator producing bit-identical :class:`StarDistance` values.

    One evaluator instance accumulates its token/root registries and graph
    profiles across calls, so repeated batches against the same database —
    the dominant access pattern of every index build — skip straight to the
    overlap matmul and the reduced assignments.
    """

    def __init__(self, normalized: bool = False):
        self.normalized = normalized
        self._token_ids: dict[tuple[str, str, int], int] = {}
        self._root_ids: dict[str, int] = {}
        self._profiles: dict[int, _SparseStarProfile] = {}
        # Serializes registry growth.  Concurrent service queries share one
        # evaluator; unlocked interning could hand two tokens the same
        # column (``len(dict)`` read + insert is not atomic), silently
        # corrupting every later overlap.
        self._registry_lock = threading.Lock()

    def _profile(self, g: LabeledGraph) -> _SparseStarProfile:
        key = id(g)
        profile = self._profiles.get(key)
        if profile is None:
            with self._registry_lock:
                profile = self._profiles.get(key)
                if profile is None:
                    profile = _SparseStarProfile(
                        g, self._token_ids, self._root_ids
                    )
                    self._profiles[key] = profile
        return profile

    def _csr(
        self, profiles: Sequence[_SparseStarProfile], num_columns: int
    ) -> sp.csr_matrix:
        if len(profiles) == 1:
            p = profiles[0]
            indptr, cols = p.indptr, p.cols
        else:
            lengths = np.array([p.indptr[-1] for p in profiles])
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            cols = (
                np.concatenate([p.cols for p in profiles])
                if len(profiles)
                else np.empty(0, dtype=np.int64)
            )
            indptr = np.concatenate(
                [[0]]
                + [p.indptr[1:] + offsets[i] for i, p in enumerate(profiles)]
            )
        data = np.ones(len(cols), dtype=np.float64)
        rows = len(indptr) - 1
        return sp.csr_matrix(
            (data, cols, indptr), shape=(rows, num_columns), copy=False
        )

    def one_to_many(
        self, g: LabeledGraph, others: Sequence[LabeledGraph]
    ) -> np.ndarray:
        """``[d(g, h) for h in others]`` as one batch."""
        out = np.empty(len(others), dtype=np.float64)
        if not len(others):
            return out
        obs.counter("ged.star.batch_calls")
        obs.counter("ged.star.batch_pairs", len(others))
        source = self._profile(g)
        profiles = [self._profile(h) for h in others]
        n_g = len(source.roots)
        sizes = np.array([len(p.roots) for p in profiles])
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        if n_g == 0:
            # Serial path: all-insertion assignment, Σ (1 + deg).
            for idx, p in enumerate(profiles):
                out[idx] = float(np.sum(1.0 + p.degrees)) if len(p.roots) else 0.0
            return self._normalize_many(out, source, profiles)
        # Snapshot the vocabulary width once, *after* every profile above
        # exists: both CSR operands must agree on the column count even if
        # a concurrent query interns new tokens mid-call.  Every column id
        # in these profiles predates the snapshot, so the width is valid.
        num_columns = max(len(self._token_ids), 1)
        overlap = (
            self._csr([source], num_columns)
            @ self._csr(profiles, num_columns).T
        ).toarray()
        degrees_all = np.concatenate([p.degrees for p in profiles])
        roots_all = np.concatenate([p.roots for p in profiles])
        cost_block = (
            (source.roots[:, None] != roots_all[None, :]).astype(np.float64)
            + np.maximum(source.degrees[:, None], degrees_all[None, :])
            - overlap
        )
        deletion = 1.0 + source.degrees
        for idx, p in enumerate(profiles):
            n_h = int(sizes[idx])
            block = cost_block[:, offsets[idx]:offsets[idx + 1]]
            if n_g == n_h:
                matrix = block
            elif n_g < n_h:
                matrix = np.vstack(
                    [block, np.tile(1.0 + p.degrees, (n_h - n_g, 1))]
                )
            else:
                matrix = np.hstack(
                    [block, np.tile(deletion[:, None], (1, n_g - n_h))]
                )
            if matrix.size:
                rows, cols = linear_sum_assignment(matrix)
                out[idx] = float(matrix[rows, cols].sum())
            else:
                out[idx] = 0.0
        return self._normalize_many(out, source, profiles)

    def _normalize_many(self, values, source, profiles) -> np.ndarray:
        if not self.normalized:
            return values
        source_max = float(source.degrees.max()) if len(source.degrees) else 0.0
        for idx, p in enumerate(profiles):
            other_max = float(p.degrees.max()) if len(p.degrees) else 0.0
            values[idx] = values[idx] / max(4.0, max(source_max, other_max) + 1.0)
        return values

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        return float(self.one_to_many(g1, [g2])[0])


def unwrap_distance(distance):
    """Strip :class:`CountingDistance`/:class:`CachingDistance` layers."""
    while isinstance(distance, (CountingDistance, CachingDistance)):
        distance = distance.inner
    return distance


def batch_evaluator_for(distance) -> BatchStarEvaluator | None:
    """A batch fast path for ``distance``, or ``None`` if it has none.

    Only a (possibly counting/caching-wrapped) :class:`StarDistance` has a
    vectorized evaluator today; every other metric falls back to per-pair
    calls, still chunked over the worker pool.
    """
    base = unwrap_distance(distance)
    if type(base) is StarDistance:
        return BatchStarEvaluator(normalized=base.normalized)
    return None

"""The batch distance engine.

:class:`DistanceEngine` is the single component every distance-hungry code
path goes through: index construction (``|V| · n`` vantage distances,
NB-Tree pivot scans), the baseline greedy's O(|L_q|²) neighborhood
materialization, candidate verification, and full ``matrix`` builds.  It
layers three cross-cutting accelerations over any ``(g, g) → float``
metric, none of which changes a single output bit:

1. **Batching** — :meth:`one_to_many`, :meth:`pairs` and :meth:`matrix`
   evaluate whole blocks at once.  For the star metric an in-process
   vectorized evaluator (:mod:`repro.engine.starbatch`) amortizes the
   per-pair setup; for ``workers > 1`` the blocks additionally fan out
   over a lazily created ``multiprocessing`` pool in deterministic,
   order-preserving chunks.  ``workers=1`` (the default) never touches
   process machinery — the serial fallback is always available.
2. **Lipschitz prefiltering** — with a :class:`VantageEmbedding` attached,
   :meth:`within` answers threshold queries from the coordinate matrix
   first: candidates whose vantage lower bound exceeds θ are rejected and
   candidates whose vantage upper bound is within θ are accepted, both
   without paying for a real edit distance (Theorem 4 both ways).
3. **Shared caching** — a symmetric pair cache (same keying as
   :class:`~repro.ged.metric.CachingDistance`) spans every consumer, so a
   distance computed during the tree build is free during θ-refinements.
   :meth:`stats` reports evaluations / hits / prefilter activity in the
   same shape as the counting wrappers, and the engine itself is a plain
   ``GraphDistanceFn`` so it can slot in anywhere a distance is expected.

Worker count resolution: an explicit ``workers`` argument wins, then the
``REPRO_ENGINE_WORKERS`` environment variable, then serial.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Sequence

import numpy as np

from repro import obs
from repro.ged.metric import _pair_key
from repro.graphs.graph import LabeledGraph
from repro.resilience.deadline import current_deadline
from repro.resilience.retry import RetryPolicy
from repro.utils.validation import require

_EPS = 1e-9

#: Below this many pending evaluations a parallel engine stays in-process:
#: pool latency would dominate the chunk compute time.
DEFAULT_PARALLEL_THRESHOLD = 16


def resolve_workers(workers: int | None = None) -> int:
    """Explicit argument > ``REPRO_ENGINE_WORKERS`` env var > serial."""
    if workers is None:
        env = os.environ.get("REPRO_ENGINE_WORKERS", "").strip()
        if env:
            require(
                env.lstrip("+-").isdigit(),
                f"REPRO_ENGINE_WORKERS must be an integer, got {env!r}",
            )
        workers = int(env) if env else 1
    workers = int(workers)
    require(workers >= 1, f"workers must be >= 1, got {workers}")
    return workers


class DistanceEngine:
    """Batched, prefiltered, cached distance evaluation over a metric.

    Parameters
    ----------
    distance:
        The underlying metric ``(LabeledGraph, LabeledGraph) → float``.
    workers:
        Process count for batch fan-out; ``None`` reads
        ``REPRO_ENGINE_WORKERS`` and defaults to 1 (serial, no pool ever
        created).  Results are identical for every worker count.
    chunk_size:
        Pairs per worker task; ``None`` sizes chunks to ~4 tasks/worker.
    graphs:
        Optional graph list (usually ``database.graphs``).  Integer
        arguments to the batch methods then index into it, and worker
        payloads ship indices instead of pickled graphs.
    embedding:
        Optional :class:`~repro.index.vantage.VantageEmbedding` over
        ``graphs`` enabling the :meth:`within` prefilter; attach later via
        :meth:`attach_embedding` once built.
    respect_cpu_count:
        When true (the default) the pool is sized to
        ``min(workers, os.cpu_count())`` — extra processes beyond the
        machine's cores only add dispatch overhead, so on a single-core
        host any ``workers`` value degrades to the in-process fast path.
        Tests that must exercise the pool regardless pass ``False``.
    retry_policy:
        :class:`~repro.resilience.RetryPolicy` governing pool recovery
        when a worker dies mid-batch: the pool is respawned and the batch
        retried with capped exponential backoff, then evaluated serially
        in-process once attempts are exhausted.  Results are bit-identical
        on every path.
    """

    def __init__(
        self,
        distance,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        graphs: Sequence[LabeledGraph] | None = None,
        embedding=None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        respect_cpu_count: bool = True,
        retry_policy: RetryPolicy | None = None,
    ):
        from repro.engine.starbatch import batch_evaluator_for, unwrap_distance

        self.inner = distance
        self.workers = resolve_workers(workers)
        self.pool_workers = (
            min(self.workers, os.cpu_count() or 1)
            if respect_cpu_count else self.workers
        )
        self.chunk_size = chunk_size
        self.parallel_threshold = max(1, int(parallel_threshold))
        self._graphs = graphs  # live reference: inserts stay visible
        self._embedding = embedding
        self._base_distance = unwrap_distance(distance)
        self._evaluator = batch_evaluator_for(distance)
        self._pool = None
        self._pool_observed = False
        self._default_cascade = None
        self._stage_features = None
        self._cache: dict[tuple, float] = {}
        # The pair cache and its counters are shared across every consumer,
        # including the query service's worker threads; the lock covers the
        # scan/write-back phases only — real distance evaluation runs
        # outside it, so concurrent batches still overlap.  Two threads
        # missing on the same key may both evaluate it; the metric is
        # deterministic, so the duplicate write is idempotent.
        self._cache_lock = threading.RLock()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.reset()

    # ------------------------------------------------------------------
    # Stats & lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the counters (the cache itself is kept)."""
        self.evaluations = 0
        self.cache_hits = 0
        self.batches = 0
        self.parallel_batches = 0
        self.prefilter_lower_rejections = 0
        self.prefilter_upper_accepts = 0
        self.pool_retries = 0
        self.pool_respawns = 0
        self.pool_serial_fallbacks = 0

    @property
    def calls(self) -> int:
        """Distinct evaluations — drop-in for ``CountingDistance.calls``."""
        return self.evaluations

    def stats(self) -> dict:
        """Counters in the same shape as the counting/caching wrappers."""
        lookups = self.cache_hits + self.evaluations
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.evaluations,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "cache_size": len(self._cache),
            "batches": self.batches,
            "parallel_batches": self.parallel_batches,
            "prefilter_lower_rejections": self.prefilter_lower_rejections,
            "prefilter_upper_accepts": self.prefilter_upper_accepts,
            "workers": self.workers,
            "pool_workers": self.pool_workers,
            "pool_retries": self.pool_retries,
            "pool_respawns": self.pool_respawns,
            "pool_serial_fallbacks": self.pool_serial_fallbacks,
        }

    @property
    def graphs(self):
        """The attached graph list (live reference), or ``None``."""
        return self._graphs

    def attach_embedding(self, embedding) -> None:
        """Enable vantage prefiltering (coords rows must match ``graphs``)."""
        self._embedding = embedding

    def invalidate_pool(self) -> None:
        """Tear down the worker pool (e.g. after the graph list grew);
        the next parallel batch rebuilds it against the current graphs."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    close = invalidate_pool

    def __enter__(self) -> "DistanceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        try:
            self.invalidate_pool()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"DistanceEngine(workers={self.workers}, "
            f"evaluations={self.evaluations}, cache={len(self._cache)})"
        )

    # ------------------------------------------------------------------
    # Reference resolution
    # ------------------------------------------------------------------
    def _resolve(self, ref) -> LabeledGraph:
        if isinstance(ref, (int, np.integer)):
            require(
                self._graphs is not None,
                "integer graph references require an attached graph list",
            )
            return self._graphs[int(ref)]
        return ref

    @staticmethod
    def _encode(ref):
        """Payload form of a graph reference: plain int or the graph."""
        if isinstance(ref, (int, np.integer)):
            return int(ref)
        return ref

    # ------------------------------------------------------------------
    # Single-pair path (GraphDistanceFn protocol)
    # ------------------------------------------------------------------
    def __call__(self, g1, g2) -> float:
        a, b = self._resolve(g1), self._resolve(g2)
        key = _pair_key(a, b)
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self.cache_hits += 1
            else:
                self.evaluations += 1
        if value is not None:
            obs.counter("engine.cache_hits")
            return value
        obs.counter("engine.evaluations")
        if self._evaluator is not None:
            value = float(self._evaluator.one_to_many(a, [b])[0])
        else:
            value = float(self.inner(a, b))
        with self._cache_lock:
            self._cache[key] = value
        return value

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def one_to_many(self, source, targets) -> np.ndarray:
        """``d(source, t)`` for every target, cache-aware, one batch."""
        targets = list(targets)
        out = np.empty(len(targets), dtype=np.float64)
        if not targets:
            return out
        source_graph = self._resolve(source)
        miss_positions: dict[tuple, list[int]] = {}
        miss_refs: list = []
        hits = 0
        with self._cache_lock:
            for position, ref in enumerate(targets):
                graph = self._resolve(ref)
                key = _pair_key(source_graph, graph)
                value = self._cache.get(key)
                if value is not None:
                    hits += 1
                    out[position] = value
                elif key in miss_positions:
                    hits += 1  # duplicate within the batch
                    miss_positions[key].append(position)
                else:
                    miss_positions[key] = [position]
                    miss_refs.append((ref, graph))
            self.cache_hits += hits
        if miss_refs:
            values = self._evaluate_one_to_many(source, source_graph, miss_refs)
            with self._cache_lock:
                for (key, positions), value in zip(miss_positions.items(), values):
                    value = float(value)
                    self._cache[key] = value
                    for position in positions:
                        out[position] = value
        if hits:
            obs.counter("engine.cache_hits", hits)
        return out

    def pairs(self, pairlist) -> np.ndarray:
        """Distances for an explicit ``[(a, b), ...]`` list of pairs."""
        pairlist = list(pairlist)
        out = np.empty(len(pairlist), dtype=np.float64)
        miss_positions: dict[tuple, list[int]] = {}
        miss_refs: list = []
        hits = 0
        with self._cache_lock:
            for position, (ref_a, ref_b) in enumerate(pairlist):
                a, b = self._resolve(ref_a), self._resolve(ref_b)
                key = _pair_key(a, b)
                value = self._cache.get(key)
                if value is not None:
                    hits += 1
                    out[position] = value
                elif key in miss_positions:
                    hits += 1
                    miss_positions[key].append(position)
                else:
                    miss_positions[key] = [position]
                    miss_refs.append(((ref_a, a), (ref_b, b)))
            self.cache_hits += hits
        if miss_refs:
            values = self._evaluate_pairs(miss_refs)
            with self._cache_lock:
                for (key, positions), value in zip(miss_positions.items(), values):
                    value = float(value)
                    self._cache[key] = value
                    for position in positions:
                        out[position] = value
        if hits:
            obs.counter("engine.cache_hits", hits)
        return out

    def matrix(self, items=None) -> np.ndarray:
        """Full symmetric pairwise matrix (zero diagonal) over ``items``
        (graphs or indices; default: the whole attached graph list)."""
        if items is None:
            require(self._graphs is not None, "matrix() needs attached graphs")
            items = range(len(self._graphs))
        refs = list(items)
        n = len(refs)
        matrix = np.zeros((n, n))
        pairlist = [
            (refs[i], refs[j]) for i in range(n) for j in range(i + 1, n)
        ]
        values = self.pairs(pairlist)
        position = 0
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = matrix[j, i] = values[position]
                position += 1
        return matrix

    def within(
        self,
        source,
        targets,
        theta: float,
        eps: float = _EPS,
        *,
        cascade=None,
        prefiltered: bool = False,
    ) -> np.ndarray:
        """Boolean mask: which targets satisfy ``d(source, t) ≤ θ + eps``.

        The threshold query runs through a lower-bound filter cascade
        (:mod:`repro.cascade`).  With no explicit ``cascade`` the
        engine-held default — the single vantage stage, ε = 0 — performs
        exactly the historical prefilter: with an embedding attached and
        index references, the vantage lower bound rejects and the vantage
        upper bound accepts without real evaluations; only the undecided
        band pays for edit distances.  An explicit
        :class:`~repro.cascade.FilterCascade` adds structural stages
        and/or ε-relaxed cutoffs.

        ``prefiltered=True`` tells the vantage stage the caller already
        applied the Chebyshev lower bound to these targets (e.g. via
        ``VantageEmbedding.candidates``), so the redundant lower pass —
        which would reject exactly zero candidates — is skipped.
        """
        targets = list(targets)
        if cascade is None:
            if self._default_cascade is None:
                from repro.cascade import FilterCascade

                self._default_cascade = FilterCascade()
            cascade = self._default_cascade
        return cascade.run(
            self, source, targets, theta, eps, prefiltered=prefiltered
        )

    def stage_features(self):
        """The structural-stage feature cache over the attached graphs,
        extended on demand when the graph list has grown (live inserts)."""
        require(
            self._graphs is not None,
            "stage features require an attached graph list",
        )
        with self._cache_lock:
            if self._stage_features is None:
                from repro.cascade.features import StageFeatures

                self._stage_features = StageFeatures()
            self._stage_features.sync(self._graphs)
            return self._stage_features

    # ------------------------------------------------------------------
    # Evaluation backends
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from repro.engine.pool import create_pool

            self._pool_observed = obs.enabled()
            self._pool = create_pool(
                self.pool_workers, self._base_distance, self._graphs,
                observe=self._pool_observed,
            )
        return self._pool

    def _pool_map(self, task, payloads, pairs: int, kind: str):
        """Fan a batch out over the pool: deadline shipping, worker-death
        retries, and worker metric/degradation merging."""
        self.parallel_batches += len(payloads)
        obs.counter("engine.pool.batches")
        obs.counter("engine.pool.chunks", len(payloads))
        deadline = current_deadline()
        if deadline is not None:
            from repro.engine.pool import wrap_deadline

            state = deadline.state()
            payloads = [wrap_deadline(payload, state) for payload in payloads]
        with obs.span("engine.pool.map", chunks=len(payloads), pairs=pairs), \
                obs.timer("engine.pool.map_seconds"):
            results = self._map_with_retry(task, payloads, kind)
            # Merging inside the span nests worker chunk spans under it.
            return [self._unwrap_result(item, deadline) for item in results]

    def _map_with_retry(self, task, payloads, kind: str):
        """``pool.map`` with worker-death recovery.

        A dead worker surfaces as ``BrokenProcessPool``; the pool is torn
        down, respawned and the whole batch retried (chunks are pure
        functions of their payloads, so re-running them is safe) under the
        engine's :class:`~repro.resilience.RetryPolicy`.  Exhausted
        attempts fall back to in-process serial evaluation — slower but
        bit-identical, so a broken pool degrades throughput, never answers.
        """
        from concurrent.futures.process import BrokenProcessPool

        policy = self.retry_policy
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                self.pool_respawns += 1
                obs.counter("engine.pool.respawns")
            try:
                with obs.span("engine.pool.attempt", attempt=attempt):
                    return list(self._ensure_pool().map(task, payloads))
            except BrokenProcessPool:
                self.invalidate_pool()
                self.pool_retries += 1
                obs.counter("engine.pool.retries")
                if attempt + 1 < policy.max_attempts:
                    delay = policy.delay(attempt)
                    with obs.span(
                        "engine.pool.respawn", attempt=attempt + 1,
                        delay_seconds=round(delay, 4),
                    ):
                        time.sleep(delay)
        self.pool_serial_fallbacks += 1
        obs.counter("engine.pool.serial_fallbacks")
        obs.gauge("engine.pool.degraded", 1)
        return [self._eval_payload_serial(kind, payload) for payload in payloads]

    def _unwrap_result(self, item, deadline):
        """Strip worker wrappers from one chunk result: degradation counts
        (merged into the parent deadline) and obs deltas (merged into the
        active registry).  Serial-fallback results pass through untouched."""
        from repro.engine.pool import split_degradations

        item, degradations = split_degradations(item)
        if degradations:
            if deadline is not None:
                deadline.merge_degradations(degradations)
            if not self._pool_observed:
                # Observed workers already counted these in their shipped
                # registry delta; unobserved ones could not.
                for kind, count in degradations.items():
                    obs.counter("resilience.degradations", count)
                    obs.counter(f"resilience.degraded.{kind}", count)
        if self._pool_observed and isinstance(item, tuple):
            block, state = item
            obs.merge_state(state, worker=True)
            return block
        return item

    def _eval_payload_serial(self, kind: str, payload):
        """In-process evaluation of one worker payload (the last rung of
        the pool fallback ladder); same values as any worker would return."""
        from repro.engine.pool import split_deadline

        # The parent's deadline scope is still active here; the shipped
        # copy is only needed across a process boundary.
        payload, _ = split_deadline(payload)
        if kind == "one_to_many":
            source_ref, target_refs = payload
            source = self._resolve(source_ref)
            targets = [self._resolve(ref) for ref in target_refs]
            if self._evaluator is not None:
                return [float(v) for v in self._evaluator.one_to_many(source, targets)]
            return [float(self.inner(source, target)) for target in targets]
        out: list[float] = []
        for ref_a, ref_b in payload:
            a, b = self._resolve(ref_a), self._resolve(ref_b)
            if self._evaluator is not None:
                out.append(float(self._evaluator.one_to_many(a, [b])[0]))
            else:
                out.append(float(self.inner(a, b)))
        return out

    def _chunk(self, total: int) -> int:
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        # ~2 tasks per worker: the batch evaluator has a fixed per-chunk
        # setup cost, so fewer, larger chunks beat fine-grained dispatch.
        return max(8, -(-total // (self.pool_workers * 2)))

    def _evaluate_one_to_many(self, source_ref, source_graph, miss_refs):
        count = len(miss_refs)
        with self._cache_lock:
            self.batches += 1
            self.evaluations += count
        obs.counter("engine.batches")
        obs.counter("engine.evaluations", count)
        obs.histogram("engine.batch_size", count)
        if self.pool_workers > 1 and count >= self.parallel_threshold:
            from repro.engine.pool import run_one_to_many

            chunk = self._chunk(count)
            payloads = [
                (
                    self._encode(source_ref),
                    [self._encode(ref) for ref, _ in miss_refs[k:k + chunk]],
                )
                for k in range(0, count, chunk)
            ]
            results = self._pool_map(run_one_to_many, payloads, count, "one_to_many")
            return [value for block in results for value in block]
        graphs = [graph for _, graph in miss_refs]
        if self._evaluator is not None:
            return self._evaluator.one_to_many(source_graph, graphs)
        return [float(self.inner(source_graph, graph)) for graph in graphs]

    def _evaluate_pairs(self, miss_refs):
        count = len(miss_refs)
        with self._cache_lock:
            self.batches += 1
            self.evaluations += count
        obs.counter("engine.batches")
        obs.counter("engine.evaluations", count)
        obs.histogram("engine.batch_size", count)
        if self.pool_workers > 1 and count >= self.parallel_threshold:
            from repro.engine.pool import run_pairs

            chunk = self._chunk(count)
            payloads = [
                [
                    (self._encode(ref_a), self._encode(ref_b))
                    for (ref_a, _), (ref_b, _) in miss_refs[k:k + chunk]
                ]
                for k in range(0, count, chunk)
            ]
            results = self._pool_map(run_pairs, payloads, count, "pairs")
            return [value for block in results for value in block]
        out: list[float] = []
        position = 0
        while position < count:
            # Group consecutive pairs sharing a left graph for the batch
            # evaluator (matrix rows arrive exactly this way).
            (_, left), _ = miss_refs[position]
            stop = position
            while stop < count and miss_refs[stop][0][1] is left:
                stop += 1
            rights = [graph for _, (_, graph) in miss_refs[position:stop]]
            if self._evaluator is not None:
                out.extend(self._evaluator.one_to_many(left, rights))
            else:
                out.extend(float(self.inner(left, right)) for right in rights)
            position = stop
        return out

"""Worker-process plumbing for :class:`repro.engine.DistanceEngine`.

The engine fans batches out over a ``concurrent.futures``
:class:`~concurrent.futures.ProcessPoolExecutor`.  Everything here is
module-level so task payloads stay picklable; process machinery is
imported lazily inside :func:`create_pool` — importing this module (or any
engine consumer) never touches it, so single-process use pays nothing.

The executor (rather than ``multiprocessing.Pool``) is what makes the
engine's fault tolerance possible: when a worker dies mid-chunk the
in-flight ``map`` raises :class:`~concurrent.futures.process.\
BrokenProcessPool` instead of hanging, and the engine respawns/retries
(see ``DistanceEngine._map_with_retry``).

Graphs travel to workers in one of two forms: integer indices into the
graph list the pool was initialized with (the database case — payloads are
a few bytes per graph), or pickled :class:`LabeledGraph` objects for
free-standing graphs.  Each worker lazily builds its own batch evaluator
(see :mod:`repro.engine.starbatch`), so chunks are evaluated with the same
fast path — and therefore the same bits — as the serial engine.

When the parent has observability on (:mod:`repro.obs`) at pool-creation
time, each worker installs its *own* fresh registry (``fork`` would
otherwise leave it sharing a copy of the parent's data), wraps every chunk
in an ``engine.worker.chunk`` span, and ships its metric/span delta back
alongside the task result; the engine merges those deltas as the map
joins, so pool fan-out never loses counts.

When the parent has an active :class:`~repro.resilience.Deadline`, its
state rides along with each payload (:func:`wrap_deadline`); the worker
re-installs it so exact-GED budget checks fire there too, and ships any
degradation counts back for the engine to merge into the parent deadline.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.resilience import faults
from repro.resilience.deadline import Deadline, deadline_scope

#: Per-process worker state, set once by :func:`_init_worker`.
_STATE: dict = {}

_DEADLINE_KEY = "__deadline__"
_DEGRADED_KEY = "__degraded__"


def _init_worker(distance, graphs, observe: bool = False) -> None:
    from repro.engine.starbatch import batch_evaluator_for

    _STATE["distance"] = distance
    _STATE["graphs"] = graphs
    _STATE["evaluator"] = batch_evaluator_for(distance)
    _STATE["observe"] = observe
    if observe:
        from repro import obs

        # A fresh registry: with the fork start method the worker inherits
        # the parent's (already populated) registry object.
        obs.enable(fresh=True)


def _resolve(ref):
    """An index refers to the shared graph list; anything else is a graph."""
    if isinstance(ref, int):
        return _STATE["graphs"][ref]
    return ref


def wrap_deadline(payload, state: dict):
    """Attach a parent deadline's state to a task payload."""
    return {_DEADLINE_KEY: state, "payload": payload}


def split_deadline(payload):
    """Inverse of :func:`wrap_deadline`: ``(bare payload, Deadline|None)``."""
    if isinstance(payload, dict) and _DEADLINE_KEY in payload:
        return payload["payload"], Deadline.from_state(payload[_DEADLINE_KEY])
    return payload, None


def _attach_degradations(result, deadline):
    """Ship worker-side degradation counts back with the chunk result."""
    if deadline is not None and deadline.degradations:
        return {_DEGRADED_KEY: dict(deadline.degradations), "result": result}
    return result


def split_degradations(result):
    """Inverse of :func:`_attach_degradations`: ``(result, counts dict)``."""
    if isinstance(result, dict) and _DEGRADED_KEY in result:
        return result["result"], result[_DEGRADED_KEY]
    return result, None


def _observed(task, payload, pairs: int):
    """Run one chunk under a worker span; return ``(result, delta)``."""
    from repro import obs

    with obs.span("engine.worker.chunk", pairs=pairs, pid=os.getpid()):
        obs.counter("engine.worker.chunks")
        obs.counter("engine.worker.pairs", pairs)
        result = task(payload)
    return result, obs.export_state(reset_after=True)


def _run_task(task, payload, pairs_of):
    """Common worker chunk wrapper: faults, deadline scope, observation."""
    payload, deadline = split_deadline(payload)
    faults.maybe_crash_worker()
    with deadline_scope(deadline):
        if _STATE.get("observe"):
            result = _observed(task, payload, pairs_of(payload))
        else:
            result = task(payload)
    return _attach_degradations(result, deadline)


def run_one_to_many(payload) -> list[float]:
    """Worker task: ``(source_ref, [target_ref, ...]) -> [distance, ...]``.

    With observability on, the result is paired with the worker's obs
    delta; with a shipped deadline that degraded, both are wrapped with
    the degradation counts (see :func:`split_degradations`).
    """
    return _run_task(_run_one_to_many, payload, lambda p: len(p[1]))


def _run_one_to_many(payload) -> list[float]:
    source_ref, target_refs = payload
    source = _resolve(source_ref)
    targets = [_resolve(ref) for ref in target_refs]
    evaluator = _STATE["evaluator"]
    if evaluator is not None:
        return [float(v) for v in evaluator.one_to_many(source, targets)]
    distance = _STATE["distance"]
    return [float(distance(source, target)) for target in targets]


def run_pairs(payload) -> list[float]:
    """Worker task: ``[(ref1, ref2), ...] -> [distance, ...]``.

    Consecutive pairs sharing a left graph are grouped so the batch
    evaluator amortizes the source-side work (matrix rows arrive this way).
    Wrapping behaves as in :func:`run_one_to_many`.
    """
    return _run_task(_run_pairs, payload, len)


def _run_pairs(payload) -> list[float]:
    evaluator = _STATE["evaluator"]
    distance = _STATE["distance"]
    out: list[float] = []
    position = 0
    while position < len(payload):
        left_ref = payload[position][0]
        stop = position
        while stop < len(payload) and payload[stop][0] == left_ref:
            stop += 1
        left = _resolve(left_ref)
        rights = [_resolve(ref) for _, ref in payload[position:stop]]
        if evaluator is not None:
            out.extend(float(v) for v in evaluator.one_to_many(left, rights))
        else:
            out.extend(float(distance(left, right)) for right in rights)
        position = stop
    return out


def _pool_context():
    """The multiprocessing context for worker pools.

    Prefers ``fork`` — workers then inherit the distance, graph list and
    any installed fault plan without pickling.  Platforms without ``fork``
    fall back to the default start method; the condition is recorded on
    the ``engine.pool.fork_unavailable`` counter so a mysteriously slower
    pool (spawn re-imports everything) is diagnosable from metrics.
    """
    import multiprocessing

    from repro import obs

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        obs.counter("engine.pool.fork_unavailable")
        return multiprocessing.get_context()


def create_pool(workers: int, distance, graphs: Sequence | None, observe: bool = False):
    """Create the worker executor (lazy ``concurrent.futures`` import).

    Any start method works as long as the distance and graphs are
    picklable (true for every distance in this library).  With
    ``observe=True`` workers record their own metrics and return them
    alongside each task result (see module docstring).
    """
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(distance, list(graphs) if graphs is not None else None, observe),
    )

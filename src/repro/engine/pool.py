"""Worker-process plumbing for :class:`repro.engine.DistanceEngine`.

The engine fans batches out over a ``multiprocessing`` pool.  Everything
here is module-level so task payloads stay picklable; ``multiprocessing``
itself is imported lazily inside :func:`create_pool` — importing this
module (or any engine consumer) never touches process machinery, so
single-process use pays nothing.

Graphs travel to workers in one of two forms: integer indices into the
graph list the pool was initialized with (the database case — payloads are
a few bytes per graph), or pickled :class:`LabeledGraph` objects for
free-standing graphs.  Each worker lazily builds its own batch evaluator
(see :mod:`repro.engine.starbatch`), so chunks are evaluated with the same
fast path — and therefore the same bits — as the serial engine.

When the parent has observability on (:mod:`repro.obs`) at pool-creation
time, each worker installs its *own* fresh registry (``fork`` would
otherwise leave it sharing a copy of the parent's data), wraps every chunk
in an ``engine.worker.chunk`` span, and ships its metric/span delta back
alongside the task result; the engine merges those deltas as the map
joins, so pool fan-out never loses counts.
"""

from __future__ import annotations

import os
from typing import Sequence

#: Per-process worker state, set once by :func:`_init_worker`.
_STATE: dict = {}


def _init_worker(distance, graphs, observe: bool = False) -> None:
    from repro.engine.starbatch import batch_evaluator_for

    _STATE["distance"] = distance
    _STATE["graphs"] = graphs
    _STATE["evaluator"] = batch_evaluator_for(distance)
    _STATE["observe"] = observe
    if observe:
        from repro import obs

        # A fresh registry: with the fork start method the worker inherits
        # the parent's (already populated) registry object.
        obs.enable(fresh=True)


def _resolve(ref):
    """An index refers to the shared graph list; anything else is a graph."""
    if isinstance(ref, int):
        return _STATE["graphs"][ref]
    return ref


def _observed(task, payload, pairs: int):
    """Run one chunk under a worker span; return ``(result, delta)``."""
    from repro import obs

    with obs.span("engine.worker.chunk", pairs=pairs, pid=os.getpid()):
        obs.counter("engine.worker.chunks")
        obs.counter("engine.worker.pairs", pairs)
        result = task(payload)
    return result, obs.export_state(reset_after=True)


def run_one_to_many(payload) -> list[float]:
    """Worker task: ``(source_ref, [target_ref, ...]) -> [distance, ...]``.

    With observability on, returns ``([distance, ...], obs_delta)``.
    """
    if _STATE.get("observe"):
        return _observed(_run_one_to_many, payload, len(payload[1]))
    return _run_one_to_many(payload)


def _run_one_to_many(payload) -> list[float]:
    source_ref, target_refs = payload
    source = _resolve(source_ref)
    targets = [_resolve(ref) for ref in target_refs]
    evaluator = _STATE["evaluator"]
    if evaluator is not None:
        return [float(v) for v in evaluator.one_to_many(source, targets)]
    distance = _STATE["distance"]
    return [float(distance(source, target)) for target in targets]


def run_pairs(payload) -> list[float]:
    """Worker task: ``[(ref1, ref2), ...] -> [distance, ...]``.

    Consecutive pairs sharing a left graph are grouped so the batch
    evaluator amortizes the source-side work (matrix rows arrive this way).
    With observability on, returns ``([distance, ...], obs_delta)``.
    """
    if _STATE.get("observe"):
        return _observed(_run_pairs, payload, len(payload))
    return _run_pairs(payload)


def _run_pairs(payload) -> list[float]:
    evaluator = _STATE["evaluator"]
    distance = _STATE["distance"]
    out: list[float] = []
    position = 0
    while position < len(payload):
        left_ref = payload[position][0]
        stop = position
        while stop < len(payload) and payload[stop][0] == left_ref:
            stop += 1
        left = _resolve(left_ref)
        rights = [_resolve(ref) for _, ref in payload[position:stop]]
        if evaluator is not None:
            out.extend(float(v) for v in evaluator.one_to_many(left, rights))
        else:
            out.extend(float(distance(left, right)) for right in rights)
        position = stop
    return out


def create_pool(workers: int, distance, graphs: Sequence | None, observe: bool = False):
    """Create the process pool (lazy ``multiprocessing`` import).

    Prefers the ``fork`` start method — workers then inherit the distance
    and graph list without pickling; other start methods work as long as
    both are picklable (true for every distance in this library).  With
    ``observe=True`` workers record their own metrics and return them
    alongside each task result (see module docstring).
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(distance, list(graphs) if graphs is not None else None, observe),
    )

"""Batch distance engine: pooled, prefiltered, cached GED evaluation."""

from repro.engine.core import DistanceEngine, resolve_workers
from repro.engine.starbatch import (
    BatchStarEvaluator,
    batch_evaluator_for,
    unwrap_distance,
)

__all__ = [
    "DistanceEngine",
    "resolve_workers",
    "BatchStarEvaluator",
    "batch_evaluator_for",
    "unwrap_distance",
]

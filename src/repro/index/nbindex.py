"""NB-Index: the paper's index structure and query engine (Secs. 6.4 and 7).

An :class:`NBIndex` bundles the two offline components —

* the **vantage embedding** (Vantage Orderings of every database graph
  against a set of vantage points), and
* the **NB-Tree** (hierarchical disjoint clustering with per-node centroid,
  radius and diameter)

— plus the **threshold ladder** at which π̂-vectors are evaluated.

Query processing follows Section 7 exactly:

1. *Initialization* (per relevance function, θ-independent): the relevant
   set ``L_q`` is materialized and π̂ upper bounds are computed for the
   relevant graphs from the vantage embedding (Theorem 5), at the indexed
   threshold covering the query θ; bounds are propagated up the NB-Tree by
   taking ceilings (Eq. 14).  A :class:`QuerySession` caches all of this so
   interactive θ refinements skip straight to phase 2.
2. *Search-and-update* (per θ, per k): a best-first lazy greedy.  The
   search (Algorithm 2) explores the NB-Tree through a priority queue
   ordered by marginal-gain upper bounds, computing exact θ-neighborhoods
   (vantage candidates verified by real edit distances) only for graphs
   that could beat the incumbent.  After each selection the update step
   walks the tree, pruning subtrees beyond ``2θ`` (Theorem 6) and
   batch-decrementing the bounds of clusters contained in the new
   neighborhood (Theorems 7–8).

Bound bookkeeping: each tree node carries a working upper bound ``W``;
during the search a child's effective bound is ``min(W[child],
effective(parent))``, so decrementing a cluster's root bound tightens every
descendant without touching them — an O(1) batch update per cluster.
Submodularity makes stale bounds safe: true marginal gains only shrink as
the answer set grows, so an old bound is still an upper bound.
"""

from __future__ import annotations

import heapq
import itertools
import time
import warnings

import numpy as np

from repro import obs
from repro.bitset import BitsetUniverse, kernel as bitset_kernel
from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.index.errors import OffLadderThetaError, ReadOnlyIndexError
from repro.index.nbtree import NBTree, NBTreeNode
from repro.index.pivec import ThresholdLadder, choose_thresholds
from repro.index.vantage import VantageEmbedding, select_vantage_points
from repro.utils.rng import resolve_seed
from repro.utils.validation import require, require_positive

_EPS = 1e-9
_NEG_INF = float("-inf")
#: Sentinel "minimum relevant graph id" for subtrees with no relevant
#: members; larger than any real id, so it loses every tie-break.
_NO_GID = 2**63 - 1


class NBIndex:
    """The NB-Index over a graph database.

    Build once per database with :meth:`build`; run queries either directly
    (:meth:`query`) or through a :class:`QuerySession` when the relevance
    function is reused across θ refinements.
    """

    def __init__(
        self,
        database: GraphDatabase,
        distance: GraphDistanceFn,
        *,
        embedding: VantageEmbedding,
        tree: NBTree,
        ladder: ThresholdLadder,
        counting: CountingDistance,
        build_seconds: float = 0.0,
    ):
        self.database = database
        self.distance = distance
        self.embedding = embedding
        self.tree = tree
        self.ladder = ladder
        self._counting = counting
        self.build_seconds = build_seconds
        # When the shared distance is a DistanceEngine, query sessions use
        # its batched, prefiltered threshold checks; any plain distance
        # still works through the per-pair path.
        self.engine = distance if hasattr(distance, "within") else None
        #: ``{kind: count}`` of budget-forced degradations during the
        #: build (empty for an unbudgeted or on-budget build).
        self.build_degradations: dict[str, int] = {}
        self._leaf_of: dict[int, NBTreeNode] = {
            node.graph_index: node for node in tree.nodes if node.is_leaf
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: GraphDatabase,
        distance: GraphDistanceFn,
        *,
        num_vantage_points: int = 20,
        branching: int = 8,
        thresholds: ThresholdLadder | None = None,
        seed=None,
        vp_strategy: str = "random",
        validate_metric: bool = False,
        workers: int | None = None,
        engine=None,
        rng=None,
        checkpoint=None,
        resume: bool = False,
        deadline=None,
    ) -> "NBIndex":
        """Build the index: select VPs, embed the database, cluster it.

        ``distance`` must be a metric (Sec. 6.1) — every pruning theorem
        depends on the triangle inequality.  ``validate_metric=True`` spot
        checks the axioms on sampled triples before building and raises on
        violation; it costs a few dozen extra distance calls and is
        recommended for user-supplied distances.  When ``thresholds`` is
        omitted, a slope-proportional ladder is derived from sampled
        pairwise distances (Sec. 7.1, scheme 2).

        Every distance goes through a shared
        :class:`~repro.engine.DistanceEngine` (batched evaluation + the
        symmetric cache the old counting/caching pair provided).
        ``workers`` sets its process fan-out — ``None`` defers to the
        ``REPRO_ENGINE_WORKERS`` environment variable, defaulting to
        serial; the built index is identical for every worker count.  Pass
        a prebuilt ``engine`` to share its cache across builds.

        ``seed`` (an int or a numpy Generator) drives vantage/pivot
        selection; ``rng`` is its deprecated alias.

        ``checkpoint`` names a file to snapshot completed build stages
        into (atomic, checksummed — see
        :class:`~repro.resilience.checkpoint.BuildCheckpoint`); with
        ``resume=True`` an interrupted build picks up after its last
        durable stage and, because the RNG state is checkpointed too,
        produces a bit-identical index.  ``deadline`` is a
        :class:`~repro.resilience.Deadline` budget installed for the whole
        build: exact-GED calls that exceed it degrade to upper bounds, and
        the degradation counts land in :attr:`build_degradations` /
        ``stats()['degraded']``.
        """
        require_positive(num_vantage_points, "num_vantage_points")
        require(len(database) > 0, "cannot index an empty database")
        from repro.engine import DistanceEngine
        from repro.resilience.deadline import deadline_scope

        rng = resolve_seed(seed, rng, "NBIndex.build")
        if engine is None:
            engine = DistanceEngine(
                distance, workers=workers, graphs=database.graphs
            )
        if validate_metric:
            _spot_check_metric(database, engine, rng)

        ckpt = None
        if checkpoint is not None:
            from repro.resilience.checkpoint import BuildCheckpoint

            ckpt = BuildCheckpoint.open(checkpoint, database, resume=resume)

        started = time.perf_counter()
        with deadline_scope(deadline), obs.span(
            "index.build", n=len(database), branching=branching,
        ) as build_span:
            vp_count = min(num_vantage_points, len(database))
            build_span.set(num_vantage_points=vp_count)

            if ckpt is not None and ckpt.completed("vantage"):
                vp_indices = [int(i) for i in ckpt.array("vantage", "vp_indices")]
                ckpt.restore_rng("vantage", rng)
            else:
                with obs.span("index.vantage_select", strategy=vp_strategy), \
                        obs.timer("index.vantage_select_seconds"):
                    vp_indices = select_vantage_points(
                        database.graphs, vp_count, rng=rng, strategy=vp_strategy,
                        distance=engine, engine=engine,
                    )
                if ckpt is not None:
                    ckpt.record_stage(
                        "vantage", rng=rng,
                        vp_indices=np.asarray(vp_indices, dtype=np.int64),
                    )

            if ckpt is not None and ckpt.completed("embed"):
                embedding = VantageEmbedding.from_coords(
                    database.graphs, vp_indices, engine,
                    ckpt.array("embed", "coords"),
                )
            else:
                with obs.span("index.embed"), obs.timer("index.embed_seconds"):
                    embedding = VantageEmbedding(
                        database.graphs, vp_indices, engine, engine=engine
                    )
                if ckpt is not None:
                    ckpt.record_stage("embed", coords=embedding.coords)
            engine.attach_embedding(embedding)

            if ckpt is not None and ckpt.completed("ladder"):
                thresholds = ThresholdLadder(
                    float(v) for v in ckpt.array("ladder", "values")
                )
                ckpt.restore_rng("ladder", rng)
            else:
                if thresholds is None:
                    with obs.span("index.ladder"), obs.timer("index.ladder_seconds"):
                        if len(database) < 2:
                            thresholds = ThresholdLadder([1.0])
                        else:
                            thresholds = choose_thresholds(
                                database.graphs, engine, count=10,
                                num_pairs=min(1000, len(database) * 4), rng=rng,
                                engine=engine,
                            )
                if ckpt is not None:
                    ckpt.record_stage(
                        "ladder", rng=rng,
                        values=np.array(list(thresholds.values)),
                    )

            if ckpt is not None and ckpt.completed("tree"):
                from repro.index.persistence import tree_from_arrays

                tree = tree_from_arrays(
                    ckpt.stage_arrays("tree"), database.graphs, engine, embedding
                )
            else:
                with obs.span("index.tree_build") as tree_span, \
                        obs.timer("index.tree_build_seconds"):
                    tree = NBTree(
                        database.graphs, engine, embedding, branching=branching,
                        rng=rng, engine=engine,
                    )
                    tree_span.set(nodes=tree.num_nodes)
                if ckpt is not None:
                    from repro.index.persistence import flatten_tree

                    ckpt.record_stage("tree", **flatten_tree(tree))
            obs.counter("index.tree.exact_distances", tree.stats.exact_distances)
            obs.counter("index.tree.pruned_by_vantage", tree.stats.pruned_by_vantage)
        build_seconds = time.perf_counter() - started
        obs.observe_time("index.build_seconds", build_seconds)
        index = cls(
            database, engine, embedding=embedding, tree=tree,
            ladder=thresholds, counting=engine, build_seconds=build_seconds,
        )
        if deadline is not None:
            index.build_degradations = dict(deadline.degradations)
        return index

    def stats(self) -> dict:
        """Statable protocol: one plain dict covering the whole index.

        Replaces the old ``distance_calls`` property and ``memory_bytes()``
        method (both still work, with a :class:`DeprecationWarning`) and
        nests the engine's and tree-build accounting.
        """
        out = {
            "num_graphs": len(self.database),
            "num_shards": 1,  # normalized schema: a plain index is S=1
            "num_vantage_points": self.embedding.num_vantage_points,
            "branching": self.tree.branching,
            "tree_nodes": self.tree.num_nodes,
            "ladder_thresholds": len(self.ladder),
            "build_seconds": self.build_seconds,
            "distance_calls": self._counting.calls,
            "memory_bytes": self._memory_bytes(),
            "coverage_bytes": self._coverage_bytes(),
            "degraded": bool(self.build_degradations),
            "build_degradations": dict(self.build_degradations),
            "tree_build": {
                "exact_distances": self.tree.stats.exact_distances,
                "pruned_by_vantage": self.tree.stats.pruned_by_vantage,
            },
        }
        if self.engine is not None and hasattr(self.engine, "stats"):
            out["engine"] = dict(self.engine.stats())
        return out

    @property
    def distance_calls(self) -> int:
        """Deprecated: use ``stats()['distance_calls']``."""
        warnings.warn(
            "NBIndex.distance_calls is deprecated; use "
            "NBIndex.stats()['distance_calls']",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._counting.calls

    def memory_bytes(self) -> int:
        """Deprecated: use ``stats()['memory_bytes']``."""
        warnings.warn(
            "NBIndex.memory_bytes() is deprecated; use "
            "NBIndex.stats()['memory_bytes']",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._memory_bytes()

    def _memory_bytes(self) -> int:
        """Approximate resident size of the index structures (Fig. 6(l)).

        Counts the vantage-coordinate matrix and, per tree node, the member
        id array plus the fixed scalar fields.
        """
        total = self.embedding.coords.nbytes
        per_node_fixed = 8 * 6  # id, centroid, radius, diameter, parent refs
        for node in self.tree.nodes:
            total += node.members.nbytes + per_node_fixed
        total += 8 * len(self.ladder)
        return total

    def _coverage_bytes(self) -> int:
        """Bytes the packed coverage state of a worst-case session occupies.

        A :class:`QuerySession` keeps one bitset row of relevant members
        per tree node plus the running covered bitset, all over a universe
        of at most ``|DB|`` ids.  This is the footprint the bitset kernel
        trades against the old per-node frozensets (~60 bytes per stored
        id); ``bench_fig6l_index_memory`` reports both.
        """
        words = bitset_kernel.num_words(len(self.database))
        return (self.tree.num_nodes + 1) * words * 8

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def session(self, query_fn) -> "QuerySession":
        """Start a session for a fixed relevance function ``q``.

        The session performs the initialization phase once and amortizes it
        over any number of (θ, k) queries — the paper's interactive
        refinement mode.
        """
        return QuerySession(self, query_fn)

    #: Keyword arguments :meth:`QuerySession.query` accepts beyond (θ, k).
    _QUERY_KWARGS = frozenset(
        {"stop_on_zero_gain", "enable_updates", "deadline", "cascade", "epsilon"}
    )

    def query(self, query_fn, theta: float, k: int, **kwargs) -> QueryResult:
        """One-shot top-k representative query (fresh session)."""
        unknown = set(kwargs) - self._QUERY_KWARGS
        if unknown:
            raise TypeError(
                f"NBIndex.query() got unexpected keyword arguments "
                f"{sorted(unknown)}; accepted: {sorted(self._QUERY_KWARGS)}"
            )
        return self.session(query_fn).query(theta, k, **kwargs)

    def set_ladder(self, ladder: ThresholdLadder) -> None:
        """Swap the π̂ threshold ladder.

        The ladder is consulted only at query-session initialization (the
        tree and embedding are ladder-independent), so re-laddering an
        existing index — e.g. after a query log accumulates, Sec. 7.1
        scheme 1 — is free.  Open sessions keep their old ladder.
        """
        require(len(ladder) >= 1, "ladder must be non-empty")
        self.ladder = ladder

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    #: Index-protocol capability flag: a plain NBIndex is a read-only
    #: view of an offline build (the legacy in-place :meth:`insert`
    #: notwithstanding) — open with ``repro.open_index(path,
    #: mutable=True)`` for the journaled delta layer.
    mutable = False

    def delete(self, gid: int) -> bool:
        raise ReadOnlyIndexError("delete", "NBIndex")

    def update(self, gid: int, graph, feature_row) -> int:
        raise ReadOnlyIndexError("update", "NBIndex")

    def compact(self) -> dict:
        raise ReadOnlyIndexError("compact", "NBIndex")

    def insert(self, graph, feature_row) -> int:
        """Add one graph to the database and the index; returns its id.

        The new graph is embedded against the vantage points, then routed
        down the NB-Tree to the closest-centroid cluster at each level and
        attached as a new leaf.  Cluster radii and diameters are *expanded
        conservatively* (``radius ← max(radius, d)``,
        ``diameter ← max(diameter, d + old_radius)``), which keeps every
        Theorem 6–8 bound valid; tree balance may degrade under heavy
        insertion, in which case rebuild.  Open sessions are invalidated —
        start a new session after inserting.
        """
        from repro.index.nbtree import NBTreeNode

        new_id = self.database.append(graph, feature_row)
        graph = self.database[new_id]
        if self.engine is not None:
            # Worker processes hold a snapshot of the graph list; drop the
            # pool so the next batch is created against the grown database.
            self.engine.invalidate_pool()
        self.embedding.append_graph(graph)

        tree = self.tree
        if tree.root.is_leaf:
            # Single-graph tree: grow an internal root above the old leaf.
            old_leaf = tree.root
            new_root = NBTreeNode(
                node_id=len(tree.nodes),
                centroid=old_leaf.graph_index,
                radius=0.0,
                diameter=0.0,
                members=old_leaf.members.copy(),
                children=[old_leaf],
            )
            tree.nodes.append(new_root)
            tree.root = new_root
        node = tree.root
        while True:
            node.members = np.sort(np.append(node.members, new_id))
            internal_children = [c for c in node.children if not c.is_leaf]
            distance_to_centroid = self.distance(
                graph, self.database[node.centroid]
            )
            node.radius = max(node.radius, distance_to_centroid)
            node.diameter = max(
                node.diameter, distance_to_centroid + node.radius
            )
            if not internal_children:
                break
            node = min(
                internal_children,
                key=lambda c: self.distance(graph, self.database[c.centroid]),
            )

        leaf = NBTreeNode(
            node_id=len(tree.nodes),
            centroid=new_id,
            radius=0.0,
            diameter=0.0,
            members=np.array([new_id]),
            graph_index=new_id,
        )
        tree.nodes.append(leaf)
        node.children.append(leaf)
        self._leaf_of[new_id] = leaf
        return new_id

    def __repr__(self) -> str:
        return (
            f"<NBIndex n={len(self.database)} "
            f"|V|={self.embedding.num_vantage_points} "
            f"b={self.tree.branching} nodes={self.tree.num_nodes}>"
        )


def _record_query_stats(stats: QueryStats) -> None:
    """Mirror one query's :class:`QueryStats` into the active registry."""
    if not obs.enabled():
        return
    obs.counter("query.count")
    obs.counter("query.distance_calls", stats.distance_calls)
    obs.counter("query.candidates_generated", stats.candidates_generated)
    obs.counter("query.candidate_verifications", stats.candidate_verifications)
    obs.counter("query.exact_neighborhoods", stats.exact_neighborhoods)
    obs.counter("query.nodes_popped", stats.nodes_popped)
    obs.counter("query.leaves_evaluated", stats.leaves_evaluated)
    obs.counter("query.pruned_subtrees", stats.pruned_subtrees)
    obs.counter("query.batch_decrements", stats.batch_decrements)
    obs.observe_time("query.init_seconds", stats.init_seconds)
    obs.observe_time("query.search_seconds", stats.search_seconds)
    obs.observe_time("query.update_seconds", stats.update_seconds)


def _spot_check_metric(database, distance, rng, num_triples: int = 25) -> None:
    """Sample triples and verify the metric axioms; raise on violation."""
    n = len(database)
    for _ in range(num_triples):
        a, b, c = (int(rng.integers(n)) for _ in range(3))
        d_ab = distance(database[a], database[b])
        d_ba = distance(database[b], database[a])
        if abs(d_ab - d_ba) > _EPS:
            raise ValueError(
                f"distance is not symmetric: d(g{a}, g{b})={d_ab} but "
                f"d(g{b}, g{a})={d_ba}"
            )
        if a == b and d_ab > _EPS:
            raise ValueError(f"d(g{a}, g{a}) = {d_ab} != 0")
        if d_ab < -_EPS:
            raise ValueError(f"negative distance d(g{a}, g{b}) = {d_ab}")
        d_ac = distance(database[a], database[c])
        d_cb = distance(database[c], database[b])
        if d_ab > d_ac + d_cb + _EPS:
            raise ValueError(
                "triangle inequality violated on sampled triple "
                f"(g{a}, g{c}, g{b}): {d_ab} > {d_ac} + {d_cb}; "
                "the NB-Index requires a metric distance"
            )


class QuerySession:
    """Per-relevance-function query state (initialization phase product).

    Holds the relevant set, per-node relevant member bitmaps (packed over
    a :class:`~repro.bitset.BitsetUniverse` of ``L_q``), lazily computed
    π̂ columns per indexed threshold, and the shared exact-distance cache —
    everything that survives a θ refinement.
    """

    def __init__(self, index: NBIndex, query_fn):
        self.index = index
        self.query_fn = query_fn
        started = time.perf_counter()
        self.relevant = index.database.relevant_indices(query_fn)
        self.relevant_set = frozenset(int(i) for i in self.relevant)
        self.universe = BitsetUniverse(self.relevant)
        self._position = self.universe.position
        # One packed row of relevant subtree members per tree node — the
        # store behind the Theorem 7 batch decrement (a popcount against
        # the newly-covered bitset) and the (gain, min-id) tie-break keys.
        self._node_bits = self.universe.empty_matrix(index.tree.num_nodes)
        self._node_min_gid = np.full(index.tree.num_nodes, _NO_GID, dtype=np.int64)
        self._collect_relevant(index.tree.root)
        self._node_has = bitset_kernel.popcount_rows(self._node_bits) > 0
        self._pi_hat_columns: dict[int | None, np.ndarray] = {}
        #: Per-query filter-cascade runtime (None → engine default).
        self._cascade = None
        #: Bytes of packed coverage state (node bitmaps + covered bitset).
        self.coverage_bytes = (
            self._node_bits.nbytes + self.universe.row_bytes
        )
        self.init_seconds = time.perf_counter() - started
        obs.observe_time("query.session_init_seconds", self.init_seconds)

    # -- initialization ------------------------------------------------
    def _collect_relevant(self, node: NBTreeNode) -> None:
        row = self._node_bits[node.node_id]
        if node.is_leaf:
            position = self.universe.position(node.graph_index)
            if position is not None:
                bitset_kernel.set_bit(row, position)
        else:
            for child in node.children:
                self._collect_relevant(child)
                bitset_kernel.union_into(row, self._node_bits[child.node_id])
        self._node_min_gid[node.node_id] = self.universe.min_id(row, _NO_GID)

    def relevant_in(self, node: NBTreeNode) -> frozenset[int]:
        """Relevant database graphs in the subtree of ``node``."""
        return self.universe.decode_frozenset(self._node_bits[node.node_id])

    def pi_hat_column(self, ladder_index: int | None) -> np.ndarray:
        """π̂ counts (|N̂| over L_q) for every relevant graph at one indexed
        threshold; the trivial bound |L_q| when θ exceeds the ladder."""
        column = self._pi_hat_columns.get(ladder_index)
        if column is None:
            if ladder_index is None:
                column = np.full(self.relevant.size, self.relevant.size)
            else:
                theta_i = self.index.ladder[ladder_index]
                column = self.index.embedding.candidate_counts(
                    self.relevant, [theta_i], self.relevant
                )[:, 0]
            self._pi_hat_columns[ladder_index] = column
        return column

    # -- the top-k query -----------------------------------------------
    def query(
        self,
        theta: float,
        k: int,
        stop_on_zero_gain: bool = False,
        enable_updates: bool = True,
        deadline=None,
        cascade=None,
        epsilon: float = 0.0,
    ) -> QueryResult:
        """Run the search-and-update phase for (θ, k).

        ``stop_on_zero_gain=True`` ends the query once no remaining graph
        adds coverage (the answer may then be smaller than k); the default
        mirrors Algorithm 1, which always performs k iterations.
        ``enable_updates=False`` disables the Theorem 6–8 update step (the
        search then relies on submodular staleness alone) — an ablation
        hook; results are identical, only the work profile changes.

        ``deadline`` (or an ambient :func:`~repro.resilience.deadline_scope`)
        budgets the query's exact-GED work: calls that exceed it degrade to
        upper bounds and the result's :class:`QueryStats` is marked
        ``degraded`` with the per-kind counts — an answer computed under
        pressure is flagged, never silently approximate.
        """
        require_positive(theta, "theta")
        require_positive(k, "k")
        from repro.cascade import runtime_for
        from repro.resilience.deadline import current_deadline, deadline_scope

        runtime = runtime_for(cascade, epsilon)
        self._cascade = runtime
        index = self.index
        ladder_index = index.ladder.index_for(theta)
        if ladder_index is None:
            # θ above the top rung has no indexed π̂ bound; refusing beats
            # silently degrading to a linear scan via the trivial |L_q|
            # bound (sessions may still opt into it via pi_hat_column(None)).
            obs.counter("index.offladder_theta")
            raise OffLadderThetaError(theta, index.ladder)
        stats = QueryStats(init_seconds=self.init_seconds)
        calls_before = index._counting.calls
        effective_deadline = deadline if deadline is not None else current_deadline()
        degradations_before = (
            dict(effective_deadline.degradations)
            if effective_deadline is not None else {}
        )

        with deadline_scope(deadline), \
                obs.span("index.query", theta=theta, k=k) as query_span:
            started = time.perf_counter()
            column = self.pi_hat_column(ladder_index)
            bounds = self._initial_bounds(column)
            stats.init_seconds += time.perf_counter() - started

            covered = self.universe.empty()
            answer: list[int] = []
            gains: list[int] = []
            neighborhoods: dict[int, np.ndarray] = {}

            for _ in range(min(k, self.relevant.size)):
                search_started = time.perf_counter()
                best, best_gain = self._search(
                    theta, bounds, covered, neighborhoods, stats
                )
                stats.search_seconds += time.perf_counter() - search_started
                if best is None:
                    break
                newly = bitset_kernel.andnot(neighborhoods[best], covered)
                gain = bitset_kernel.popcount(newly)
                if not gain and stop_on_zero_gain:
                    break
                answer.append(best)
                gains.append(gain)
                bitset_kernel.union_into(covered, newly)
                bounds[index._leaf_of[best].node_id] = _NEG_INF
                update_started = time.perf_counter()
                if gain and enable_updates:
                    self._update(
                        index.tree.root, best, newly, theta, bounds,
                        covered, neighborhoods, stats,
                    )
                stats.update_seconds += time.perf_counter() - update_started

            stats.distance_calls = index._counting.calls - calls_before
            if runtime is not None:
                stats.epsilon = runtime.epsilon
                stats.approximate = runtime.approximate
                stats.cascade = runtime.snapshot()
            if effective_deadline is not None:
                delta = {
                    kind: count - degradations_before.get(kind, 0)
                    for kind, count in effective_deadline.degradations.items()
                    if count > degradations_before.get(kind, 0)
                }
                stats.degradations = delta
                stats.degradation_events = sum(delta.values())
                stats.degraded = bool(delta)
                if stats.degraded:
                    obs.counter("query.degraded")
            query_span.set(answer_size=len(answer), degraded=stats.degraded)
            _record_query_stats(stats)
        return QueryResult(
            answer=answer,
            gains=gains,
            covered=self.universe.decode_frozenset(covered),
            num_relevant=int(self.relevant.size),
            theta=theta,
            stats=stats,
        )

    # -- internals -------------------------------------------------------
    def _initial_bounds(self, column: np.ndarray) -> np.ndarray:
        """Per-node working bounds W: π̂ at leaves, child ceilings above."""
        bounds = np.full(self.index.tree.num_nodes, _NEG_INF)

        def fill(node: NBTreeNode) -> float:
            if node.is_leaf:
                position = self._position(node.graph_index)
                value = float(column[position]) if position is not None else _NEG_INF
            else:
                value = max(
                    (fill(child) for child in node.children), default=_NEG_INF
                )
            bounds[node.node_id] = value
            return value

        fill(self.index.tree.root)
        return bounds

    def _exact_neighborhood(
        self,
        gid: int,
        theta: float,
        neighborhoods: dict[int, np.ndarray],
        stats: QueryStats,
    ) -> np.ndarray:
        """``N_θ(g)`` over L_q as a packed bitset: vantage candidates
        verified by edit distance."""
        cached = neighborhoods.get(gid)
        if cached is not None:
            return cached
        index = self.index
        runtime = self._cascade
        # ε > 0 shrinks the generation window to (1−ε)θ: members beyond it
        # may be dropped (N_{(1−ε)θ} ⊆ N' ⊆ N_θ), never wrongly added.
        gen_theta = theta if runtime is None else runtime.generation_theta(theta)
        candidates = index.embedding.candidates(gid, gen_theta + _EPS, self.relevant)
        stats.candidates_generated += int(candidates.size)
        verified = set()
        if index.engine is not None:
            others = [int(c) for c in candidates if int(c) != gid]
            if len(others) < candidates.size:
                verified.add(gid)
            stats.candidate_verifications += len(others)
            # The candidate window above already applied the vantage lower
            # bound at this threshold — `prefiltered` skips re-running it.
            mask = index.engine.within(
                gid, others, theta, cascade=runtime, prefiltered=True
            )
            verified.update(c for c, ok in zip(others, mask) if ok)
        else:
            graph = index.database[gid]
            for c in candidates:
                c = int(c)
                if c == gid:
                    verified.add(c)
                    continue
                stats.candidate_verifications += 1
                if index.distance(graph, index.database[c]) <= theta + _EPS:
                    verified.add(c)
        result = self.universe.encode_ids(
            np.fromiter(verified, dtype=np.int64, count=len(verified))
        )
        neighborhoods[gid] = result
        stats.exact_neighborhoods += 1
        return result

    def _search(
        self,
        theta: float,
        bounds: np.ndarray,
        covered: np.ndarray,
        neighborhoods: dict[int, np.ndarray],
        stats: QueryStats,
    ) -> tuple[int | None, float]:
        """Algorithm 2: best-first search for the next greedy selection."""
        index = self.index
        root = index.tree.root
        counter = itertools.count()
        root_bound = bounds[root.node_id]
        if root_bound == _NEG_INF:
            return None, 0.0
        heap: list[tuple[float, int, float, NBTreeNode]] = [
            (-root_bound, next(counter), root_bound, root)
        ]
        best: int | None = None
        best_gain = -1.0

        min_gid = self._node_min_gid
        while heap:
            _, _, pushed_bound, node = heapq.heappop(heap)
            stats.nodes_popped += 1
            # Heap entries are ordered by their bound at push time, which is
            # a valid upper bound on every gain in the subtree.  Once the
            # top of the heap cannot beat the incumbent, nothing below can
            # (lines 6-7 of Algorithm 2).  A subtree that could only *tie*
            # the incumbent still matters when it holds a smaller graph id —
            # the canonical selection rule is (max gain, min id), which
            # makes the answer independent of tree shape and partitioning.
            if best is not None:
                if pushed_bound < best_gain:
                    break
                if pushed_bound == best_gain and min_gid[node.node_id] > best:
                    continue
            # The node's own bound may have been tightened by an update
            # since it was pushed; a stale entry is skipped, not terminal.
            current = min(pushed_bound, float(bounds[node.node_id]))
            if best is not None and (
                current < best_gain
                or (current == best_gain and min_gid[node.node_id] > best)
            ):
                continue
            if node.is_leaf:
                gid = node.graph_index
                if gid is None or bounds[node.node_id] == _NEG_INF:
                    continue
                neighborhood = self._exact_neighborhood(
                    gid, theta, neighborhoods, stats
                )
                gain = float(bitset_kernel.uncovered_count(neighborhood, covered))
                bounds[node.node_id] = gain
                stats.leaves_evaluated += 1
                if gain > best_gain or (
                    gain == best_gain and (best is None or gid < best)
                ):
                    best_gain = gain
                    best = gid
            else:
                for child in node.children:
                    if not self._node_has[child.node_id]:
                        continue
                    child_bound = min(float(bounds[child.node_id]), current)
                    if child_bound == _NEG_INF:
                        continue
                    if (
                        best is None
                        or child_bound > best_gain
                        or (
                            child_bound == best_gain
                            and min_gid[child.node_id] < best
                        )
                    ):
                        heapq.heappush(
                            heap,
                            (-child_bound, next(counter), child_bound, child),
                        )
        return best, best_gain

    def _update(
        self,
        node: NBTreeNode,
        selected: int,
        newly: np.ndarray,
        theta: float,
        bounds: np.ndarray,
        covered: np.ndarray,
        neighborhoods: dict[int, np.ndarray],
        stats: QueryStats,
    ) -> None:
        """Theorems 6–8: batch-tighten bounds after adding ``selected``.

        One centroid distance per visited node; subtrees provably outside
        the ``2θ`` influence ball are skipped (Theorem 6); clusters fully
        inside the new neighborhood with diameter ≤ θ get a single
        decrement (Theorem 7), with the recursion realizing Theorem 8 for
        partially overlapping parents.  Leaves with a cached exact
        neighborhood are refreshed to their exact residual gain.
        """
        if bounds[node.node_id] == _NEG_INF:
            return
        index = self.index
        centroid_distance = index.distance(
            index.database[selected], index.database[node.centroid]
        )
        if centroid_distance - node.radius > 2.0 * theta + _EPS:
            stats.pruned_subtrees += 1
            return  # Theorem 6: no member's neighborhood changed.
        if node.is_leaf:
            gid = node.graph_index
            cached = neighborhoods.get(gid)
            if cached is not None:
                bounds[node.node_id] = float(
                    bitset_kernel.uncovered_count(cached, covered)
                )
            elif centroid_distance <= theta + _EPS and (
                (position := self._position(gid)) is not None
                and bitset_kernel.test_bit(newly, position)
            ):
                # The leaf itself is newly covered: its own neighborhood
                # contains it, so its gain shrinks by at least one.
                bounds[node.node_id] = max(0.0, bounds[node.node_id] - 1.0)
            return
        if (
            node.diameter <= theta + _EPS
            and centroid_distance + node.radius <= theta + _EPS
        ):
            # Theorem 7 (exact-coverage form): the cluster is inside
            # N(selected) and every member's neighborhood contains the
            # cluster, so each loses the newly covered relevant members.
            decrement = bitset_kernel.intersection_count(
                self._node_bits[node.node_id], newly
            )
            if decrement:
                stats.batch_decrements += 1
                bounds[node.node_id] = max(
                    0.0, bounds[node.node_id] - float(decrement)
                )
            return
        for child in node.children:
            self._update(
                child, selected, newly, theta, bounds, covered,
                neighborhoods, stats,
            )

    def __repr__(self) -> str:
        return (
            f"<QuerySession relevant={self.relevant.size} "
            f"of {len(self.index.database)}>"
        )

"""The NB-Tree: hierarchical disjoint clustering of the database (Sec. 6.4).

The tree is built top-down: at each node up to ``b`` pivots are chosen
farthest-first (the first at random, each next maximizing its minimum
distance to the chosen ones), every member is assigned to its closest
pivot, and the procedure recurses until clusters fall to ``b`` graphs or
fewer.  Leaves are individual graphs; each internal node stores its
centroid (the pivot), radius (max centroid–member distance) and diameter
(sum of the two largest centroid distances, the paper's rule).

Edit distances dominate construction cost, so pivot assignment is
accelerated with the vantage embedding exactly as Sec. 6.4 prescribes:
a pivot is skipped for a member when the vantage *lower* bound already
exceeds the member's current closest-pivot distance.  The build records
how many exact distances this avoided — the paper reports "< 1% of the
candidate pairs" end up needing exact evaluation on DUD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.index.vantage import VantageEmbedding
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass
class NBTreeNode:
    """One node of the NB-Tree.

    A leaf represents a single database graph (``graph_index`` set,
    ``children`` empty).  An internal node represents a cluster: the
    ``members`` array lists every database graph in its subtree.
    """

    node_id: int
    centroid: int
    radius: float
    diameter: float
    members: np.ndarray
    children: list["NBTreeNode"] = field(default_factory=list)
    graph_index: int | None = None

    @property
    def is_leaf(self) -> bool:
        return self.graph_index is not None

    def __repr__(self) -> str:
        kind = f"leaf g{self.graph_index}" if self.is_leaf else (
            f"cluster |c|={len(self.members)} r={self.radius:.2f} "
            f"diam={self.diameter:.2f}"
        )
        return f"<NBTreeNode #{self.node_id} {kind}>"


@dataclass
class BuildStats:
    """Construction-cost accounting."""

    exact_distances: int = 0
    pruned_by_vantage: int = 0

    @property
    def candidate_pairs(self) -> int:
        return self.exact_distances + self.pruned_by_vantage

    @property
    def exact_fraction(self) -> float:
        total = self.candidate_pairs
        return self.exact_distances / total if total else 0.0


class NBTree:
    """The clustering component of the NB-Index.

    Parameters
    ----------
    graphs:
        Database graphs in id order.
    distance:
        The metric; wrap it in a counting/caching facade if needed.
    embedding:
        Vantage embedding of the same graphs (used only to prune pivot
        assignment; pass ``None`` to build without acceleration).
    branching:
        Maximum fan-out ``b``; also the cluster size below which recursion
        stops (paper default 40; small values suit memory-resident use).
    engine:
        Optional :class:`~repro.engine.DistanceEngine`; the per-pivot
        member scans then run as batches.  The assignment, radii,
        diameters and pruning counters are identical either way.
    """

    def __init__(
        self,
        graphs,
        distance: GraphDistanceFn,
        embedding: VantageEmbedding | None,
        branching: int = 8,
        rng=None,
        engine=None,
    ):
        require(branching >= 2, f"branching must be >= 2, got {branching}")
        require(len(graphs) > 0, "cannot build a tree over an empty database")
        self._graphs = graphs
        self._distance = distance
        self._embedding = embedding
        self._engine = engine
        self.branching = branching
        self.stats = BuildStats()
        self.nodes: list[NBTreeNode] = []
        rng = ensure_rng(rng)
        all_members = np.arange(len(graphs))
        self.root = self._build(all_members, rng)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_node(self, **kwargs) -> NBTreeNode:
        node = NBTreeNode(node_id=len(self.nodes), **kwargs)
        self.nodes.append(node)
        return node

    def _exact(self, i: int, j: int) -> float:
        self.stats.exact_distances += 1
        return float(self._distance(self._graphs[i], self._graphs[j]))

    def _exact_batch(self, source: int, targets) -> np.ndarray:
        """``d(source, t)`` for many targets through the engine.

        Counts one exact distance per target — the same accounting as the
        per-pair path, which also counts cache-served evaluations.
        """
        targets = list(targets)
        self.stats.exact_distances += len(targets)
        if self._engine.graphs is self._graphs:
            refs = targets
        else:
            refs = [self._graphs[int(t)] for t in targets]
        return np.asarray(
            self._engine.one_to_many(
                source if self._engine.graphs is self._graphs
                else self._graphs[source],
                refs,
            ),
            dtype=float,
        )

    def _leaf(self, index: int) -> NBTreeNode:
        return self._new_node(
            centroid=index,
            radius=0.0,
            diameter=0.0,
            members=np.array([index]),
            graph_index=index,
        )

    def _bucket(self, members: np.ndarray, centroid: int) -> NBTreeNode:
        """Terminal cluster: children are the member leaves."""
        if self._engine is not None:
            others = [int(m) for m in members if int(m) != centroid]
            values = iter(self._exact_batch(centroid, others))
            distances = [
                0.0 if int(m) == centroid else float(next(values))
                for m in members
            ]
        else:
            distances = [
                0.0 if int(m) == centroid else self._exact(centroid, int(m))
                for m in members
            ]
        node = self._new_node(
            centroid=centroid,
            radius=float(max(distances)),
            diameter=_diameter_from_centroid_distances(distances),
            members=np.sort(members),
        )
        node.children = [self._leaf(int(m)) for m in members]
        return node

    def _build(self, members: np.ndarray, rng) -> NBTreeNode:
        if members.size == 1:
            return self._leaf(int(members[0]))
        if members.size <= self.branching:
            centroid = int(members[rng.integers(members.size)])
            return self._bucket(members, centroid)

        pivots, assignment, first_pivot_distances = self._choose_pivots(members, rng)

        clusters: dict[int, list[int]] = {p: [] for p in pivots}
        for idx, member in enumerate(members):
            clusters[assignment[idx]].append(int(member))

        children: list[NBTreeNode] = []
        for pivot in pivots:
            cluster_members = np.array(clusters[pivot])
            if cluster_members.size == 0:
                continue
            if cluster_members.size == members.size:
                # Degenerate split (e.g. all members identical): stop the
                # recursion with a flat bucket to guarantee termination.
                children.append(self._bucket(cluster_members, pivot))
            elif cluster_members.size == 1:
                children.append(self._leaf(int(cluster_members[0])))
            else:
                children.append(self._build(cluster_members, rng))

        if len(children) == 1:
            return children[0]

        # The first pivot acts as this cluster's centroid; its distances to
        # all members were computed during pivot selection.
        centroid = pivots[0]
        centroid_distances = [
            first_pivot_distances[int(m)] for m in members
        ]
        return self._new_node(
            centroid=centroid,
            radius=float(max(centroid_distances)),
            diameter=_diameter_from_centroid_distances(centroid_distances),
            members=np.sort(members),
            children=children,
        )

    def _choose_pivots(self, members: np.ndarray, rng):
        """Farthest-first pivot selection with vantage-bound pruning.

        Returns ``(pivots, assignment, first_pivot_distances)`` where
        ``assignment[i]`` is the pivot closest to ``members[i]`` and
        ``first_pivot_distances`` maps each member to its exact distance
        from the first pivot (this cluster's centroid).  Skipped
        evaluations (vantage lower bound already ≥ the current closest
        distance) cannot change the assignment.
        """
        first = int(members[rng.integers(members.size)])
        pivots = [first]
        if self._engine is not None:
            others = [int(m) for m in members if int(m) != first]
            values = iter(self._exact_batch(first, others))
            min_dist = np.array(
                [0.0 if int(m) == first else float(next(values)) for m in members]
            )
        else:
            min_dist = np.array(
                [0.0 if int(m) == first else self._exact(first, int(m))
                 for m in members]
            )
        first_pivot_distances = dict(
            zip((int(m) for m in members), (float(d) for d in min_dist))
        )
        assignment = np.full(members.size, first)

        member_set = set(int(m) for m in members)
        while len(pivots) < self.branching:
            candidate_order = np.argsort(min_dist)[::-1]
            new_pivot = None
            for idx in candidate_order:
                candidate = int(members[idx])
                if candidate not in pivots:
                    new_pivot = candidate
                    break
            if new_pivot is None or min_dist.max() == 0.0:
                break
            pivots.append(new_pivot)
            if self._embedding is not None:
                lower = self._embedding.lower_bounds_to(
                    self._embedding.coords[new_pivot], members
                )
            else:
                lower = np.zeros(members.size)
            # Which members need a real distance to the new pivot?  The
            # per-member updates are independent, so evaluating them as one
            # batch leaves every assignment and counter unchanged.
            to_evaluate: list[int] = []
            for idx, member in enumerate(members):
                member = int(member)
                if member == new_pivot:
                    min_dist[idx] = 0.0
                    assignment[idx] = new_pivot
                elif lower[idx] >= min_dist[idx]:
                    self.stats.pruned_by_vantage += 1
                else:
                    to_evaluate.append(idx)
            if not to_evaluate:
                continue
            if self._engine is not None:
                exact = self._exact_batch(
                    new_pivot, [int(members[idx]) for idx in to_evaluate]
                )
            else:
                exact = [
                    self._exact(new_pivot, int(members[idx]))
                    for idx in to_evaluate
                ]
            for idx, d in zip(to_evaluate, exact):
                if d < min_dist[idx]:
                    min_dist[idx] = float(d)
                    assignment[idx] = new_pivot
        assert set(assignment) <= member_set
        return pivots, assignment, first_pivot_distances

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def height(self) -> int:
        def depth(node: NBTreeNode) -> int:
            if not node.children:
                return 1
            return 1 + max(depth(c) for c in node.children)

        return depth(self.root)

    def leaves(self) -> list[NBTreeNode]:
        return [node for node in self.nodes if node.is_leaf]

    def validate(self) -> list[str]:
        """Structural invariants; returns human-readable violations.

        Checks member partitioning, radius/diameter correctness with respect
        to the true metric, and leaf coverage.  O(n·height) distance calls —
        test-only.
        """
        problems: list[str] = []
        for node in self.nodes:
            if node.is_leaf:
                continue
            child_members = np.sort(
                np.concatenate([c.members for c in node.children])
            )
            if not np.array_equal(child_members, node.members):
                problems.append(f"node {node.node_id}: children do not partition members")
            centroid_graph = self._graphs[node.centroid]
            for m in node.members:
                d = self._distance(centroid_graph, self._graphs[int(m)])
                if d > node.radius + 1e-9:
                    problems.append(
                        f"node {node.node_id}: member {m} at {d:.3f} beyond "
                        f"radius {node.radius:.3f}"
                    )
        leaf_ids = sorted(
            node.graph_index for node in self.nodes if node.is_leaf
        )
        if leaf_ids != list(range(len(self._graphs))):
            problems.append("leaves do not cover the database exactly once")
        return problems


def _diameter_from_centroid_distances(distances) -> float:
    """Paper's diameter estimate: sum of the two largest centroid distances.

    By the triangle inequality this upper-bounds the true pairwise
    diameter, which is what Theorems 7–8 need.
    """
    if len(distances) < 2:
        return 0.0
    top_two = sorted(distances)[-2:]
    return float(top_two[0] + top_two[1])

"""Typed errors for index query-time misuse.

Build/load failures live in :mod:`repro.resilience.errors` (they are
persistence problems); this module holds errors about *queries* that the
index cannot answer honestly as asked.
"""

from __future__ import annotations


class ReadOnlyIndexError(TypeError):
    """A mutation method was called on an immutable index.

    ``NBIndex`` and ``ShardedIndex`` objects opened the ordinary way are
    read-only views of an offline build; mutations need the delta layer.
    Reopen through :func:`repro.open_index` with ``mutable=True`` to get
    a :class:`~repro.delta.MutableIndex` that accepts them.
    """

    def __init__(self, operation: str, index_kind: str):
        self.operation = operation
        self.index_kind = index_kind
        super().__init__(
            f"{index_kind}.{operation}() needs a mutable index; this one "
            f"is read-only — reopen it with "
            f"repro.open_index(path, mutable=True)"
        )


class OffLadderThetaError(ValueError):
    """θ lies above every indexed π̂ rung.

    The π̂-vector machinery answers any θ *covered* by the ladder (the
    smallest indexed rung ≥ θ is a valid upper bound, Def. 6); a θ above
    the top rung has no indexed bound at all, and silently falling back to
    the trivial ``|L_q|`` bound turns the index into a linear scan without
    telling anyone.  The error lists the nearest indexed rungs so callers
    can snap the query to one, and names the two remedies: re-ladder the
    existing index (:meth:`~repro.index.NBIndex.set_ladder` — free, the
    tree and embedding are ladder-independent) or rebuild with
    ``thresholds`` covering the θ range actually queried.
    """

    def __init__(self, theta: float, ladder):
        values = tuple(
            float(v) for v in (ladder.values if hasattr(ladder, "values") else ladder)
        )
        theta = float(theta)
        nearest = tuple(sorted(sorted(values, key=lambda v: abs(v - theta))[:3]))
        self.theta = theta
        self.ladder_max = max(values)
        self.nearest_rungs = nearest
        rungs = ", ".join(f"{v:g}" for v in nearest)
        super().__init__(
            f"theta={theta:g} is above the indexed pi-hat ladder "
            f"(max rung {self.ladder_max:g}; nearest indexed rungs: "
            f"[{rungs}]); query at an indexed rung, re-ladder with "
            f"set_ladder(), or rebuild with thresholds covering this theta"
        )

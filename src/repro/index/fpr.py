"""False-positive-rate theory for vantage points (Sec. 6.2.1).

The benefit of more vantage points is a tighter candidate superset
``N̂_θ(g)``; the cost is linear in ``|V|`` in both storage and candidate
generation.  The paper derives closed-form upper bounds on the probability
that a random pair is a *false positive* — passing every vantage filter yet
lying beyond θ — under Gaussian (Eq. 11) and uniform (Eq. 12) distance
distributions, and uses them to size ``|V|`` (100 VPs for ≤ 5% FPR in the
experiments).

This module implements those bounds, the |V| selection rule, and the
empirical FPR estimator used in Figs. 5(f)–5(h).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.ged.metric import GraphDistanceFn
from repro.index.vantage import VantageEmbedding
from repro.utils.rng import ensure_rng
from repro.utils.validation import require, require_positive


def fpr_upper_bound_gaussian(
    theta: float,
    mu: float,
    sigma: float,
    num_vps: int,
) -> float:
    """Eq. 11: FPR ≤ (1 − Φ((θ−μ)/σ)) · (2Φ(θ/σ) − 1)^|V|.

    ``mu``/``sigma`` are the mean and standard deviation of the pairwise
    distance distribution, assumed Gaussian.
    """
    require_positive(sigma, "sigma")
    require(num_vps >= 1, f"num_vps must be >= 1, got {num_vps}")
    miss = 1.0 - norm.cdf((theta - mu) / sigma)
    per_vp_pass = 2.0 * norm.cdf(theta / sigma) - 1.0
    per_vp_pass = min(max(per_vp_pass, 0.0), 1.0)
    return float(miss * per_vp_pass**num_vps)


def fpr_uniform(theta: float, diameter: float, num_vps: int) -> float:
    """Eq. 12: with d ~ U(0, mθ), FPR = ((m−1)/m) · m^{−|V|}.

    ``diameter`` is the metric-space diameter ``mθ``.
    """
    require_positive(theta, "theta")
    require_positive(diameter, "diameter")
    require(num_vps >= 1, f"num_vps must be >= 1, got {num_vps}")
    m = diameter / theta
    if m <= 1.0:
        # Every pair is within θ; no false positives are possible.
        return 0.0
    return float((m - 1.0) / m * m**-num_vps)


def choose_num_vps(
    target_fpr: float,
    thetas,
    mu: float,
    sigma: float,
    max_vps: int = 1024,
) -> int:
    """Smallest |V| whose Gaussian bound stays below ``target_fpr``
    across every θ in ``thetas`` — the sizing rule behind the paper's
    "100 VPs for FPR < 5% over the realistic θ zone".
    """
    require(0.0 < target_fpr < 1.0, f"target_fpr must be in (0,1), got {target_fpr}")
    thetas = list(thetas)
    require(len(thetas) > 0, "thetas must be non-empty")
    for num_vps in range(1, max_vps + 1):
        worst = max(
            fpr_upper_bound_gaussian(theta, mu, sigma, num_vps) for theta in thetas
        )
        if worst <= target_fpr:
            return num_vps
    return max_vps


def empirical_fpr(
    embedding: VantageEmbedding,
    distance: GraphDistanceFn,
    graphs,
    theta: float,
    num_pairs: int = 2000,
    rng=None,
) -> float:
    """Measured FPR over sampled pairs: P(vantage filters pass ∧ d > θ).

    Matches the quantity bounded by Eq. 8/11 — the probability that a
    random pair survives every vantage filter yet is not a true neighbor.
    """
    rng = ensure_rng(rng)
    n = len(embedding)
    require(n >= 2, "need at least two graphs")
    false_positives = 0
    for _ in range(num_pairs):
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        while j == i:
            j = int(rng.integers(n))
        if embedding.lower_bound(i, j) <= theta:
            if distance(graphs[i], graphs[j]) > theta:
                false_positives += 1
    return false_positives / num_pairs


def distance_moments(
    graphs,
    distance: GraphDistanceFn,
    num_pairs: int = 2000,
    rng=None,
) -> tuple[float, float]:
    """Sampled mean and standard deviation of the pairwise distance
    distribution — the μ, σ that feed Eq. 11 (cf. Figs. 5(c)–5(e))."""
    rng = ensure_rng(rng)
    n = len(graphs)
    require(n >= 2, "need at least two graphs")
    samples = np.empty(num_pairs)
    for t in range(num_pairs):
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        while j == i:
            j = int(rng.integers(n))
        samples[t] = distance(graphs[i], graphs[j])
    return float(samples.mean()), float(samples.std())

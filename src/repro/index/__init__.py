"""The NB-Index: vantage orderings, NB-Tree, π̂-vectors, query engine."""

from repro.index.vantage import VantageEmbedding, select_vantage_points
from repro.index.fpr import (
    choose_num_vps,
    distance_moments,
    empirical_fpr,
    fpr_uniform,
    fpr_upper_bound_gaussian,
)
from repro.index.nbtree import BuildStats, NBTree, NBTreeNode
from repro.index.pivec import ThresholdLadder, choose_thresholds, ladder_from_query_log
from repro.index.errors import OffLadderThetaError
from repro.index.nbindex import NBIndex, QueryResult, QuerySession, QueryStats
from repro.index.persistence import load_index, save_index
from repro.resilience.errors import (
    CorruptIndexError,
    DatabaseMismatchError,
    IndexFormatError,
)

__all__ = [
    "save_index",
    "load_index",
    "CorruptIndexError",
    "IndexFormatError",
    "DatabaseMismatchError",
    "VantageEmbedding",
    "select_vantage_points",
    "fpr_upper_bound_gaussian",
    "fpr_uniform",
    "choose_num_vps",
    "empirical_fpr",
    "distance_moments",
    "NBTree",
    "NBTreeNode",
    "BuildStats",
    "ThresholdLadder",
    "choose_thresholds",
    "ladder_from_query_log",
    "NBIndex",
    "OffLadderThetaError",
    "QuerySession",
    "QueryResult",
    "QueryStats",
]

"""Threshold ladders for π̂-vectors (Def. 6 and Sec. 7.1).

A π̂-vector stores, per graph, upper bounds on its representative power at a
fixed ladder of distance thresholds ``θ_1 < … < θ_t``.  At query time the
bound for an arbitrary θ is read from the smallest indexed ``θ_i ≥ θ``
(π̂ is monotone in θ, so that entry is a valid upper bound for θ).

Section 7.1 gives two schemes for choosing the ladder offline:

* *query log*: sample the thresholds of past queries;
* *no information*: place thresholds proportionally to the slope of the
  π(g)-vs-θ curve — i.e. densely where the pairwise-distance CDF is steep.
  Since the average π(g) at θ is exactly ``|L_q|`` times the distance CDF
  at θ, equal-mass quantiles of a sampled pairwise-distance distribution
  achieve slope-proportional placement; that is :func:`choose_thresholds`.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


class ThresholdLadder:
    """An ordered, deduplicated ladder of indexed distance thresholds."""

    def __init__(self, thresholds: Sequence[float]):
        values = sorted(set(float(t) for t in thresholds))
        require(len(values) > 0, "ladder must contain at least one threshold")
        require(values[0] >= 0.0, "thresholds must be non-negative")
        self.values: tuple[float, ...] = tuple(values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def index_for(self, theta: float) -> int | None:
        """Index of the smallest ladder threshold ≥ θ, or ``None`` when θ
        exceeds the ladder (callers fall back to the trivial bound)."""
        position = bisect.bisect_left(self.values, theta)
        return position if position < len(self.values) else None

    def covering_threshold(self, theta: float) -> float | None:
        """The smallest indexed threshold ≥ θ itself, or ``None``."""
        index = self.index_for(theta)
        return self.values[index] if index is not None else None

    def gap(self, theta: float) -> float | None:
        """Distance between θ and its covering threshold (Figs. 5(l)/6(a))."""
        covering = self.covering_threshold(theta)
        return covering - theta if covering is not None else None

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" for v in self.values)
        return f"ThresholdLadder([{inner}])"


def sample_distinct_pairs(n: int, num_pairs: int, rng) -> list[tuple[int, int]]:
    """Uniformly random distinct index pairs, resampling self-pairs.

    The rng draw sequence is exactly the historical interleaved one —
    distance evaluation never consumed randomness — so callers can batch
    the evaluations without perturbing seeded experiments.
    """
    pairs: list[tuple[int, int]] = []
    for _ in range(num_pairs):
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        while j == i:
            j = int(rng.integers(n))
        pairs.append((i, j))
    return pairs


def choose_thresholds(
    graphs,
    distance: GraphDistanceFn,
    count: int = 10,
    num_pairs: int = 1000,
    rng=None,
    engine=None,
) -> ThresholdLadder:
    """Slope-proportional ladder from sampled pairwise distances (scheme 2).

    Thresholds are the equal-mass quantiles of a random-pair distance
    sample, so regions where π(g) climbs steeply with θ (dense distance
    mass) receive more indexed thresholds — the paper's recommendation when
    no query log exists.  With an ``engine`` the sampled pairs are
    evaluated as one batch (same pairs, same values, same ladder).
    """
    require(count >= 1, f"count must be >= 1, got {count}")
    require(len(graphs) >= 2, "need at least two graphs to sample distances")
    rng = ensure_rng(rng)
    pairs = sample_distinct_pairs(len(graphs), num_pairs, rng)
    if engine is not None:
        samples = np.asarray(
            engine.pairs([(graphs[i], graphs[j]) for i, j in pairs])
        )
    else:
        samples = np.array(
            [float(distance(graphs[i], graphs[j])) for i, j in pairs]
        )
    quantile_levels = np.linspace(0.0, 1.0, count + 1)[1:]
    thresholds = np.quantile(samples, quantile_levels)
    return ThresholdLadder(thresholds)


def ladder_from_query_log(
    logged_thetas: Sequence[float],
    count: int = 10,
    rng=None,
) -> ThresholdLadder:
    """Scheme 1: sample (without replacement) from a past-query θ log."""
    logged = [float(t) for t in logged_thetas]
    require(len(logged) > 0, "query log is empty")
    rng = ensure_rng(rng)
    distinct = sorted(set(logged))
    if len(distinct) <= count:
        return ThresholdLadder(distinct)
    chosen = rng.choice(len(logged), size=count, replace=False)
    return ThresholdLadder(logged[int(i)] for i in chosen)

"""Vantage points and vantage orderings (Sec. 6.2 of the paper).

A vantage point ``v`` Lipschitz-embeds the metric space into one dimension:
graph ``g`` becomes the scalar ``d(v, g)``.  With a set of vantage points
``V`` the embedding is ``|V|``-dimensional, and the *vantage distance*

``d_V(g, g') = max_{v ∈ V} | d(v, g) − d(v, g') |``

is a lower bound on the true distance (Theorem 4: triangle inequality).
Hence the Chebyshev ball of radius θ around ``g`` in the embedded space —
computed with pure array arithmetic, no edit distances — is a superset
``N̂_θ(g) ⊇ N_θ(g)`` of the true θ-neighborhood (Theorem 5).  Expensive
edit distances are then needed only to verify the candidates.

:class:`VantageEmbedding` holds the precomputed ``(n, |V|)`` coordinate
matrix — the paper's Vantage Orderings, stored column-sorted so candidate
generation can seed from a binary-searched window on the first vantage
point before refining with the rest.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.cascade.stages import BLOCK_EVALS
from repro.ged.metric import GraphDistanceFn
from repro.graphs.graph import LabeledGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


def select_vantage_points(
    graphs: Sequence[LabeledGraph],
    count: int,
    rng=None,
    strategy: str = "random",
    distance: GraphDistanceFn | None = None,
    engine=None,
) -> list[int]:
    """Choose ``count`` vantage-point indices from ``graphs``.

    ``strategy='random'`` is the paper's choice (Def. 3 selects VPs
    randomly; the FPR analysis of Sec. 6.2.1 assumes it).
    ``strategy='maxmin'`` is the classic farthest-first alternative offered
    for the ablation benchmarks; it needs ``distance``.  Each maxmin round
    is an O(n) distance scan; pass a
    :class:`~repro.engine.DistanceEngine` to evaluate the scans as batches
    (identical values, identical selection).
    """
    require(0 < count <= len(graphs), f"count {count} not in 1..{len(graphs)}")
    rng = ensure_rng(rng)
    if strategy == "random":
        chosen = rng.choice(len(graphs), size=count, replace=False)
        return sorted(int(i) for i in chosen)
    if strategy == "maxmin":
        require(
            distance is not None or engine is not None,
            "maxmin strategy requires a distance",
        )

        def scan(pivot: int) -> np.ndarray:
            if engine is not None:
                return np.asarray(
                    engine.one_to_many(graphs[pivot], list(graphs)), dtype=float
                )
            return np.array(
                [distance(graphs[pivot], g) for g in graphs], dtype=float
            )

        first = int(rng.integers(len(graphs)))
        chosen_list = [first]
        min_dist = scan(first)
        while len(chosen_list) < count:
            nxt = int(np.argmax(min_dist))
            chosen_list.append(nxt)
            np.minimum(min_dist, scan(nxt), out=min_dist)
        return sorted(chosen_list)
    raise ValueError(f"unknown strategy {strategy!r}; use 'random' or 'maxmin'")


class VantageEmbedding:
    """Precomputed vantage orderings over a graph collection.

    Parameters
    ----------
    graphs:
        The database graphs, in id order.
    vantage_indices:
        Indices of the chosen vantage points within ``graphs``.
    distance:
        The underlying metric; called ``|V| · n`` times at construction.
    engine:
        Optional :class:`~repro.engine.DistanceEngine`; each vantage
        column is then computed as one batch (identical values).
    """

    def __init__(
        self,
        graphs: Sequence[LabeledGraph],
        vantage_indices: Sequence[int],
        distance: GraphDistanceFn,
        engine=None,
    ):
        require(len(vantage_indices) > 0, "at least one vantage point required")
        self._graphs = graphs
        self._distance = distance
        self.vantage_indices = list(int(i) for i in vantage_indices)
        coords = np.empty((len(graphs), len(self.vantage_indices)))
        for j, vp in enumerate(self.vantage_indices):
            vantage_graph = graphs[vp]
            if engine is not None:
                coords[:, j] = engine.one_to_many(vantage_graph, list(graphs))
            else:
                coords[:, j] = [distance(vantage_graph, g) for g in graphs]
        self.coords = coords
        # Vantage Orderings proper: per-VP sort of the database.  Only the
        # first ordering is used to seed candidate windows; the remaining
        # columns refine via vectorized Chebyshev checks.
        self._order0 = np.argsort(coords[:, 0], kind="stable")
        self._sorted0 = coords[self._order0, 0]

    @classmethod
    def from_coords(
        cls,
        graphs: Sequence[LabeledGraph],
        vantage_indices: Sequence[int],
        distance: GraphDistanceFn,
        coords: np.ndarray,
    ) -> "VantageEmbedding":
        """Rehydrate an embedding from a precomputed coordinate matrix
        (index load, checkpoint resume) — no distances are evaluated."""
        require(len(vantage_indices) > 0, "at least one vantage point required")
        coords = np.array(coords, dtype=float)
        require(
            coords.shape == (len(graphs), len(vantage_indices)),
            f"coords shape {coords.shape} does not match "
            f"({len(graphs)}, {len(vantage_indices)})",
        )
        embedding = cls.__new__(cls)
        embedding._graphs = graphs
        embedding._distance = distance
        embedding.vantage_indices = [int(i) for i in vantage_indices]
        embedding.coords = coords
        embedding._order0 = np.argsort(coords[:, 0], kind="stable")
        embedding._sorted0 = coords[embedding._order0, 0]
        return embedding

    @property
    def num_vantage_points(self) -> int:
        return self.coords.shape[1]

    def __len__(self) -> int:
        return self.coords.shape[0]

    # ------------------------------------------------------------------
    # Embedding external graphs (NB-Tree pivots, ad-hoc queries)
    # ------------------------------------------------------------------
    def embed(self, g: LabeledGraph) -> np.ndarray:
        """Vantage coordinates of an arbitrary graph (``|V|`` distances)."""
        return np.array(
            [self._distance(self._graphs[vp], g) for vp in self.vantage_indices]
        )

    # ------------------------------------------------------------------
    # Bounds (Theorem 4 and its dual)
    # ------------------------------------------------------------------
    def lower_bound(self, i: int, j: int) -> float:
        """Vantage distance ``d_V`` — a lower bound on ``d(g_i, g_j)``."""
        return float(np.max(np.abs(self.coords[i] - self.coords[j])))

    def upper_bound(self, i: int, j: int) -> float:
        """``min_v d(v, g_i) + d(v, g_j)`` — an upper bound on ``d(g_i, g_j)``."""
        return float(np.min(self.coords[i] + self.coords[j]))

    def lower_bounds_to(self, coords_g: np.ndarray, among: np.ndarray) -> np.ndarray:
        """Vantage distances from a coordinate vector to many graphs at once."""
        return np.max(np.abs(self.coords[among] - coords_g), axis=1)

    def upper_bounds_to(self, coords_g: np.ndarray, among: np.ndarray) -> np.ndarray:
        """Vantage upper bounds from a coordinate vector to many graphs."""
        return np.min(self.coords[among] + coords_g, axis=1)

    # ------------------------------------------------------------------
    # Candidate generation (Theorem 5)
    # ------------------------------------------------------------------
    def candidates(
        self,
        i: int,
        theta: float,
        among: np.ndarray | None = None,
    ) -> np.ndarray:
        """``N̂_θ(g_i)``: ids whose vantage distance to ``g_i`` is ≤ θ.

        Guaranteed superset of the true θ-neighborhood restricted to
        ``among`` (all ids when omitted).  Uses the sorted first vantage
        ordering to narrow the scan window, then refines with the remaining
        vantage points in one vectorized pass.
        """
        if among is None:
            lo = np.searchsorted(self._sorted0, self.coords[i, 0] - theta, "left")
            hi = np.searchsorted(self._sorted0, self.coords[i, 0] + theta, "right")
            window = self._order0[lo:hi]
        else:
            among = np.asarray(among)
            mask0 = np.abs(self.coords[among, 0] - self.coords[i, 0]) <= theta
            window = among[mask0]
        if window.size == 0:
            return window
        obs.counter(BLOCK_EVALS)
        cheb = np.max(np.abs(self.coords[window] - self.coords[i]), axis=1)
        return window[cheb <= theta]

    def candidate_counts(
        self,
        rows: np.ndarray,
        thetas: Sequence[float],
        among: np.ndarray,
        block_rows: int | None = None,
    ) -> np.ndarray:
        """Candidate-set sizes for many graphs at many thresholds at once.

        Returns an ``(len(rows), len(thetas))`` integer array where entry
        ``[r, t]`` is ``|N̂_{θ_t}(g_rows[r]) ∩ among|`` — the raw material of
        the π̂-vectors (Def. 6).  Whole blocks of rows are evaluated in one
        ``(block, |among|, |V|)`` Chebyshev pass — no per-row Python loop —
        with ``block_rows`` capping the temporary (auto-sized to ~256 MB
        when omitted).  A count of values ≤ θ equals the old per-row
        ``sort`` + ``searchsorted(side='right')``, so π̂ is unchanged.
        """
        rows = np.asarray(rows)
        among = np.asarray(among)
        thetas_arr = np.asarray(list(thetas), dtype=float)
        counts = np.empty((rows.size, thetas_arr.size), dtype=np.int64)
        coords_among = self.coords[among]
        if block_rows is None:
            block_rows = max(
                1, min(int(rows.size), (1 << 25) // max(1, coords_among.size))
            )
        for start in range(0, int(rows.size), block_rows):
            block = rows[start:start + block_rows]
            obs.counter(BLOCK_EVALS)
            cheb = np.max(
                np.abs(coords_among[None, :, :] - self.coords[block][:, None, :]),
                axis=2,
            )
            for t in range(thetas_arr.size):
                counts[start:start + block_rows, t] = (
                    cheb <= thetas_arr[t]
                ).sum(axis=1)
        return counts

    def append_graph(self, g: LabeledGraph) -> int:
        """Embed one more graph (``|V|`` distances) and add it to the
        orderings; returns its row index.  Supports incremental inserts."""
        row = self.embed(g)
        self.coords = np.vstack([self.coords, row])
        self._order0 = np.argsort(self.coords[:, 0], kind="stable")
        self._sorted0 = self.coords[self._order0, 0]
        return self.coords.shape[0] - 1

    def __repr__(self) -> str:
        return (
            f"<VantageEmbedding n={len(self)} "
            f"|V|={self.num_vantage_points}>"
        )

"""NB-Index persistence: save/load the offline structures.

An index is expensive to build (it is *the* offline investment the paper's
query speed rests on), so a production deployment wants it on disk.  The
payload is a single compressed ``.npz`` — vantage coordinates, the
flattened NB-Tree (per-node scalars + parent pointers; members are
reconstructed from the leaf structure), the threshold ladder, and a
database fingerprint so loading against the wrong database fails loudly
instead of answering garbage — wrapped in the checksummed container of
:mod:`repro.resilience.atomicio` and written via atomic rename, so a torn
or corrupted file is *detected* at load time.

Load failures raise distinct (all ``ValueError``-compatible) exceptions:

* :class:`~repro.resilience.CorruptIndexError` — truncated/torn/bit-rotted
  bytes (checksum or length mismatch);
* :class:`~repro.resilience.IndexFormatError` — intact file from an
  unsupported ``format_version``;
* :class:`~repro.resilience.DatabaseMismatchError` — fingerprint does not
  match the database being attached.

Indexes written before the container existed (bare ``.npz``, format
version 1) are still readable.

The database itself is *not* stored — graphs live in the caller's own
storage (see :mod:`repro.graphs.io`); the index references them by id.
"""

from __future__ import annotations

import io
import warnings
import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.index.nbindex import NBIndex
from repro.index.nbtree import NBTree, NBTreeNode
from repro.index.pivec import ThresholdLadder
from repro.index.vantage import VantageEmbedding
from repro.resilience.atomicio import unwrap_checksummed, write_checksummed
from repro.resilience.errors import DatabaseMismatchError, IndexFormatError

#: Version 2 wraps the npz payload in the checksummed container; version 1
#: (bare npz) is still accepted on load.
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = frozenset({1, 2})

#: Zip local-file-header magic — how a legacy bare-``.npz`` index starts.
_ZIP_MAGIC = b"PK"

#: One-shot latch for the legacy-format deprecation warning: operators get
#: told once per process, while the obs counter records *every* legacy
#: load so unmigrated artifacts can be found from metrics.
_legacy_warned = False


def _note_legacy_load(path: Path) -> None:
    global _legacy_warned
    obs.counter("persistence.legacy_npz_loads")
    if _legacy_warned:
        return
    _legacy_warned = True
    warnings.warn(
        f"{path}: loading a legacy bare-.npz index (format version 1, no "
        f"checksum footer — torn writes and bit rot go undetected); "
        f"re-save with save_index() to migrate to the checksummed "
        f"container",
        DeprecationWarning,
        stacklevel=3,
    )


def database_fingerprint(database: GraphDatabase) -> np.ndarray:
    """Stable per-graph digests (crc32 of the canonical form).

    Used to verify at load time that the index belongs to the database it
    is being attached to.
    """
    return np.array(
        [zlib.crc32(repr(g.canonical_form()).encode()) for g in database],
        dtype=np.uint32,
    )


def flatten_tree(tree: NBTree) -> dict[str, np.ndarray]:
    """The NB-Tree as flat arrays (per-node scalars + parent pointers) —
    shared by :func:`save_index` and the build checkpoint."""
    nodes = tree.nodes
    parent = np.full(len(nodes), -1, dtype=np.int64)
    for node in nodes:
        for child in node.children:
            parent[child.node_id] = node.node_id
    return {
        "node_centroid": np.array([n.centroid for n in nodes], dtype=np.int64),
        "node_radius": np.array([n.radius for n in nodes]),
        "node_diameter": np.array([n.diameter for n in nodes]),
        "node_graph_index": np.array(
            [-1 if n.graph_index is None else n.graph_index for n in nodes],
            dtype=np.int64,
        ),
        "node_parent": parent,
        "root_id": np.array([tree.root.node_id], dtype=np.int64),
        "branching": np.array([tree.branching], dtype=np.int64),
    }


def tree_from_arrays(arrays, graphs, engine, embedding) -> NBTree:
    """Inverse of :func:`flatten_tree`: rebuild the NB-Tree structure.

    ``arrays`` is any mapping with :func:`flatten_tree`'s keys (an open
    ``.npz`` works).  Children are appended in node-id order, which is the
    order the builder created them in, so round-trips are structure-exact.
    """
    centroids = arrays["node_centroid"]
    radii = arrays["node_radius"]
    diameters = arrays["node_diameter"]
    graph_indices = arrays["node_graph_index"]
    parents = arrays["node_parent"]
    num_nodes = centroids.shape[0]

    nodes = [
        NBTreeNode(
            node_id=i,
            centroid=int(centroids[i]),
            radius=float(radii[i]),
            diameter=float(diameters[i]),
            members=np.empty(0, dtype=np.int64),
            graph_index=(
                None if graph_indices[i] < 0 else int(graph_indices[i])
            ),
        )
        for i in range(num_nodes)
    ]
    for i in range(num_nodes):
        p = int(parents[i])
        if p >= 0:
            nodes[p].children.append(nodes[i])
    root = nodes[int(arrays["root_id"][0])]
    _rebuild_members(root)

    tree = NBTree.__new__(NBTree)
    tree._graphs = graphs
    tree._distance = engine
    tree._engine = engine
    tree._embedding = embedding
    tree.branching = int(arrays["branching"][0])
    tree.nodes = nodes
    tree.root = root
    from repro.index.nbtree import BuildStats

    tree.stats = BuildStats()
    return tree


def save_index(index: NBIndex, path: str | Path) -> None:
    """Write the index's offline structures to ``path`` (atomic rename +
    checksum footer; see module docstring)."""
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        format_version=np.array([FORMAT_VERSION]),
        coords=index.embedding.coords,
        vantage_indices=np.array(index.embedding.vantage_indices, dtype=np.int64),
        ladder=np.array(list(index.ladder.values)),
        fingerprint=database_fingerprint(index.database),
        build_seconds=np.array([index.build_seconds]),
        **flatten_tree(index.tree),
    )
    write_checksummed(Path(path), buffer.getvalue())


def indexed_graph_count(path: str | Path) -> int:
    """How many database graphs a saved index covers, without loading it.

    The stored fingerprint has one crc per indexed graph, so its length
    *is* the coverage.  The mutable open path uses this to load a grown
    database's index against the right prefix snapshot (the live database
    may have journaled inserts past what the index has absorbed)."""
    path = Path(path)
    raw = path.read_bytes()
    if raw[: len(_ZIP_MAGIC)] == _ZIP_MAGIC:
        payload = raw
    else:
        payload = unwrap_checksummed(raw, source=str(path))
    with np.load(io.BytesIO(payload)) as data:
        return int(data["fingerprint"].shape[0])


def load_index(
    path: str | Path,
    database: GraphDatabase,
    distance: GraphDistanceFn,
    workers: int | None = None,
) -> NBIndex:
    """Load an index saved by :func:`save_index` against its database.

    ``distance`` must be the same metric the index was built with (the
    stored coordinates and radii are only meaningful for it); the database
    is verified by fingerprint.  ``workers`` configures the loaded index's
    :class:`~repro.engine.DistanceEngine` exactly as in
    :meth:`NBIndex.build`.
    """
    path = Path(path)
    raw = path.read_bytes()
    if raw[: len(_ZIP_MAGIC)] == _ZIP_MAGIC:
        payload = raw  # pre-container index (format version 1)
        _note_legacy_load(path)
    else:
        payload = unwrap_checksummed(raw, source=str(path))
    with np.load(io.BytesIO(payload)) as data:
        version = int(data["format_version"][0])
        if version not in _SUPPORTED_VERSIONS:
            raise IndexFormatError(
                f"{path}: unsupported index format version {version} "
                f"(this build reads {sorted(_SUPPORTED_VERSIONS)})"
            )
        stored = data["fingerprint"]
        current = database_fingerprint(database)
        if stored.shape != current.shape or not bool((stored == current).all()):
            raise DatabaseMismatchError(
                f"{path}: index fingerprint does not match the provided "
                f"database"
            )

        from repro.engine import DistanceEngine

        engine = DistanceEngine(
            distance, workers=workers, graphs=database.graphs
        )
        embedding = VantageEmbedding.from_coords(
            database.graphs, data["vantage_indices"], engine, data["coords"]
        )
        tree = tree_from_arrays(data, database.graphs, engine, embedding)
        ladder = ThresholdLadder(float(v) for v in data["ladder"])
        build_seconds = float(data["build_seconds"][0])

    engine.attach_embedding(embedding)
    return NBIndex(
        database, engine, embedding=embedding, tree=tree, ladder=ladder,
        counting=engine, build_seconds=build_seconds,
    )


def _rebuild_members(node: NBTreeNode) -> np.ndarray:
    """Recompute member arrays bottom-up from the leaf structure."""
    if node.is_leaf:
        node.members = np.array([node.graph_index], dtype=np.int64)
    else:
        node.members = np.sort(
            np.concatenate([_rebuild_members(c) for c in node.children])
        )
    return node.members

"""NB-Index persistence: save/load the offline structures.

An index is expensive to build (it is *the* offline investment the paper's
query speed rests on), so a production deployment wants it on disk.  The
format is a single compressed ``.npz``: vantage coordinates, the flattened
NB-Tree (per-node scalars + parent pointers; members are reconstructed
from the leaf structure), the threshold ladder, and a database fingerprint
so loading against the wrong database fails loudly instead of answering
garbage.

The database itself is *not* stored — graphs live in the caller's own
storage (see :mod:`repro.graphs.io`); the index references them by id.
"""

from __future__ import annotations

import zlib
from pathlib import Path

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.index.nbindex import NBIndex
from repro.index.nbtree import NBTree, NBTreeNode
from repro.index.pivec import ThresholdLadder
from repro.index.vantage import VantageEmbedding
from repro.utils.validation import require

FORMAT_VERSION = 1


def database_fingerprint(database: GraphDatabase) -> np.ndarray:
    """Stable per-graph digests (crc32 of the canonical form).

    Used to verify at load time that the index belongs to the database it
    is being attached to.
    """
    return np.array(
        [zlib.crc32(repr(g.canonical_form()).encode()) for g in database],
        dtype=np.uint32,
    )


def save_index(index: NBIndex, path: str | Path) -> None:
    """Write the index's offline structures to ``path`` (.npz)."""
    nodes = index.tree.nodes
    parent = np.full(len(nodes), -1, dtype=np.int64)
    for node in nodes:
        for child in node.children:
            parent[child.node_id] = node.node_id
    np.savez_compressed(
        Path(path),
        format_version=np.array([FORMAT_VERSION]),
        coords=index.embedding.coords,
        vantage_indices=np.array(index.embedding.vantage_indices, dtype=np.int64),
        ladder=np.array(list(index.ladder.values)),
        node_centroid=np.array([n.centroid for n in nodes], dtype=np.int64),
        node_radius=np.array([n.radius for n in nodes]),
        node_diameter=np.array([n.diameter for n in nodes]),
        node_graph_index=np.array(
            [-1 if n.graph_index is None else n.graph_index for n in nodes],
            dtype=np.int64,
        ),
        node_parent=parent,
        root_id=np.array([index.tree.root.node_id], dtype=np.int64),
        branching=np.array([index.tree.branching], dtype=np.int64),
        fingerprint=database_fingerprint(index.database),
        build_seconds=np.array([index.build_seconds]),
    )


def load_index(
    path: str | Path,
    database: GraphDatabase,
    distance: GraphDistanceFn,
    workers: int | None = None,
) -> NBIndex:
    """Load an index saved by :func:`save_index` against its database.

    ``distance`` must be the same metric the index was built with (the
    stored coordinates and radii are only meaningful for it); the database
    is verified by fingerprint.  ``workers`` configures the loaded index's
    :class:`~repro.engine.DistanceEngine` exactly as in
    :meth:`NBIndex.build`.
    """
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        require(
            version == FORMAT_VERSION,
            f"unsupported index format version {version}",
        )
        stored = data["fingerprint"]
        current = database_fingerprint(database)
        require(
            stored.shape == current.shape and bool((stored == current).all()),
            "index fingerprint does not match the provided database",
        )

        from repro.engine import DistanceEngine

        engine = DistanceEngine(
            distance, workers=workers, graphs=database.graphs
        )

        embedding = VantageEmbedding.__new__(VantageEmbedding)
        embedding._graphs = database.graphs
        embedding._distance = engine
        embedding.vantage_indices = [int(i) for i in data["vantage_indices"]]
        embedding.coords = data["coords"].copy()
        embedding._order0 = np.argsort(embedding.coords[:, 0], kind="stable")
        embedding._sorted0 = embedding.coords[embedding._order0, 0]

        centroids = data["node_centroid"]
        radii = data["node_radius"]
        diameters = data["node_diameter"]
        graph_indices = data["node_graph_index"]
        parents = data["node_parent"]
        num_nodes = centroids.shape[0]

        nodes = [
            NBTreeNode(
                node_id=i,
                centroid=int(centroids[i]),
                radius=float(radii[i]),
                diameter=float(diameters[i]),
                members=np.empty(0, dtype=np.int64),
                graph_index=(
                    None if graph_indices[i] < 0 else int(graph_indices[i])
                ),
            )
            for i in range(num_nodes)
        ]
        for i in range(num_nodes):
            p = int(parents[i])
            if p >= 0:
                nodes[p].children.append(nodes[i])
        root = nodes[int(data["root_id"][0])]

        _rebuild_members(root)

        tree = NBTree.__new__(NBTree)
        tree._graphs = database.graphs
        tree._distance = engine
        tree._engine = engine
        tree._embedding = embedding
        tree.branching = int(data["branching"][0])
        tree.nodes = nodes
        tree.root = root
        from repro.index.nbtree import BuildStats

        tree.stats = BuildStats()

        ladder = ThresholdLadder(float(v) for v in data["ladder"])
        build_seconds = float(data["build_seconds"][0])

    engine.attach_embedding(embedding)
    return NBIndex(
        database, engine, embedding=embedding, tree=tree, ladder=ladder,
        counting=engine, build_seconds=build_seconds,
    )


def _rebuild_members(node: NBTreeNode) -> np.ndarray:
    """Recompute member arrays bottom-up from the leaf structure."""
    if node.is_leaf:
        node.members = np.array([node.graph_index], dtype=np.int64)
    else:
        node.members = np.sort(
            np.concatenate([_rebuild_members(c) for c in node.children])
        )
    return node.members

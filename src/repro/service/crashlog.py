"""Per-query fault isolation: journal the crash, answer typed, move on.

A query that raises must cost exactly one response — not a worker thread,
not the process.  The worker catches everything, hands the exception
here, and answers the client with a typed
:class:`~repro.service.errors.QueryFailed`.  The journal captures enough
to replay the failure offline: the request as admitted (op, θ, k,
relevance parameters, seed), the exception, and the full traceback —
appended as one JSON line per crash so the log is greppable and
tail-able.

Writes are append-only under a lock (atomic enough for a single process;
the service owns its crash log).  With no path configured the journal
still counts crashes (``service.crashes``) and keeps the last few entries
in memory for ``stats``-style introspection.
"""

from __future__ import annotations

import collections
import json
import threading
import time
import traceback
from pathlib import Path

from repro import obs


class CrashJournal:
    """Append-only crash log with an in-memory tail."""

    def __init__(self, path: str | Path | None = None, *, keep_last: int = 16):
        self.path = None if path is None else Path(path)
        self._lock = threading.Lock()
        self._tail: collections.deque[dict] = collections.deque(maxlen=keep_last)
        self.crashes = 0

    def record(self, request, error: BaseException) -> dict:
        """Journal one crash; returns the entry that was written."""
        entry = {
            "ts": time.time(),
            "request": self._describe_request(request),
            "exception_type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exception(
                type(error), error, error.__traceback__
            ),
        }
        with self._lock:
            self.crashes += 1
            self._tail.append(entry)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry) + "\n")
        obs.counter("service.crashes")
        return entry

    @staticmethod
    def _describe_request(request) -> dict:
        """Replayable request description: repr plus the seed if carried."""
        described = {"repr": repr(request)}
        seed = getattr(request, "seed", None)
        if seed is not None:
            described["seed"] = seed
        return described

    def last(self) -> dict | None:
        with self._lock:
            return self._tail[-1] if self._tail else None

    def stats(self) -> dict:
        with self._lock:
            return {
                "crashes": self.crashes,
                "path": None if self.path is None else str(self.path),
            }

"""Per-query fault isolation: journal the crash, answer typed, move on.

A query that raises must cost exactly one response — not a worker thread,
not the process.  The worker catches everything, hands the exception
here, and answers the client with a typed
:class:`~repro.service.errors.QueryFailed`.  The journal captures enough
to replay the failure offline: the request as admitted (op, θ, k,
relevance parameters, seed), the exception, and the full traceback —
appended as one JSON line per crash so the log is greppable and
tail-able.

Writes are append-only under a lock (atomic enough for a single process;
the service owns its crash log).  With no path configured the journal
still counts crashes (``service.crashes``) and keeps the last few entries
in memory for ``stats``-style introspection.

The on-disk log is **size-bounded**: once an append would push the file
past ``max_bytes`` the log rotates (``crash.log`` → ``crash.log.1`` →
``crash.log.2`` …), keeping the newest ``keep_rotated`` rotated files —
a long-lived service with a flaky client cannot fill the disk with
tracebacks.  Rotations are counted (``service.crashlog_rotations``) and
surfaced through :meth:`CrashJournal.stats`.
"""

from __future__ import annotations

import collections
import contextlib
import json
import os
import threading
import time
import traceback
from pathlib import Path

from repro import obs

#: Default size bound for the on-disk crash log (1 MiB of tracebacks).
DEFAULT_MAX_BYTES = 1 << 20


class CrashJournal:
    """Append-only, size-rotated crash log with an in-memory tail."""

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        keep_last: int = 16,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        keep_rotated: int = 3,
    ):
        self.path = None if path is None else Path(path)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.keep_rotated = max(0, int(keep_rotated))
        self.rotations = 0
        self._lock = threading.Lock()
        self._tail: collections.deque[dict] = collections.deque(maxlen=keep_last)
        self.crashes = 0

    def record(self, request, error: BaseException) -> dict:
        """Journal one crash; returns the entry that was written."""
        entry = {
            "ts": time.time(),
            "request": self._describe_request(request),
            "exception_type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exception(
                type(error), error, error.__traceback__
            ),
        }
        with self._lock:
            self.crashes += 1
            self._tail.append(entry)
            if self.path is not None:
                line = json.dumps(entry) + "\n"
                self._maybe_rotate(len(line.encode()))
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
        obs.counter("service.crashes")
        return entry

    def _maybe_rotate(self, incoming_bytes: int) -> None:
        """Shift ``path`` → ``path.1`` → … when the next append would
        cross the size bound.  Called under the lock."""
        if self.max_bytes is None:
            return
        try:
            current = self.path.stat().st_size
        except OSError:
            return  # nothing on disk yet
        if current == 0 or current + incoming_bytes <= self.max_bytes:
            return
        with contextlib.suppress(OSError):
            oldest = Path(f"{self.path}.{self.keep_rotated}")
            if self.keep_rotated == 0:
                oldest = self.path
            oldest.unlink(missing_ok=True)
        for slot in range(self.keep_rotated, 1, -1):
            with contextlib.suppress(OSError):
                os.replace(f"{self.path}.{slot - 1}", f"{self.path}.{slot}")
        if self.keep_rotated > 0:
            with contextlib.suppress(OSError):
                os.replace(self.path, f"{self.path}.1")
        self.rotations += 1
        obs.counter("service.crashlog_rotations")

    @staticmethod
    def _describe_request(request) -> dict:
        """Replayable request description: repr plus the seed if carried."""
        described = {"repr": repr(request)}
        seed = getattr(request, "seed", None)
        if seed is not None:
            described["seed"] = seed
        return described

    def last(self) -> dict | None:
        with self._lock:
            return self._tail[-1] if self._tail else None

    def stats(self) -> dict:
        with self._lock:
            return {
                "crashes": self.crashes,
                "rotations": self.rotations,
                "path": None if self.path is None else str(self.path),
            }

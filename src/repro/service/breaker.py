"""Circuit breaker around the distance backends.

A wedged process pool or an exact-GED backend that degrades on every
single call does not just slow one query — it stalls the bounded queue
behind it and turns overload into an outage.  The breaker watches query
outcomes and, once the backend looks unhealthy, fails *fast*: queries run
**bound-only** (an already-expired :class:`~repro.resilience.Deadline`
forces every exact edit distance straight down the degradation ladder to
its polynomial upper bound) instead of waiting on a backend that will not
answer.  Bound-only answers are sound — upper bounds can only
under-report π — and are flagged on the response.

State machine (see ``docs/service.md`` for the diagram)::

    CLOSED --failures/degradations over threshold--> OPEN
    OPEN   --cooldown elapsed--> HALF_OPEN
    HALF_OPEN --probe succeeds--> CLOSED
    HALF_OPEN --probe fails/degrades--> OPEN (fresh cooldown)

* CLOSED: all queries run normally; outcomes are recorded.
* OPEN: every query is served bound-only until ``cooldown_s`` elapses.
* HALF_OPEN: exactly one in-flight probe runs normally; everyone else
  stays bound-only until the probe reports back.

The trip conditions are (a) ``failure_threshold`` consecutive raised
queries, (b) ``degradation_threshold`` consecutive deadline-degraded
queries, or (c) error rate ≥ ``error_rate_threshold`` over the last
``window`` outcomes.  Bound-only executions are *not* recorded — the
breaker only learns from real attempts.

The clock is injectable so tests drive the cooldown deterministically.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass

from repro import obs
from repro.utils.validation import require

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding for ``service.breaker_state``.
_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: What :meth:`CircuitBreaker.admit` tells the caller to do.
NORMAL = "normal"          # run the query with its own deadline
BOUND_ONLY = "bound_only"  # fail fast: expired deadline, upper bounds only
PROBE = "probe"            # half-open trial run; report the outcome


@dataclass(frozen=True)
class BreakerConfig:
    """Trip thresholds and recovery pacing."""

    failure_threshold: int = 3
    degradation_threshold: int = 5
    error_rate_threshold: float = 0.5
    window: int = 20
    cooldown_s: float = 5.0

    def __post_init__(self):
        require(self.failure_threshold >= 1, "failure_threshold must be >= 1")
        require(
            self.degradation_threshold >= 1,
            "degradation_threshold must be >= 1",
        )
        require(
            0.0 < self.error_rate_threshold <= 1.0,
            "error_rate_threshold must be in (0, 1]",
        )
        require(self.window >= 2, "window must be >= 2")
        require(self.cooldown_s >= 0.0, "cooldown_s must be >= 0")


class CircuitBreaker:
    """Thread-safe closed → open → half-open breaker."""

    def __init__(self, config: BreakerConfig | None = None, *, clock=time.monotonic):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False
        self._consecutive_failures = 0
        self._consecutive_degradations = 0
        self._outcomes: collections.deque[bool] = collections.deque(
            maxlen=self.config.window
        )
        self.opened_count = 0
        self.bound_only_served = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def admit(self) -> str:
        """How the next query should run: NORMAL, BOUND_ONLY, or PROBE."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return NORMAL
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                obs.counter("service.breaker.probes")
                return PROBE
            self.bound_only_served += 1
            obs.counter("service.breaker.bound_only")
            return BOUND_ONLY

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.config.cooldown_s
        ):
            self._set_state_locked(HALF_OPEN)
            self._probe_inflight = False

    # ------------------------------------------------------------------
    # Outcome recording (NORMAL and PROBE executions only)
    # ------------------------------------------------------------------
    def record_success(self, *, degraded: bool = False, probe: bool = False) -> None:
        """A query completed.  ``degraded=True`` means its deadline forced
        upper-bound fallbacks — success for the client, but a backend
        health signal for the breaker."""
        with self._lock:
            if probe:
                self._probe_inflight = False
                if degraded:
                    self._trip_locked()  # the backend is still degrading
                    return
                self._reset_locked()
                self._set_state_locked(CLOSED)
                obs.counter("service.breaker.closed")
                return
            self._consecutive_failures = 0
            self._outcomes.append(True)
            if degraded:
                self._consecutive_degradations += 1
                if (
                    self._consecutive_degradations
                    >= self.config.degradation_threshold
                ):
                    self._trip_locked()
            else:
                self._consecutive_degradations = 0

    def record_failure(self, *, probe: bool = False) -> None:
        """A query raised (pool wedged, backend exploded, ...)."""
        with self._lock:
            if probe:
                self._probe_inflight = False
                self._trip_locked()
                return
            self._consecutive_failures += 1
            self._outcomes.append(False)
            failures = sum(1 for ok in self._outcomes if not ok)
            window_full = len(self._outcomes) >= self.config.window
            if (
                self._consecutive_failures >= self.config.failure_threshold
                or (
                    window_full
                    and failures / len(self._outcomes)
                    >= self.config.error_rate_threshold
                )
            ):
                self._trip_locked()

    # ------------------------------------------------------------------
    def _trip_locked(self) -> None:
        self._opened_at = self._clock()
        self._probe_inflight = False
        if self._state != OPEN:
            self.opened_count += 1
            obs.counter("service.breaker.opened")
        self._set_state_locked(OPEN)

    def _reset_locked(self) -> None:
        self._consecutive_failures = 0
        self._consecutive_degradations = 0
        self._outcomes.clear()

    def _set_state_locked(self, state: str) -> None:
        self._state = state
        obs.gauge("service.breaker_state", _STATE_GAUGE[state])

    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "state": self._state,
                "opened_count": self.opened_count,
                "bound_only_served": self.bound_only_served,
                "consecutive_failures": self._consecutive_failures,
                "consecutive_degradations": self._consecutive_degradations,
                "window_size": len(self._outcomes),
                "window_failures": sum(1 for ok in self._outcomes if not ok),
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, opened={self.opened_count})"

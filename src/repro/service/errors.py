"""Typed errors the query service answers with.

Every failure a client can see maps to exactly one exception type with a
stable wire ``code``, so callers branch on semantics ("back off and
retry" vs "fix your request" vs "the query itself blew up") instead of
parsing messages.  All of them derive from :class:`ServiceError`; none of
them ever escapes a worker thread — the service catches, journals where
appropriate, and answers with the typed error response.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for failures the service reports to a client."""

    #: Stable machine-readable identifier used on the wire.
    code = "service_error"

    def to_wire(self) -> dict:
        """The JSON-safe ``error`` object for a protocol response."""
        return {"code": self.code, "message": str(self)}


class Overloaded(ServiceError):
    """Load shed: the bounded queue is full (or draining squeezed the
    request out), so the service rejects instead of queueing unboundedly.

    ``retry_after_s`` is the admission controller's estimate of when a
    retry is likely to be admitted — queue depth times the recent average
    service time, spread over the worker pool.
    """

    code = "overloaded"

    def __init__(self, message: str, *, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)

    def to_wire(self) -> dict:
        wire = super().to_wire()
        wire["retry_after_s"] = round(self.retry_after_s, 3)
        return wire


class ServiceClosed(ServiceError):
    """The service is draining or stopped; no new work is admitted."""

    code = "closed"


class InvalidRequest(ServiceError):
    """The request is malformed: oversized, not JSON, or semantically
    invalid (unknown op, non-positive theta/k, ...)."""

    code = "invalid_request"


class DeadlineExpired(ServiceError):
    """The request's deadline passed before a worker could start it —
    answering late would be answering wrong, so it is cancelled."""

    code = "deadline_expired"


class QueryFailed(ServiceError):
    """The query raised inside a worker.  The worker survives; the
    traceback is journaled to the crash log and the client gets this."""

    code = "query_failed"

    def __init__(self, message: str, *, exception_type: str = "Exception"):
        super().__init__(message)
        self.exception_type = exception_type

    def to_wire(self) -> dict:
        wire = super().to_wire()
        wire["exception_type"] = self.exception_type
        return wire


class ReloadFailed(ServiceError):
    """A hot-reload candidate failed validation (corrupt file, format
    skew, wrong database); the previous index stays installed."""

    code = "reload_failed"

"""The long-lived concurrent query service.

:class:`QueryService` turns the in-process trio —
:func:`repro.open_database` / :func:`repro.open_index` /
:meth:`NBIndex.query <repro.index.NBIndex.query>` — into a serving
boundary that survives overload, poisoned queries and index swaps:

* **admission control** (:mod:`repro.service.admission`): a bounded queue
  with ``max_concurrency`` worker threads; excess load is shed with a
  typed ``overloaded`` rejection and a retry-after hint, never queued
  unboundedly.  Per-request deadlines derive from
  :class:`repro.resilience.Deadline` at admission, so queue wait counts
  against the budget.
* **circuit breaking** (:mod:`repro.service.breaker`): repeated failures
  or deadline degradations open the breaker; while open, queries are
  served *bound-only* (an expired deadline drives every exact edit
  distance down the degradation ladder) instead of waiting on a wedged
  backend, and a half-open probe closes it once the backend recovers.
* **hot index reload** (:mod:`repro.service.reload`): a watcher thread
  fingerprints the index artifact and atomically swaps a validated
  replacement under a read-write latch; corrupt candidates are rolled
  back with the previous index still serving.
* **fault isolation** (:mod:`repro.service.crashlog`): a query that
  raises is journaled (request + seed + traceback) and answered with a
  typed ``query_failed``; the worker thread survives.
* **graceful drain**: :meth:`QueryService.drain` stops admission,
  finishes or deadline-cancels queued work within the grace period, and
  flushes :mod:`repro.obs` metrics.

Transports (:func:`serve_lines` for stdin/stdout pipes,
:func:`serve_tcp` for sockets) speak the line-JSON protocol of
:mod:`repro.service.protocol`; both are thin shells over the same
service object, which is equally usable in-process (see
``tests/test_service.py``).
"""

from __future__ import annotations

import json
import queue
import socketserver
import threading
import time
from dataclasses import dataclass, field

from repro import obs
from repro.graphs import quartile_relevance
from repro.index.errors import OffLadderThetaError
from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.service import crashlog, protocol
from repro.service.admission import AdmissionController, Ticket
from repro.service.breaker import BOUND_ONLY, PROBE, BreakerConfig, CircuitBreaker
from repro.service.crashlog import CrashJournal
from repro.service.errors import (
    DeadlineExpired,
    InvalidRequest,
    Overloaded,
    QueryFailed,
    ServiceError,
)
from repro.service.protocol import QueryRequest
from repro.service.reload import IndexManager
from repro.utils.validation import require


@dataclass
class ServiceConfig:
    """Service tuning knobs (see ``docs/service.md`` for guidance)."""

    max_concurrency: int = 2
    max_queue: int = 16
    default_timeout_ms: float | None = None
    drain_grace_s: float = 5.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    crash_log: str | None = None
    crash_log_max_bytes: int | None = crashlog.DEFAULT_MAX_BYTES
    crash_log_keep: int = 3
    watch: str | None = None
    reload_poll_s: float = 1.0
    max_request_bytes: int = protocol.MAX_REQUEST_BYTES
    metrics_path: str | None = None
    #: Background scrubber cadence; ``None`` disables the service thread
    #: (one-shot ``scrub`` protocol ops still work).
    scrub_interval_s: float | None = None

    def __post_init__(self):
        require(self.max_concurrency >= 1, "max_concurrency must be >= 1")
        require(self.max_queue >= 1, "max_queue must be >= 1")
        require(self.drain_grace_s >= 0.0, "drain_grace_s must be >= 0")
        require(self.reload_poll_s > 0.0, "reload_poll_s must be > 0")
        require(
            self.scrub_interval_s is None or self.scrub_interval_s > 0.0,
            "scrub_interval_s must be > 0 (or None to disable)",
        )


class QueryService:
    """A running query service over one (hot-swappable) NB-Index."""

    def __init__(self, index, *, config: ServiceConfig | None = None,
                 distance=None, workers: int | None = None):
        self.config = config or ServiceConfig()
        self.manager = IndexManager(
            index, distance=distance, watch_path=self.config.watch,
            workers=workers,
        )
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            max_concurrency=self.config.max_concurrency,
            default_timeout_ms=self.config.default_timeout_ms,
        )
        self.breaker = CircuitBreaker(self.config.breaker)
        self.journal = CrashJournal(
            self.config.crash_log,
            max_bytes=self.config.crash_log_max_bytes,
            keep_rotated=self.config.crash_log_keep,
        )
        #: Where this deployment's artifacts live on disk — filled by
        #: :meth:`open`; the ``backup`` op and the scrubber's journal-base
        #: resolution read from here.
        self.source_paths: dict = {}
        self.scrubber = None
        self._threads: list[threading.Thread] = []
        self._stop_watcher = threading.Event()
        self._started = False
        self._drained = False
        self.started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        database_path,
        *,
        index_path=None,
        shards_path=None,
        distance=None,
        config: ServiceConfig | None = None,
        workers: int | None = None,
        mutable: bool = False,
        journal=None,
        replicas: int | None = None,
        workers_per_shard: int | None = None,
        hedge_ms: float | None = None,
        **build_kwargs,
    ) -> "QueryService":
        """The CLI path: open the database, load or build the index.

        With ``index_path`` the artifact is loaded through
        :func:`repro.open_index` (and becomes the default hot-reload
        watch target); with ``shards_path`` a shard-manifest bundle is
        loaded instead and the service runs the scatter-gather
        coordinator; without either the index is built in-process with
        ``build_kwargs``.

        ``mutable=True`` opens the artifact through the delta layer, so
        the deployment accepts ``insert``/``delete``/``update``/
        ``compact`` protocol ops; ``journal`` (mutable only) replays and
        then appends a durable mutation journal.  A mutable deployment
        never runs the reload watcher — the delta layer owns the index
        lifecycle, and ``compact`` is the sanctioned swap path.

        ``replicas=R`` (shard bundles only) serves the bundle from a
        supervised multi-process cluster — R worker processes per shard
        with failover, restart, and degraded partial answers
        (:class:`repro.replica.ReplicatedIndex`) — instead of in-process
        shard objects.  Incompatible with ``mutable`` and with the
        reload watcher: worker processes hold immutable artifacts.
        """
        import repro

        require(
            index_path is None or shards_path is None,
            "pass index_path or shards_path, not both",
        )
        source_paths = {
            "database": str(database_path),
            "journal": None if journal is None else str(journal),
            "index": None if index_path is None else str(index_path),
            "shards": None if shards_path is None else str(shards_path),
        }
        if distance is None:
            distance = repro.StarDistance()
        if config is None:
            config = ServiceConfig()
        if replicas is not None:
            database = repro.open_database(database_path)
            require(
                shards_path is not None,
                "replicas= needs a shard bundle (shards_path)",
            )
            require(not mutable, "a replicated deployment is read-only")
            require(
                config.watch is None,
                "a replicated deployment cannot hot-reload from a watch "
                "path; restart the cluster to pick up a new bundle",
            )
            from repro.replica import ReplicatedIndex

            index = ReplicatedIndex.open(
                shards_path, database, distance,
                replicas=replicas, workers_per_shard=workers_per_shard,
                hedge_ms=hedge_ms,
            )
            service = cls(
                index, config=config, distance=distance, workers=workers
            )
            service.source_paths = source_paths
            return service
        artifact = shards_path if shards_path is not None else index_path
        if artifact is not None:
            # With a journal the database travels as a *path*: a
            # checkpointed journal (generation > 0) pins its own base
            # file, and open_index resolves + verifies it before replay.
            index = repro.open_index(
                artifact,
                database_path if journal is not None
                else repro.open_database(database_path),
                distance,
                shards=shards_path is not None,
                mutable=mutable, journal=journal, workers=workers,
                seed=int(build_kwargs.get("seed", 0) or 0),
            )
            if config.watch is None and not mutable:
                config.watch = str(artifact)
        else:
            require(
                journal is None,
                "journal= needs a saved artifact (index_path or "
                "shards_path) to anchor the base generation",
            )
            database = repro.open_database(database_path)
            index = repro.NBIndex.build(
                database, distance, workers=workers, **build_kwargs
            )
            if mutable:
                from repro.delta import MutableIndex

                index = MutableIndex(
                    database, index, distance=distance, workers=workers
                )
        require(
            not (mutable and config.watch is not None),
            "a mutable deployment cannot also hot-reload from a watch "
            "path; compaction owns index swaps",
        )
        service = cls(index, config=config, distance=distance, workers=workers)
        service.source_paths = source_paths
        return service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Spawn the worker threads (and the reload watcher, if any)."""
        require(not self._started, "service already started")
        self._started = True
        for worker_id in range(self.config.max_concurrency):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.manager.watch_path is not None:
            watcher = threading.Thread(
                target=self._watch_loop, name="repro-serve-watch", daemon=True,
            )
            watcher.start()
            self._threads.append(watcher)
        if self.config.scrub_interval_s is not None:
            self._ensure_scrubber().start()
        obs.counter("service.starts")
        return self

    def _ensure_scrubber(self):
        """Lazily build the scrubber over the *current* index (the
        callable indirection keeps it correct across reloads/compactions)."""
        if self.scrubber is None:
            from repro.durability import Scrubber

            self.scrubber = Scrubber(
                lambda: self.manager.index,
                interval_s=self.config.scrub_interval_s or 30.0,
                database_path=self.source_paths.get("database"),
            )
        return self.scrubber

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()

    def drain(self, grace_s: float | None = None) -> dict:
        """Graceful shutdown: stop admitting, finish in-flight work within
        the grace period, cancel the rest, flush metrics.

        Returns a report: ``{"clean": bool, "cancelled": int,
        "completed": int, "grace_s": float}``.  Idempotent.
        """
        if self._drained:
            return {"clean": True, "cancelled": 0,
                    "completed": self.admission.completed, "grace_s": 0.0}
        self._drained = True
        grace = self.config.drain_grace_s if grace_s is None else float(grace_s)
        give_up_at = time.monotonic() + grace
        self._stop_watcher.set()
        if self.scrubber is not None:
            self.scrubber.stop()
        self.admission.close()
        for thread in self._threads:
            thread.join(max(0.0, give_up_at - time.monotonic()))
        cancelled = self.admission.cancel_pending(
            lambda ticket: protocol.error_response(
                getattr(ticket.request, "id", None),
                Overloaded("service draining; request cancelled",
                           retry_after_s=grace),
            )
        )
        clean = not any(thread.is_alive() for thread in self._threads)
        index = self.manager.index
        if hasattr(index, "invalidate_pools"):  # sharded: global + per-shard
            index.invalidate_pools()
        else:
            engine = getattr(index, "engine", None)
            if engine is not None and hasattr(engine, "invalidate_pool"):
                engine.invalidate_pool()
        obs.counter("service.drains")
        obs.gauge("service.queue_depth", 0)
        if self.config.metrics_path and obs.enabled():
            obs.write_metrics(self.config.metrics_path)
        return {
            "clean": clean,
            "cancelled": cancelled,
            "completed": self.admission.completed,
            "grace_s": grace,
        }

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> Ticket:
        """Admit one request; raises ``Overloaded``/``ServiceClosed``."""
        require(self._started, "service not started (call start())")
        return self.admission.admit(request, timeout_ms=request.timeout_ms)

    def call(self, request: QueryRequest, timeout: float | None = None) -> dict:
        """Submit and wait; rejections come back as typed responses too."""
        try:
            ticket = self.submit(request)
        except ServiceError as error:
            return protocol.error_response(request.id, error)
        response = ticket.wait(timeout)
        if response is None:
            return protocol.error_response(
                request.id,
                Overloaded("timed out waiting for a worker",
                           retry_after_s=1.0),
            )
        return response

    def stats(self) -> dict:
        """Statable protocol: one dict over every service component."""
        index = self.manager.index
        # ShardedIndex rolls its tree sizes up; NBIndex exposes the tree.
        tree_nodes = (
            index.tree_nodes if hasattr(index, "tree_nodes")
            else index.tree.num_nodes
        )
        index_stats = {
            "num_graphs": len(self.manager.database),
            "tree_nodes": tree_nodes,
            "generation": self.manager.generation,
        }
        index_stats["mutable"] = bool(getattr(index, "mutable", False))
        if index_stats["mutable"]:
            index_stats["num_shards"] = index.num_shards
            index_stats["delta"] = index.stats()["delta"]
        elif hasattr(index, "num_shards"):
            index_stats["num_shards"] = index.num_shards
            index_stats["partitioner"] = index.manifest.partitioner
            index_stats["reused_shards"] = index.reused_shards
            if hasattr(index, "supervisor"):  # replicated process cluster
                index_stats["replica"] = index.supervisor.stats()
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
            "reload": self.manager.stats(),
            "crashes": self.journal.stats(),
            "scrub": (
                self.scrubber.status() if self.scrubber is not None
                else {"running": False, "cycles": 0}
            ),
            "index": index_stats,
        }

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            ticket = self.admission.next()
            if ticket is None:
                return
            started = time.monotonic()
            request = ticket.request
            try:
                response = self._execute(ticket)
            except ServiceError as error:
                response = protocol.error_response(request.id, error)
            except Exception as error:
                # Fault isolation: the query dies, the worker does not.
                self.journal.record(request, error)
                response = protocol.error_response(
                    request.id,
                    QueryFailed(
                        f"query raised {type(error).__name__}: {error}",
                        exception_type=type(error).__name__,
                    ),
                )
            self.admission.note_completion(time.monotonic() - started)
            ticket.resolve(response)

    def _execute(self, ticket: Ticket) -> dict:
        request = ticket.request
        if ticket.deadline is not None and ticket.deadline.expired():
            obs.counter("service.deadline_expired")
            raise DeadlineExpired(
                "deadline expired while queued; not starting late"
            )
        if request.op == "ping":
            return protocol.ok_response(
                request.id,
                {"pong": True, "generation": self.manager.generation},
            )
        if request.op == "stats":
            return protocol.ok_response(request.id, self.stats())
        if request.op == "reload":
            path = request.path or self.manager.watch_path
            if path is None:
                raise InvalidRequest(
                    "reload needs a 'path' (no watch path configured)"
                )
            generation = self.manager.reload(path)  # ReloadFailed is typed
            return protocol.ok_response(request.id, {"generation": generation})
        if request.op in ("checkpoint", "backup", "scrub", "scrub_status"):
            return self._execute_durability(ticket)
        if request.op in protocol.MUTATION_OPS:
            return self._execute_mutation(ticket)
        return self._execute_query(ticket)

    def _execute_durability(self, ticket: Ticket) -> dict:
        """Durability admin ops: checkpoint / backup / scrub / scrub_status.

        All run on a worker thread like any other request — the journal
        swap and the backup's source reads take the mutable index's own
        latch, so in-flight queries are never interrupted."""
        request = ticket.request
        from repro.durability import BackupError, CheckpointError, create_backup

        if request.op == "checkpoint":
            with self.manager.acquire() as index:
                if not getattr(index, "mutable", False) or (
                    getattr(index, "journal", None) is None
                ):
                    raise InvalidRequest(
                        "checkpoint needs a mutable deployment with a "
                        "journal (start it with --mutable --journal)"
                    )
                try:
                    with obs.timer("service.checkpoint_seconds"):
                        report = index.checkpoint()
                except CheckpointError as error:
                    raise QueryFailed(
                        str(error), exception_type="CheckpointError"
                    ) from error
            obs.counter("service.checkpoints")
            return protocol.ok_response(request.id, report)
        if request.op == "backup":
            sources = self.source_paths
            if not any(
                sources.get(role)
                for role in ("database", "journal", "index", "shards")
            ):
                raise InvalidRequest(
                    "backup needs on-disk source artifacts; this service "
                    "was built in-process (open it over saved files)"
                )
            with self.manager.acquire() as index:
                try:
                    with obs.timer("service.backup_seconds"):
                        report = create_backup(
                            request.path,
                            database=sources.get("database"),
                            journal=sources.get("journal"),
                            index=sources.get("index"),
                            shards=sources.get("shards"),
                            latch=getattr(index, "latch", None),
                        )
                except BackupError as error:
                    raise QueryFailed(
                        str(error), exception_type="BackupError"
                    ) from error
            obs.counter("service.backups")
            return protocol.ok_response(request.id, report)
        if request.op == "scrub":
            report = self._ensure_scrubber().scrub_once()
            return protocol.ok_response(request.id, report)
        # scrub_status: cheap introspection, no cycle triggered.
        if self.scrubber is None:
            return protocol.ok_response(
                request.id, {"running": False, "cycles": 0}
            )
        return protocol.ok_response(request.id, self.scrubber.status())

    def _execute_mutation(self, ticket: Ticket) -> dict:
        """Apply one mutation op through the delta layer.

        The manager's read side pins the index object; the MutableIndex's
        own writer-preferring latch serializes the mutation against
        concurrent queries and compaction swaps."""
        request = ticket.request
        with self.manager.acquire() as index:
            if not getattr(index, "mutable", False):
                raise InvalidRequest(
                    f"op {request.op!r} needs a mutable deployment; this "
                    f"service is read-only (start it with --mutable)"
                )
            if request.op == "compact":
                from repro.delta import CompactionError

                try:
                    with obs.timer("service.compact_seconds"):
                        report = index.compact()
                except CompactionError as error:
                    raise QueryFailed(
                        str(error), exception_type="CompactionError"
                    ) from error
                obs.counter("service.compacts")
                return protocol.ok_response(request.id, report)
            if request.op == "delete":
                try:
                    deleted = index.delete(request.gid)
                except ValueError as error:  # gid out of range
                    raise InvalidRequest(str(error)) from error
                obs.counter("service.mutations")
                return protocol.ok_response(request.id, {
                    "deleted": bool(deleted),
                    "tombstones": index.tombstones,
                })
            graph, features = self._decode_graph_payload(request, index)
            if request.op == "insert":
                gid = index.insert(graph, features)
            else:  # update
                try:
                    gid = index.update(request.gid, graph, features)
                except ValueError as error:
                    raise InvalidRequest(str(error)) from error
            obs.counter("service.mutations")
            return protocol.ok_response(request.id, {
                "gid": int(gid),
                "memtable_size": index.memtable_size,
                "generation": index.generation,
            })

    @staticmethod
    def _decode_graph_payload(request: QueryRequest, index):
        """Wire graph/features → validated in-memory objects."""
        import numpy as np

        from repro.graphs.io import graph_from_dict

        try:
            graph = graph_from_dict(request.graph)
        except (KeyError, TypeError, ValueError) as error:
            raise InvalidRequest(
                f"malformed 'graph' payload: {error}"
            ) from error
        features = np.asarray(request.features, dtype=float)
        expected = index.database.num_features
        if features.shape != (expected,):
            raise InvalidRequest(
                f"'features' must have exactly {expected} values, "
                f"got {features.shape[0]}"
            )
        return graph, features

    def _execute_query(self, ticket: Ticket) -> dict:
        request = ticket.request
        faults.maybe_slow("service.query")  # chaos-test hook site
        mode = self.breaker.admit()
        bound_only = mode == BOUND_ONLY
        # Breaker open: an already-expired budget sends every exact edit
        # distance straight to its polynomial upper bound — the query
        # answers fast and flagged instead of stalling the queue.
        deadline = Deadline(0.0) if bound_only else ticket.deadline
        try:
            with self.manager.acquire() as index:
                if request.dims is not None:
                    num_features = index.database.num_features
                    if any(not 0 <= d < num_features for d in request.dims):
                        raise InvalidRequest(
                            f"dims must be in [0, {num_features}); "
                            f"got {list(request.dims)}"
                        )
                query_fn = quartile_relevance(
                    index.database, dims=request.dims,
                    quantile=request.quantile,
                )
                query_kwargs = {"deadline": deadline}
                if request.cascade is not None or request.epsilon:
                    from repro.cascade import CascadeConfig, DEFAULT_STAGES

                    query_kwargs["cascade"] = CascadeConfig(
                        stages=(
                            request.cascade
                            if request.cascade is not None else DEFAULT_STAGES
                        ),
                        epsilon=request.epsilon,
                    )
                with obs.timer("service.query_seconds"):
                    result = index.query(
                        query_fn, request.theta, request.k, **query_kwargs
                    )
                generation = self.manager.generation
        except OffLadderThetaError as error:
            # A theta the ladder cannot bound is a client error, not a
            # backend failure: no breaker hit, no crash journal entry.
            raise InvalidRequest(str(error)) from error
        except ServiceError:
            raise  # client errors are not backend health signals
        except Exception:
            if not bound_only:
                self.breaker.record_failure(probe=mode == PROBE)
            raise
        if not bound_only:
            self.breaker.record_success(
                degraded=result.stats.degraded, probe=mode == PROBE
            )
        obs.counter("service.queries")
        body = {
            "answer": [int(g) for g in result.answer],
            "gains": [int(g) for g in result.gains],
            "pi": float(result.pi),
            "num_relevant": int(result.num_relevant),
            "theta": float(result.theta),
            "degraded": bool(result.stats.degraded),
            "degradations": dict(result.stats.degradations),
            "bound_only": bound_only,
            "generation": generation,
        }
        # Approximate mode only: exact (ε = 0) responses stay
        # byte-identical whether or not a cascade was configured.
        if getattr(result.stats, "approximate", False):
            body["approximate"] = True
            body["epsilon"] = float(result.stats.epsilon)
        # Replicated serving only, and only on actual group loss: normal
        # responses stay byte-identical across deployment shapes.
        if getattr(result.stats, "partial", False):
            body["partial"] = True
            body["unavailable_shards"] = [
                int(s) for s in result.stats.unavailable_shards
            ]
        return protocol.ok_response(request.id, body)

    def _watch_loop(self) -> None:
        while not self._stop_watcher.wait(self.config.reload_poll_s):
            try:
                self.manager.maybe_reload()
            except Exception:  # pragma: no cover - watcher must survive
                obs.counter("service.watch_errors")

    def __repr__(self) -> str:
        return (
            f"QueryService(workers={self.config.max_concurrency}, "
            f"queue={self.admission.depth}/{self.config.max_queue}, "
            f"breaker={self.breaker.state}, "
            f"generation={self.manager.generation})"
        )


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
_EOF = object()


def _best_effort_id(line: str):
    """Pull the request id out of a line that failed validation."""
    try:
        payload = json.loads(line)
        return payload.get("id") if isinstance(payload, dict) else None
    except (json.JSONDecodeError, ValueError):
        return None


def serve_lines(service: QueryService, in_stream, out_stream) -> dict:
    """Pump the line protocol between two streams until EOF, then drain.

    Requests are pipelined into the service as they arrive; responses are
    written in *request order* (a writer thread waits on each ticket in
    FIFO order), so the output is deterministic for scripted clients.
    Admission rejections and parse errors slot into the same FIFO.
    """
    pending: queue.Queue = queue.Queue()
    out_lock = threading.Lock()

    def _writer() -> None:
        while True:
            item = pending.get()
            if item is _EOF:
                return
            response = item if isinstance(item, dict) else item.wait()
            with out_lock:
                out_stream.write(protocol.encode(response) + "\n")
                out_stream.flush()

    writer = threading.Thread(target=_writer, name="repro-serve-out", daemon=True)
    writer.start()
    served = 0
    try:
        for line in in_stream:
            if not line.strip():
                continue
            served += 1
            try:
                request = protocol.parse_request(
                    line, max_bytes=service.config.max_request_bytes
                )
                pending.put(service.submit(request))
            except ServiceError as error:
                pending.put(
                    protocol.error_response(_best_effort_id(line), error)
                )
    except KeyboardInterrupt:
        # SIGTERM/SIGINT mid-stream (the CLI turns both into this): stop
        # reading and fall through to the same drain path EOF takes —
        # already-admitted requests still get their FIFO responses.
        pass
    pending.put(_EOF)
    writer.join()
    report = service.drain()
    report["served"] = served
    return report


class _LineHandler(socketserver.StreamRequestHandler):
    """One TCP connection: sequential request/response over the socket.

    Concurrency comes from multiple connections (the server is
    threading); within one connection, ordering is the protocol.
    """

    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            try:
                request = protocol.parse_request(
                    line, max_bytes=service.config.max_request_bytes
                )
                response = service.call(request)
            except ServiceError as error:
                response = protocol.error_response(
                    _best_effort_id(line), error
                )
            try:
                self.wfile.write((protocol.encode(response) + "\n").encode())
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_tcp(service: QueryService, host: str = "127.0.0.1", port: int = 0):
    """Bind a threading TCP server speaking the line protocol.

    Returns the server (its ``server_address`` has the bound port when
    ``port=0``); run ``serve_forever()`` on it — typically in a thread —
    and ``shutdown()`` + ``service.drain()`` to stop.
    """
    server = _ServiceTCPServer((host, port), _LineHandler)
    server.service = service  # type: ignore[attr-defined]
    return server

"""repro.service — a robust serving layer over the NB-Index.

Everything below :class:`QueryService` exists to keep one promise: a
long-lived process over :func:`repro.open_database` /
:func:`repro.open_index` / ``NBIndex.query`` that *stays up* — under
overload (bounded admission + load shedding), under backend trouble
(circuit breaker degrading to bound-only answers), under index swaps
(validated, latched hot reload with rollback), and under poisoned
queries (journaled crash, typed response, surviving worker).

Quick start, in-process::

    from repro.service import QueryService, ServiceConfig, QueryRequest

    with QueryService(index, config=ServiceConfig(max_concurrency=2)) as svc:
        response = svc.call(QueryRequest(id=1, theta=8.0, k=5))

or over a transport: ``repro serve db.jsonl --index idx.npz`` speaks
line-delimited JSON on stdin/stdout (or ``--tcp HOST:PORT``) — see
``docs/service.md`` for the protocol and tuning guidance.
"""

from repro.service.admission import AdmissionController, Ticket
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.crashlog import CrashJournal
from repro.service.errors import (
    DeadlineExpired,
    InvalidRequest,
    Overloaded,
    QueryFailed,
    ReloadFailed,
    ServiceClosed,
    ServiceError,
)
from repro.service.latch import ReadWriteLatch
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    QueryRequest,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.reload import IndexManager
from repro.service.server import (
    QueryService,
    ServiceConfig,
    serve_lines,
    serve_tcp,
)

__all__ = [
    "QueryService",
    "ServiceConfig",
    "serve_lines",
    "serve_tcp",
    "AdmissionController",
    "Ticket",
    "BreakerConfig",
    "CircuitBreaker",
    "IndexManager",
    "ReadWriteLatch",
    "CrashJournal",
    "QueryRequest",
    "parse_request",
    "encode",
    "ok_response",
    "error_response",
    "MAX_REQUEST_BYTES",
    "ServiceError",
    "Overloaded",
    "ServiceClosed",
    "InvalidRequest",
    "DeadlineExpired",
    "QueryFailed",
    "ReloadFailed",
]

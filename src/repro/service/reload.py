"""Hot index reload: validate, atomically swap, roll back on failure.

The serving pattern for vantage/embedding indexes is a long-lived process
over an immutable artifact: a new index is *built offline*, written with
the checksummed container (:func:`repro.index.save_index`), and dropped
next to the serving one.  :class:`IndexManager` owns the swap:

1. **Validate outside the latch** — the candidate is loaded with the
   typed loaders (:class:`~repro.resilience.CorruptIndexError`,
   :class:`~repro.resilience.IndexFormatError`,
   :class:`~repro.resilience.DatabaseMismatchError` all fail the reload
   cleanly), so a torn or wrong-database artifact never gets near the
   serving pointer.  In-flight queries are completely undisturbed during
   validation — they hold read latches on the *old* index.
2. **Swap under the write latch** — the pointer flip waits for in-flight
   readers to finish and is itself O(1), so query disruption is bounded
   by the latch handoff, not by index size.  Queries that started on the
   old index keep their reference and finish on it safely.
3. **Roll back on failure** — any validation error leaves the previous
   index installed and serving; the failure is counted
   (``service.reload.failed``) and re-raised as
   :class:`~repro.service.errors.ReloadFailed` for the caller.

:meth:`maybe_reload` is the watcher hook: it fingerprints the watched
path (mtime + size) and triggers a reload only when the artifact actually
changed, so the service's polling loop is cheap.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import obs
from repro.resilience.errors import PersistenceError
from repro.service.errors import ReloadFailed
from repro.service.latch import ReadWriteLatch


def _fingerprint(path: Path) -> tuple[int, int] | None:
    """(mtime_ns, size) of ``path``, or ``None`` if it does not exist."""
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


class IndexManager:
    """The swappable serving index behind a read-write latch."""

    def __init__(
        self,
        index,
        *,
        database=None,
        distance=None,
        watch_path: str | os.PathLike | None = None,
        workers: int | None = None,
    ):
        self._latch = ReadWriteLatch()
        self._index = index
        self._database = database if database is not None else index.database
        self._distance = distance if distance is not None else index.distance
        self._workers = workers
        self.watch_path = None if watch_path is None else Path(watch_path)
        self._seen = (
            _fingerprint(self.watch_path) if self.watch_path is not None else None
        )
        self.generation = 0
        self.reloads = 0
        self.reload_failures = 0
        obs.gauge("service.index_generation", 0)

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------
    def acquire(self):
        """Read-latched access: ``with manager.acquire() as index: ...``.

        The latch is held for the whole block, so a concurrent reload
        waits for the query instead of swapping underneath it.
        """
        return _ReadHandle(self._latch, lambda: self._index)

    @property
    def index(self):
        """The current index (unlatched peek — for stats, not queries)."""
        return self._index

    @property
    def database(self):
        return self._database

    # ------------------------------------------------------------------
    # Reload side
    # ------------------------------------------------------------------
    def _load_candidate(self, path: Path):
        """Typed loader dispatch: shard-manifest (JSON) or single npz.

        A sharded reload passes the currently serving bundle as
        ``previous`` so shards whose artifact checksum and member set are
        unchanged are reused in place — a one-shard rebuild reloads one
        shard, not S.
        """
        if path.suffix == ".json":
            from repro.shard import ShardedIndex

            previous = (
                self._index if isinstance(self._index, ShardedIndex) else None
            )
            return ShardedIndex.load(
                path, self._database, self._distance,
                workers=self._workers, previous=previous,
            )
        from repro.index.persistence import load_index

        return load_index(
            path, self._database, self._distance, workers=self._workers
        )

    def reload(self, path: str | os.PathLike) -> int:
        """Validate the artifact at ``path`` and swap it in.

        Returns the new generation number.  Raises :class:`ReloadFailed`
        (with the typed persistence error as ``__cause__``) and keeps the
        current index serving on any validation failure.
        """
        path = Path(path)
        try:
            with obs.timer("service.reload_seconds"):
                candidate = self._load_candidate(path)
        except (PersistenceError, OSError) as error:
            self.reload_failures += 1
            obs.counter("service.reload.failed")
            raise ReloadFailed(
                f"reload candidate {path} rejected, previous index stays "
                f"installed (generation {self.generation}): {error}"
            ) from error
        previous = None
        with self._latch.write():
            previous, self._index = self._index, candidate
            self.generation += 1
            generation = self.generation
        self.reloads += 1
        obs.counter("service.reload.success")
        obs.gauge("service.index_generation", generation)
        # The old index's pool is dead weight once no query references it.
        if previous is not None and getattr(previous, "engine", None) is not None:
            previous.engine.invalidate_pool()
        return generation

    def maybe_reload(self) -> bool:
        """Reload iff the watched artifact changed since last seen.

        A failed validation *consumes* the new fingerprint (so a corrupt
        drop is reported once, not every poll) and leaves the previous
        index serving.  Returns True only on a successful swap.
        """
        if self.watch_path is None:
            return False
        current = _fingerprint(self.watch_path)
        if current is None or current == self._seen:
            return False
        self._seen = current
        try:
            self.reload(self.watch_path)
        except ReloadFailed:
            return False
        return True

    def stats(self) -> dict:
        return {
            "generation": self.generation,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "watch_path": (
                None if self.watch_path is None else str(self.watch_path)
            ),
        }


class _ReadHandle:
    """Context manager pairing the read latch with the current index."""

    __slots__ = ("_latch", "_get", "_cm")

    def __init__(self, latch: ReadWriteLatch, get):
        self._latch = latch
        self._get = get

    def __enter__(self):
        self._cm = self._latch.read()
        self._cm.__enter__()
        return self._get()

    def __exit__(self, *exc):
        return self._cm.__exit__(*exc)

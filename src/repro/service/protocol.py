"""The service wire protocol: line-delimited JSON, no dependencies.

One request per line in, one response per line out — the same frames work
over stdin/stdout pipes and TCP sockets, and a shell with ``echo`` and
``nc`` is a complete client.  Requests::

    {"id": 1, "op": "query", "theta": 8.0, "k": 5}
    {"id": 2, "op": "query", "theta": 8.0, "k": 5, "quantile": 0.5,
     "dims": [0, 1], "timeout_ms": 250, "seed": 7}
    {"id": 3, "op": "ping"}
    {"id": 4, "op": "stats"}
    {"id": 5, "op": "reload", "path": "new-index.npz"}

Queries may select a lower-bound filter cascade and/or the ε-relaxed
approximate mode (PR 10, see ``docs/cascade.md``).  ``cascade`` names an
ordered subset of stages from :data:`repro.cascade.KNOWN_STAGES`;
``epsilon`` is a number in ``[0, 1)``.  Unknown stage names and
malformed epsilons are typed ``invalid_request`` rejections before
admission, never breaker hits::

    {"id": 14, "op": "query", "theta": 8.0, "k": 5,
     "cascade": ["label_size", "assignment", "vantage"], "epsilon": 0.05}

Approximate responses (``epsilon > 0``) add ``"approximate": true`` and
the effective ``"epsilon"``; exact responses stay byte-identical.

Mutation ops are *versioned* — they carry ``"v": 1`` (optional today;
any other version is rejected with ``invalid_request`` so the wire can
evolve without silent misreads) and need a deployment opened with
``--mutable``; on a read-only deployment they come back as typed
``invalid_request`` rejections::

    {"id": 6, "op": "insert", "v": 1, "graph": {...}, "features": [...]}
    {"id": 7, "op": "delete", "v": 1, "gid": 42}
    {"id": 8, "op": "update", "v": 1, "gid": 42, "graph": {...},
     "features": [...]}
    {"id": 9, "op": "compact", "v": 1}

Durability admin ops (PR 9) ride the same wire: ``checkpoint`` folds the
mutation journal into a fresh base generation (mutable + journaled
deployments only), ``backup`` captures a crash-consistent snapshot into
the directory named by ``path``, ``scrub`` runs one verification cycle
over the deployment's artifacts, and ``scrub_status`` reports the
background scrubber's counters::

    {"id": 10, "op": "checkpoint"}
    {"id": 11, "op": "backup", "path": "backups/2026-08-08"}
    {"id": 12, "op": "scrub"}
    {"id": 13, "op": "scrub_status"}

Responses echo the ``id`` and carry either ``result`` or a typed
``error``::

    {"id": 1, "ok": true, "result": {"answer": [3, 17], "gains": [9, 4],
     "pi": 0.81, "num_relevant": 16, "theta": 8.0, "degraded": false,
     "bound_only": false, "generation": 0}}
    {"id": 6, "ok": false,
     "error": {"code": "overloaded", "message": "...", "retry_after_s": 0.4}}

Replicated deployments (``repro serve --shards ... --replicas R``) add
``"partial": true`` and ``"unavailable_shards": [...]`` to a query
result *only* when every replica of one or more shards was down and the
answer covers just the surviving shards; normal responses stay
byte-identical across deployment shapes.

Oversized lines (``max_request_bytes``), non-JSON, unknown ops and
invalid parameters are rejected *before admission* with
``invalid_request`` — a malformed client cannot occupy a queue slot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.service.errors import InvalidRequest, ServiceError

#: Ops the service understands.
OPS = frozenset({
    "query", "ping", "stats", "reload",
    "insert", "delete", "update", "compact",
    "checkpoint", "backup", "scrub", "scrub_status",
})

#: Ops that mutate the index (need a ``mutable=True`` deployment).
MUTATION_OPS = frozenset({"insert", "delete", "update", "compact"})

#: The mutation-protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Default cap on one request line; oversized requests are shed at parse.
MAX_REQUEST_BYTES = 64 * 1024


@dataclass(frozen=True)
class QueryRequest:
    """One admitted unit of work (already validated)."""

    id: object = None
    op: str = "query"
    theta: float | None = None
    k: int | None = None
    quantile: float = 0.75
    dims: tuple[int, ...] | None = None
    seed: int | None = None
    timeout_ms: float | None = None
    path: str | None = None  # reload target (defaults to the watch path)
    v: int = PROTOCOL_VERSION  # mutation-protocol version
    gid: int | None = None  # delete/update target
    graph: dict | None = None  # insert/update payload
    features: tuple[float, ...] | None = None  # insert/update payload
    cascade: tuple[str, ...] | None = None  # ordered filter stages
    epsilon: float = 0.0  # approximate-mode relaxation
    extra: dict = field(default_factory=dict, compare=False)


def parse_request(line: str, *, max_bytes: int = MAX_REQUEST_BYTES) -> QueryRequest:
    """Parse and validate one request line; raises :class:`InvalidRequest`."""
    raw = line.strip()
    if len(raw.encode("utf-8", errors="replace")) > max_bytes:
        raise InvalidRequest(
            f"request exceeds {max_bytes} bytes; split or shrink it"
        )
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise InvalidRequest(f"request is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise InvalidRequest("request must be a JSON object")

    op = payload.get("op", "query")
    if op not in OPS:
        raise InvalidRequest(f"unknown op {op!r}; supported: {sorted(OPS)}")
    request_id = payload.get("id")

    theta = _number(payload, "theta")
    k = _number(payload, "k")
    quantile = _number(payload, "quantile")
    timeout_ms = _number(payload, "timeout_ms")
    seed = _number(payload, "seed")
    if op == "query":
        if theta is None or theta <= 0:
            raise InvalidRequest("query needs a positive numeric 'theta'")
        if k is None or int(k) < 1:
            raise InvalidRequest("query needs an integer 'k' >= 1")
        if quantile is not None and not (0.0 < quantile < 1.0):
            raise InvalidRequest("'quantile' must be in (0, 1)")
    if timeout_ms is not None and timeout_ms < 0:
        raise InvalidRequest("'timeout_ms' must be >= 0")

    dims = payload.get("dims")
    if dims is not None:
        if not isinstance(dims, list) or not all(
            isinstance(d, int) and not isinstance(d, bool) for d in dims
        ):
            raise InvalidRequest("'dims' must be a list of integers")
        dims = tuple(dims)

    path = payload.get("path")
    if path is not None and not isinstance(path, str):
        raise InvalidRequest("'path' must be a string")
    if op == "backup" and not path:
        raise InvalidRequest(
            "backup needs a 'path' — the directory the snapshot is "
            "captured into (must not already exist)"
        )

    version = payload.get("v", PROTOCOL_VERSION)
    if op in MUTATION_OPS:
        if (
            isinstance(version, bool)
            or not isinstance(version, int)
            or version != PROTOCOL_VERSION
        ):
            raise InvalidRequest(
                f"unsupported mutation-protocol version {version!r}; this "
                f"build speaks v{PROTOCOL_VERSION}"
            )
    gid, graph, features = _validate_mutation_fields(op, payload)
    cascade, epsilon = _validate_cascade_fields(payload)

    known = {
        "id", "op", "theta", "k", "quantile", "dims", "seed",
        "timeout_ms", "path", "v", "gid", "graph", "features",
        "cascade", "epsilon",
    }
    extra = {key: payload[key] for key in payload.keys() - known}
    return QueryRequest(
        id=request_id,
        op=op,
        theta=None if theta is None else float(theta),
        k=None if k is None else int(k),
        quantile=0.75 if quantile is None else float(quantile),
        dims=dims,
        seed=None if seed is None else int(seed),
        timeout_ms=timeout_ms,
        path=path,
        v=PROTOCOL_VERSION if not isinstance(version, int) else int(version),
        gid=gid,
        graph=graph,
        features=features,
        cascade=cascade,
        epsilon=epsilon,
        extra=extra,
    )


def _validate_mutation_fields(op: str, payload: dict):
    """Validate the op-specific mutation fields before admission."""
    gid = payload.get("gid")
    graph = payload.get("graph")
    features = payload.get("features")
    if op in ("delete", "update"):
        if isinstance(gid, bool) or not isinstance(gid, int) or gid < 0:
            raise InvalidRequest(f"{op} needs a non-negative integer 'gid'")
    if op in ("insert", "update"):
        if not isinstance(graph, dict):
            raise InvalidRequest(
                f"{op} needs a 'graph' object (see repro.graphs.io "
                f"graph_to_dict for the shape)"
            )
        if not isinstance(features, list) or not all(
            isinstance(x, (int, float)) and not isinstance(x, bool)
            for x in features
        ):
            raise InvalidRequest(f"{op} needs a 'features' list of numbers")
        features = tuple(float(x) for x in features)
    else:
        graph = None
        features = None
    if op not in ("delete", "update"):
        gid = None
    return gid, graph, features


def _validate_cascade_fields(payload: dict):
    """Validate the optional ``cascade``/``epsilon`` query fields.

    Runs before admission, like every other field check: an unknown stage
    name or out-of-range epsilon is the client's mistake — typed
    ``invalid_request``, never a breaker hit."""
    from repro.cascade import (
        DEFAULT_STAGES,
        KNOWN_STAGES,
        CascadeConfig,
        CascadeConfigError,
    )

    cascade = payload.get("cascade")
    if cascade is not None:
        if isinstance(cascade, str) or not isinstance(cascade, list):
            raise InvalidRequest(
                f"'cascade' must be a list of stage names from "
                f"{list(KNOWN_STAGES)}"
            )
        if not all(isinstance(name, str) for name in cascade):
            raise InvalidRequest("'cascade' stage names must be strings")
    epsilon = payload.get("epsilon", 0.0)
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        raise InvalidRequest(
            f"'epsilon' must be a number in [0, 1), got {epsilon!r}"
        )
    try:
        # CascadeConfig re-runs the full validation (stage names, dupes,
        # epsilon range) so wire and in-process checks cannot drift.
        CascadeConfig(
            stages=tuple(cascade) if cascade is not None else DEFAULT_STAGES,
            epsilon=float(epsilon),
        )
    except CascadeConfigError as error:
        raise InvalidRequest(str(error)) from error
    return (
        tuple(cascade) if cascade is not None else None,
        float(epsilon),
    )


def _number(payload: dict, key: str) -> float | None:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidRequest(f"{key!r} must be a number, got {value!r}")
    return float(value)


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------
def ok_response(request_id, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error: Exception) -> dict:
    if isinstance(error, ServiceError):
        wire = error.to_wire()
    else:  # pragma: no cover - defensive; workers wrap everything typed
        wire = {"code": "service_error", "message": str(error)}
    return {"id": request_id, "ok": False, "error": wire}


def encode(response: dict) -> str:
    """One response as one line (compact separators, no trailing space)."""
    return json.dumps(response, separators=(",", ":"))

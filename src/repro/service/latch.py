"""A writer-preferring read-write latch for the hot index swap.

Queries hold the read side for their whole execution; a reload takes the
write side only for the pointer swap itself (validation happens outside
the latch).  Writer preference keeps a steady query stream from starving
a pending swap: once a writer is waiting, new readers queue behind it.

Pure ``threading.Condition`` — no external dependencies, no fairness
guarantees beyond the writer gate, which is all the service needs.
"""

from __future__ import annotations

import contextlib
import threading


class ReadWriteLatch:
    """Many concurrent readers XOR one writer."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLatch(readers={self._readers}, "
            f"writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )

"""Admission control: a bounded queue that sheds instead of growing.

The controller is the service's only front door.  Every request either
gets a :class:`Ticket` (it will be executed, or deadline-cancelled, and
its future will complete) or is rejected *immediately* with a typed
:class:`~repro.service.errors.Overloaded` carrying a retry-after hint —
never silently queued beyond ``max_queue``.  Under sustained overload the
queue depth is therefore a hard constant, latency for admitted requests
stays bounded, and excess load is pushed back to clients, which is the
behavior that survives traffic spikes (shed-don't-queue).

Per-request deadlines derive from :class:`repro.resilience.Deadline` at
admission time (``timeout_ms`` on the request, else the service default),
so time spent *waiting in the queue* counts against the budget — a
request that waited its whole budget is cancelled, not started late.

Instrumentation (:mod:`repro.obs`): ``service.queue_depth`` gauge,
``service.admitted`` / ``service.shed`` / ``service.closed_rejections``
counters, and the ``service.admission_latency_seconds`` histogram
(admission → worker pickup).
"""

from __future__ import annotations

import collections
import threading
import time

from repro import obs
from repro.obs.registry import TIME_BUCKETS
from repro.resilience.deadline import Deadline
from repro.service.errors import Overloaded, ServiceClosed
from repro.utils.validation import require


class Ticket:
    """One admitted request: payload + deadline + a completable future."""

    __slots__ = (
        "request", "deadline", "admitted_at", "started_at", "_event",
        "_response",
    )

    def __init__(self, request, deadline: Deadline | None):
        self.request = request
        self.deadline = deadline
        self.admitted_at = time.monotonic()
        self.started_at: float | None = None
        self._event = threading.Event()
        self._response = None

    def resolve(self, response) -> None:
        """Complete the ticket (exactly once; later calls are ignored)."""
        if not self._event.is_set():
            self._response = response
            self._event.set()

    def wait(self, timeout: float | None = None):
        """Block until the response is ready; ``None`` on timeout."""
        if not self._event.wait(timeout):
            return None
        return self._response

    @property
    def done(self) -> bool:
        return self._event.is_set()


class AdmissionController:
    """Bounded FIFO admission with load shedding and drain support.

    Parameters
    ----------
    max_queue:
        Requests allowed to *wait* (beyond the ones workers are already
        executing).  Admission attempt number ``max_queue + 1`` sheds.
    max_concurrency:
        Worker count — only used to scale the retry-after estimate.
    default_timeout_ms:
        Deadline applied to requests that do not carry their own
        ``timeout_ms``; ``None`` means no implicit deadline.
    """

    def __init__(
        self,
        *,
        max_queue: int = 16,
        max_concurrency: int = 2,
        default_timeout_ms: float | None = None,
    ):
        require(int(max_queue) >= 1, f"max_queue must be >= 1, got {max_queue}")
        require(
            int(max_concurrency) >= 1,
            f"max_concurrency must be >= 1, got {max_concurrency}",
        )
        self.max_queue = int(max_queue)
        self.max_concurrency = int(max_concurrency)
        self.default_timeout_ms = default_timeout_ms
        self._queue: collections.deque[Ticket] = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        #: EMA of per-request service seconds, feeding the retry-after hint.
        self._service_ema = 0.05
        # Counters (exposed via stats(); obs mirrors them live).
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def admit(self, request, *, timeout_ms: float | None = None) -> Ticket:
        """Admit ``request`` or raise :class:`Overloaded`/:class:`ServiceClosed`.

        ``timeout_ms`` overrides the controller default for this request.
        """
        effective_ms = (
            timeout_ms if timeout_ms is not None else self.default_timeout_ms
        )
        deadline = (
            None if effective_ms is None
            else Deadline.from_timeout_ms(effective_ms)
        )
        with self._cond:
            if self._closed:
                obs.counter("service.closed_rejections")
                raise ServiceClosed("service is draining; not admitting")
            if len(self._queue) >= self.max_queue:
                self.shed += 1
                obs.counter("service.shed")
                raise Overloaded(
                    f"queue full ({len(self._queue)}/{self.max_queue} "
                    f"waiting); shedding instead of queueing",
                    retry_after_s=self._retry_after_locked(),
                )
            ticket = Ticket(request, deadline)
            self._queue.append(ticket)
            self.admitted += 1
            obs.counter("service.admitted")
            obs.gauge("service.queue_depth", len(self._queue))
            self._cond.notify()
            return ticket

    def _retry_after_locked(self) -> float:
        """Expected time until a queue slot frees up (rough, honest)."""
        backlog = len(self._queue) + self.max_concurrency
        return max(0.05, backlog * self._service_ema / self.max_concurrency)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def next(self, poll_s: float = 0.1) -> Ticket | None:
        """Block for the next ticket; ``None`` once closed and drained."""
        with self._cond:
            while True:
                if self._queue:
                    ticket = self._queue.popleft()
                    obs.gauge("service.queue_depth", len(self._queue))
                    break
                if self._closed:
                    return None
                self._cond.wait(poll_s)
        ticket.started_at = time.monotonic()
        obs.histogram(
            "service.admission_latency_seconds",
            ticket.started_at - ticket.admitted_at,
            buckets=TIME_BUCKETS,
        )
        return ticket

    def note_completion(self, service_seconds: float) -> None:
        """Feed one finished request's duration into the retry-after EMA."""
        with self._cond:
            self.completed += 1
            self._service_ema += 0.2 * (service_seconds - self._service_ema)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; queued tickets remain for workers to finish."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def cancel_pending(self, make_response) -> int:
        """Resolve every still-queued ticket with ``make_response(ticket)``;
        returns the count.  Used by drain once the grace period runs out."""
        with self._cond:
            pending = list(self._queue)
            self._queue.clear()
            obs.gauge("service.queue_depth", 0)
        for ticket in pending:
            self.cancelled += 1
            ticket.resolve(make_response(ticket))
        return len(pending)

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        with self._cond:
            return {
                "queue_depth": len(self._queue),
                "max_queue": self.max_queue,
                "admitted": self.admitted,
                "shed": self.shed,
                "completed": self.completed,
                "cancelled": self.cancelled,
                "closed": self._closed,
                "service_seconds_ema": self._service_ema,
            }

"""Top-k representative queries over arbitrary metric spaces.

The paper notes its algorithm "is generalizable to all metric spaces"
(Sec. 1); every engine in this library only ever touches the database
through ``database[i]`` and a distance callable, so non-graph objects just
need an adapter.  :func:`metric_space_database` wraps arbitrary payload
objects into placeholder graphs (one vertex, labelled by position) and
pairs them with a distance that dereferences the payloads — the same
pattern the Theorem-1 reduction uses (:mod:`repro.core.reduction`).

The payloads can be anything — time series, strings under edit distance,
embeddings — as long as ``distance(payload_a, payload_b)`` is a metric.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import LabeledGraph
from repro.utils.validation import require


class PayloadDistance:
    """A graph-distance adapter around a payload-level metric."""

    def __init__(self, payloads: Sequence, metric: Callable):
        self._payloads = list(payloads)
        self._metric = metric

    def payload(self, gid: int):
        return self._payloads[gid]

    def _index_of(self, g: LabeledGraph) -> int:
        # Placeholder graphs carry their payload index in the node label
        # ("o<i>", see metric_space_database), which survives database
        # subsetting; graph_id does not — a shard's sub-database renumbers
        # ids 0..n_s-1, and resolving through it would alias payloads.
        label = g.node_labels[0]
        if isinstance(label, str) and label.startswith("o"):
            try:
                return int(label[1:])
            except ValueError:
                pass
        return g.graph_id

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        return float(
            self._metric(
                self._payloads[self._index_of(g1)],
                self._payloads[self._index_of(g2)],
            )
        )

    def __len__(self) -> int:
        return len(self._payloads)

    def append(self, payload) -> int:
        """Register one more payload (for incremental inserts)."""
        self._payloads.append(payload)
        return len(self._payloads) - 1


def metric_space_database(
    payloads: Sequence,
    metric: Callable,
    features=None,
) -> tuple[GraphDatabase, PayloadDistance]:
    """Build a (database, distance) pair over arbitrary objects.

    Parameters
    ----------
    payloads:
        The objects to query over.
    metric:
        ``(payload, payload) → float`` — must satisfy the metric axioms for
        the NB-Index theorems to hold (validate with
        :func:`repro.ged.check_metric_axioms` on a sample if unsure).
    features:
        Optional ``(n, m)`` feature matrix for relevance functions; defaults
        to a constant column (everything relevant under a ≤0 threshold).
    """
    payloads = list(payloads)
    require(len(payloads) > 0, "payloads must be non-empty")
    if features is None:
        features = np.ones((len(payloads), 1))
    graphs = [LabeledGraph([f"o{i}"]) for i in range(len(payloads))]
    database = GraphDatabase(graphs, features)
    return database, PayloadDistance(payloads, metric)

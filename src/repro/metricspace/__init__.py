"""Representative queries over arbitrary metric spaces (not just graphs)."""

from repro.metricspace.generic import PayloadDistance, metric_space_database
from repro.metricspace.vectors import MinkowskiMetric, vector_database

__all__ = [
    "metric_space_database",
    "PayloadDistance",
    "vector_database",
    "MinkowskiMetric",
]

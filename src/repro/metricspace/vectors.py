"""Euclidean / Minkowski vector spaces as representative-query databases.

The most common non-graph metric space: points in R^d.  Fig. 1(b) of the
paper motivates the whole model in exactly this setting (cluster centers
vs relevant outliers), so this module lets the example and tests replay
that argument literally.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.metricspace.generic import PayloadDistance, metric_space_database
from repro.utils.validation import require


class MinkowskiMetric:
    """L_p metric on vectors (p ≥ 1 keeps the triangle inequality)."""

    def __init__(self, p: float = 2.0):
        require(p >= 1.0, f"p must be >= 1 for a metric, got {p}")
        self.p = float(p)

    def __call__(self, a, b) -> float:
        diff = np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
        if np.isinf(self.p):
            return float(diff.max())
        return float((diff**self.p).sum() ** (1.0 / self.p))

    def __repr__(self) -> str:
        return f"MinkowskiMetric(p={self.p:g})"


def vector_database(
    points,
    features=None,
    p: float = 2.0,
) -> tuple[GraphDatabase, PayloadDistance]:
    """A representative-query database over points in R^d.

    ``features`` defaults to the coordinates themselves, so relevance
    functions can select by position (e.g. "points with x ≥ τ are
    relevant").
    """
    matrix = np.asarray(points, dtype=float)
    require(matrix.ndim == 2, f"points must be (n, d), got shape {matrix.shape}")
    if features is None:
        features = matrix
    return metric_space_database(
        [row for row in matrix], MinkowskiMetric(p), features=features
    )

"""Command-line interface.

Wires the library's main workflows into subcommands::

    repro generate dud --num-graphs 500 --seed 7 --output dud.jsonl
    repro stats dud.jsonl
    repro build-index dud.jsonl --output dud-index.npz
    repro shard-build dud.jsonl --output dud-shards/ --shards 4
    repro query dud.jsonl --k 10 [--theta 10] [--index dud-index.npz]
    repro query dud.jsonl --k 10 --shards dud-shards/manifest.json
    repro serve dud.jsonl --index dud-index.npz [--tcp 127.0.0.1:7341]
    repro serve dud.jsonl --shards dud-shards/manifest.json
    repro checkpoint dud.jsonl --journal dud.journal
    repro backup backups/snap --database dud.jsonl --journal dud.journal
    repro restore backups/snap restored/
    repro verify dud-shards/manifest.json
    repro bench-hotpath --sizes 500
    repro experiment fig2a_disc_growth

``repro experiment`` runs any benchmark driver by name and prints its
paper-style table (persisted under ``results/``).

``repro query`` and ``repro build-index`` accept ``--metrics PATH``
(write a ``repro.obs`` JSON document — or Prometheus text when the path
ends in ``.prom``) and ``--trace`` (print the counter/span report after
the run).  Setting ``REPRO_OBS=1`` turns observability on for any
subcommand without flags.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro import __version__, obs


def _start_observation(args):
    """Flip observability on when ``--metrics``/``--trace`` ask for it."""
    if getattr(args, "metrics", None) or getattr(args, "trace", False):
        return obs.observe()
    return None


def _finish_observation(observation, args) -> None:
    if observation is None:
        return
    if args.metrics:
        observation.write(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    if args.trace:
        observation.report()
    observation.__exit__(None, None, None)


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------
def cmd_generate(args) -> int:
    from repro.datasets import GENERATORS
    from repro.graphs import save_database

    generator = GENERATORS[args.dataset]
    database = generator(num_graphs=args.num_graphs, seed=args.seed)
    save_database(database, args.output)
    summary = database.summary()
    print(
        f"wrote {args.output}: {summary['num_graphs']} graphs, "
        f"avg {summary['avg_nodes']:.1f} nodes / {summary['avg_edges']:.1f} "
        f"edges, {summary['num_features']} features"
    )
    return 0


def cmd_stats(args) -> int:
    from repro.analysis import sample_distances
    from repro.ged import StarDistance
    from repro.graphs import load_database

    database = load_database(args.database)
    summary = database.summary()
    print(f"graphs:   {summary['num_graphs']}")
    print(f"avg size: {summary['avg_nodes']:.1f} nodes / "
          f"{summary['avg_edges']:.1f} edges")
    print(f"features: {summary['num_features']}d")
    distribution = sample_distances(
        database, StarDistance(),
        num_pairs=min(args.num_pairs, len(database) * 4), rng=args.seed,
    )
    print(f"distance: mu={distribution.mean:.1f} sigma={distribution.std:.1f} "
          f"max={distribution.diameter_estimate:.1f}")
    for quantile in (0.01, 0.05, 0.25, 0.5):
        print(f"  q{int(quantile * 100):>2} = {distribution.quantile(quantile):.1f}")
    return 0


def cmd_build_index(args) -> int:
    import repro
    from repro.ged import StarDistance
    from repro.index import NBIndex, save_index

    observation = _start_observation(args)
    database = repro.open_database(args.database)
    index = NBIndex.build(
        database, StarDistance(),
        num_vantage_points=args.vantage_points, branching=args.branching,
        seed=args.seed, workers=args.workers,
        checkpoint=args.checkpoint, resume=args.resume,
    )
    save_index(index, args.output)
    print(
        f"wrote {args.output}: {index.tree.num_nodes} tree nodes, "
        f"{index.embedding.num_vantage_points} VPs, "
        f"built in {index.build_seconds:.1f}s "
        f"({index.stats()['distance_calls']} edit distances)"
    )
    _finish_observation(observation, args)
    return 0


def cmd_shard_build(args) -> int:
    import repro
    from repro.ged import StarDistance
    from repro.shard import build_shards

    observation = _start_observation(args)
    database = repro.open_database(args.database)
    distance = StarDistance()
    manifest_path = build_shards(
        database, distance, num_shards=args.shards, out_dir=args.output,
        partitioner=args.partitioner,
        num_vantage_points=args.vantage_points, branching=args.branching,
        seed=args.seed, workers=args.workers,
    )
    # Load the bundle back: a build that cannot be served is a failed build.
    sharded = repro.open_index(
        manifest_path, database, distance, shards=True, workers=args.workers
    )
    stats = sharded.stats()
    sizes = "/".join(str(s["num_graphs"]) for s in stats["shards"])
    print(
        f"wrote {manifest_path}: {stats['num_shards']} shards "
        f"({sizes} graphs), {stats['tree_nodes']} tree nodes, "
        f"partitioner={stats['partitioner']}, "
        f"built in {sharded.manifest.build['total_seconds']:.1f}s"
    )
    sharded.invalidate_pools()
    _finish_observation(observation, args)
    return 0


def cmd_query(args) -> int:
    import repro
    from repro.datasets import calibrate_theta
    from repro.ged import StarDistance
    from repro.graphs import quartile_relevance
    from repro.index import NBIndex

    if args.shards and (args.index or args.method == "greedy"):
        print("query: --shards conflicts with --index/--method greedy",
              file=sys.stderr)
        return 2
    if args.journal and not (args.shards or args.index):
        print("query: --journal needs --index or --shards", file=sys.stderr)
        return 2
    cascade_config = None
    if args.cascade is not None or args.epsilon:
        from repro.cascade import CascadeConfig, CascadeConfigError

        if args.method == "greedy":
            print("query: --cascade/--epsilon conflict with --method greedy "
                  "(the baseline evaluates every pair exactly)",
                  file=sys.stderr)
            return 2
        try:
            cascade_config = CascadeConfig.parse(
                args.cascade, epsilon=args.epsilon
            )
        except CascadeConfigError as error:
            print(f"query: {error}", file=sys.stderr)
            return 2
    observation = _start_observation(args)
    distance = StarDistance()

    # Resolve the index before relevance/theta: a --journal open replays
    # journaled mutations into the database, and both the relevance
    # thresholds and any calibrated theta must see the mutated content.
    # With a journal the database travels as a path — a checkpointed
    # journal (generation > 0) pins its own base file, and open_index
    # loads + verifies that instead of the original.
    database = (
        args.database if args.journal
        else repro.open_database(args.database)
    )
    index = None
    if args.shards or args.index:
        index = repro.open_index(
            args.shards or args.index, database, distance,
            shards=bool(args.shards),
            mutable=bool(args.journal), journal=args.journal or None,
            workers=args.workers, seed=args.seed,
        )
        if args.journal:
            database = index.database

    theta = args.theta
    if theta is None:
        theta = calibrate_theta(database, distance, quantile=0.05, rng=args.seed)
        print(f"calibrated theta = {theta:.2f}")
    dims = args.dims if args.dims else None
    q = quartile_relevance(database, dims=dims, quantile=args.quantile)

    deadline = None
    if args.deadline_ms is not None:
        from repro.resilience import Deadline

        deadline = Deadline.from_timeout_ms(args.deadline_ms)

    from repro.resilience.deadline import deadline_scope

    with deadline_scope(deadline):
        if args.method == "greedy":
            from repro.core import baseline_greedy
            from repro.engine import DistanceEngine

            engine = DistanceEngine(
                distance, workers=args.workers, graphs=database.graphs
            )
            result = baseline_greedy(
                database, distance, q, theta, args.k, engine=engine
            )
        else:
            if index is None:
                index = NBIndex.build(
                    database, distance, num_vantage_points=args.vantage_points,
                    branching=args.branching, seed=args.seed, workers=args.workers,
                )
            if cascade_config is not None:
                result = index.query(q, theta, args.k, cascade=cascade_config)
            else:
                result = index.query(q, theta, args.k)
            if hasattr(index, "invalidate_pools"):
                index.invalidate_pools()

    print(f"relevant graphs: {result.num_relevant}")
    print(f"pi(A) = {result.pi:.3f}   CR = {result.compression_ratio:.1f}")
    print(f"{'rank':<6}{'graph':<8}{'gain':<6}{'nodes':<7}{'edges':<7}")
    for rank, (gid, gain) in enumerate(zip(result.answer, result.gains), 1):
        g = database[gid]
        print(f"{rank:<6}{gid:<8}{gain:<6}{g.num_nodes:<7}{g.num_edges:<7}")
    if cascade_config is not None:
        _print_cascade_footer(cascade_config, result)
    if deadline is not None:
        _print_degradation_footer(deadline)
    _finish_observation(observation, args)
    return 0


def _print_cascade_footer(config, result) -> None:
    """Per-stage prune summary, plus the approximate-mode flag."""
    if getattr(result.stats, "approximate", False):
        print(
            f"approximate: epsilon={result.stats.epsilon:g} — neighborhoods "
            f"within [(1−ε)θ, θ]; greedy keeps the (1−1/e−ε) guarantee"
        )
    snapshot = getattr(result.stats, "cascade", {}) or {}
    if not snapshot:
        print(f"cascade: stages={','.join(config.stages) or 'exact-only'}")
        return
    parts = []
    for name in config.stages:
        entry = snapshot.get(name)
        if entry is None:
            continue
        dropped = entry["prunes"] + entry["accepts"]
        parts.append(f"{name}={dropped}/{entry['evals']}")
    print(
        "cascade: pruned+accepted/evaluated per stage — "
        + (", ".join(parts) if parts else "no stage ran")
    )


def _print_degradation_footer(deadline) -> None:
    """One-line summary of what the deadline budget cost the query."""
    if not deadline.degradations:
        print(f"deadline: met — all edit distances exact ({deadline!r})")
        return
    breakdown = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(deadline.degradations.items())
    )
    total = sum(deadline.degradations.values())
    print(
        f"deadline: DEGRADED — {total} edit distances fell back to upper "
        f"bounds ({breakdown}); pi/CR above are computed on approximate "
        f"neighborhoods"
    )


def cmd_serve(args) -> int:
    from repro.service import BreakerConfig, QueryService, ServiceConfig
    from repro.service.crashlog import DEFAULT_MAX_BYTES
    from repro.service.server import serve_lines, serve_tcp

    observation = _start_observation(args)
    if args.crash_log_max_bytes is None:
        crash_log_max = DEFAULT_MAX_BYTES
    else:  # 0 disables rotation entirely
        crash_log_max = args.crash_log_max_bytes or None
    config = ServiceConfig(
        max_concurrency=args.concurrency,
        max_queue=args.max_queue,
        default_timeout_ms=args.deadline_ms,
        drain_grace_s=args.drain_grace,
        breaker=BreakerConfig(cooldown_s=args.breaker_cooldown),
        crash_log=args.crash_log,
        crash_log_max_bytes=crash_log_max,
        crash_log_keep=args.crash_log_keep,
        watch=args.watch,
        reload_poll_s=args.reload_poll,
        metrics_path=args.metrics,
        scrub_interval_s=args.scrub_interval,
    )
    if args.mutable and args.watch:
        print("serve: --mutable conflicts with --watch (compaction owns "
              "index swaps)", file=sys.stderr)
        return 2
    if args.journal and not args.mutable:
        print("serve: --journal needs --mutable", file=sys.stderr)
        return 2
    if args.replicas is not None:
        if not args.shards:
            print("serve: --replicas needs --shards (a manifest bundle to "
                  "replicate)", file=sys.stderr)
            return 2
        if args.mutable or args.watch:
            print("serve: --replicas conflicts with --mutable/--watch "
                  "(worker processes hold immutable artifacts)",
                  file=sys.stderr)
            return 2
    service = QueryService.open(
        args.database,
        index_path=args.index,
        shards_path=args.shards,
        config=config,
        workers=args.workers,
        mutable=args.mutable,
        journal=args.journal or None,
        replicas=args.replicas,
        workers_per_shard=args.workers_per_shard,
        hedge_ms=args.hedge_ms,
        seed=args.seed,
    ).start()
    # A container SIGTERM (or Ctrl-C) must run the same graceful-drain
    # path as EOF/serve_forever teardown — in-flight answers still go
    # out, metrics flush, worker fleets stop.  Later signals during the
    # drain itself are ignored rather than re-raised.
    def _stop_signal(signum, frame):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop_signal)
    signal.signal(signal.SIGINT, _stop_signal)
    print(
        f"serving {args.database} "
        f"({len(service.manager.database)} graphs, "
        f"generation {service.manager.generation}"
        f"{', mutable' if args.mutable else ''}"
        f"{f', replicas={args.replicas}' if args.replicas else ''}); "
        f"workers={config.max_concurrency} queue={config.max_queue}",
        file=sys.stderr,
    )
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        server = serve_tcp(service, host or "127.0.0.1", int(port))
        bound = server.server_address
        print(f"listening on {bound[0]}:{bound[1]}", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()
            report = service.drain()
            print(f"drained: {report}", file=sys.stderr)
    else:
        report = serve_lines(service, sys.stdin, sys.stdout)
        print(f"drained: {report}", file=sys.stderr)
    # stdout is the response stream, so the observability epilogue goes to
    # stderr (drain already flushed the metrics document itself).
    if observation is not None:
        if args.metrics:
            print(f"wrote metrics to {args.metrics}", file=sys.stderr)
        if args.trace:
            observation.report(file=sys.stderr)
        observation.__exit__(None, None, None)
    return 0


def cmd_checkpoint(args) -> int:
    from repro.durability import DurabilityError, checkpoint_offline
    from repro.delta.errors import JournalError

    try:
        report = checkpoint_offline(args.database, args.journal)
    except (DurabilityError, JournalError) as error:
        print(f"checkpoint: {error}", file=sys.stderr)
        return 1
    print(
        f"checkpointed {args.journal}: generation {report['generation']}, "
        f"folded {report['folded_records']} records into {report['base']} "
        f"({report['base_bytes']} bytes, crc32 {report['base_crc32']}) "
        f"in {report['seconds']:.2f}s"
    )
    return 0


def cmd_backup(args) -> int:
    from repro.durability import DurabilityError, create_backup
    from repro.delta.errors import JournalError
    from repro.shard.errors import ManifestError

    if args.index and args.shards:
        print("backup: pass --index or --shards, not both", file=sys.stderr)
        return 2
    try:
        report = create_backup(
            args.output,
            database=args.database,
            journal=args.journal,
            index=args.index,
            shards=args.shards,
        )
    except (DurabilityError, JournalError, ManifestError) as error:
        print(f"backup: {error}", file=sys.stderr)
        return 1
    print(
        f"wrote {report['path']}: {report['files']} files, "
        f"{report['bytes']} bytes ({', '.join(report['roles'])})"
    )
    return 0


def cmd_restore(args) -> int:
    from repro.durability import DurabilityError, restore_backup

    try:
        report = restore_backup(args.backup, args.dest, force=args.force)
    except DurabilityError as error:
        print(f"restore: {error}", file=sys.stderr)
        return 1
    print(
        f"restored {args.backup} -> {report['path']}: "
        f"{report['files']} files ({', '.join(report['roles'])})"
    )
    return 0


def cmd_verify(args) -> int:
    from repro.durability import verify_deployment

    failures = 0
    for path in args.paths:
        report = verify_deployment(path)
        for checked in report["checked"]:
            print(f"ok: {checked}")
        for problem in report["problems"]:
            print(f"CORRUPT: {problem}", file=sys.stderr)
        failures += 0 if report["ok"] else 1
    if failures:
        print(f"verify: {failures} target(s) failed", file=sys.stderr)
        return 1
    print("verify: all checksums match")
    return 0


def cmd_bench_hotpath(args) -> int:
    from repro.bench.hotpath import (
        check_document,
        format_summary,
        run_hotpath,
        write_document,
    )

    document = run_hotpath(
        sizes=tuple(args.sizes), k=args.k, seed=args.seed,
        repeats=args.repeats, shard_count=args.shard_count,
        include_engines=not args.no_engines,
    )
    print(format_summary(document))
    if args.json:
        path = write_document(document, args.json)
        print(f"wrote {path}")
    problems = check_document(document)
    if problems:
        print("bitset hot path diverged from the set-based reference:",
              file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("all answers bit-identical to the set-based reference")
    return 0


#: The canonical reproduction set run by ``repro experiment --all``:
#: (driver name, dataset argument or None for the subcommand default).
ALL_EXPERIMENTS = (
    ("fig2a_disc_growth", "dud"),
    ("fig2b_baseline_scaling", "dud"),
    ("table4_quality", None),
    ("fig5ab_distance_cdf", None),
    ("fig5ce_distance_hist", None),
    ("fig5fh_fpr", "dud"),
    ("fig5ik_time_vs_theta", "dud"),
    ("fig5l6a_threshold_gap", "dud"),
    ("fig6bd_time_vs_size", "dud"),
    ("fig6eg_time_vs_k", "dud"),
    ("fig6h_time_vs_dims", "dud"),
    ("fig6i_zoom", None),
    ("fig6j_zoom_scaling", "dud"),
    ("fig6k_index_build", "dud"),
    ("fig6l_index_memory", "dud"),
    ("fig7_qualitative", None),
    ("ablation_vp_count", "dud"),
    ("ablation_branching", "dud"),
    ("ablation_bounds", "dud"),
    ("ablation_insert_degradation", "dud"),
    ("ablation_distance_quality", None),
)


def cmd_experiment(args) -> int:
    from repro.bench import BenchContext, print_and_save
    from repro.bench import distances as distances_module
    from repro.bench import experiments as experiments_module
    from repro.bench import scaling as scaling_module

    modules = (experiments_module, scaling_module, distances_module)

    if getattr(args, "all", False):
        failures = 0
        for name, dataset in ALL_EXPERIMENTS:
            print(f"--- running {name} ---")
            sub = argparse.Namespace(
                name=name, dataset=dataset or args.dataset,
                seed=args.seed, all=False,
            )
            try:
                failures += cmd_experiment(sub) != 0
            except Exception as error:  # keep going; summarize at the end
                print(f"{name} FAILED: {error}", file=sys.stderr)
                failures += 1
        print(f"completed {len(ALL_EXPERIMENTS) - failures}/"
              f"{len(ALL_EXPERIMENTS)} experiments; tables in results/")
        return 1 if failures else 0

    name = args.name
    if name is None:
        print("experiment: provide a driver name or --all", file=sys.stderr)
        return 2
    driver = next(
        (getattr(m, name) for m in modules if hasattr(m, name)), None
    )
    if driver is None:
        available = sorted(
            attr for module in modules
            for attr in vars(module)
            if attr.startswith(("fig", "table", "ablation"))
        )
        print(f"unknown experiment {name!r}; available:", file=sys.stderr)
        for item in available:
            print(f"  {item}", file=sys.stderr)
        return 2

    import inspect

    parameters = inspect.signature(driver).parameters
    first = next(iter(parameters))
    if first == "ctx":
        result = driver(BenchContext.create(args.dataset, seed=args.seed))
    elif first == "contexts":
        result = driver([
            BenchContext.create(dataset, seed=args.seed)
            for dataset in ("dud", "dblp", "amazon")
        ])
    elif first == "dataset":
        result = driver(args.dataset, seed=args.seed)
    else:
        result = driver()
    print_and_save(result)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k representative queries on graph databases "
                    "(SIGMOD'14 reproduction).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    p = subparsers.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("dataset", choices=("dud", "dblp", "amazon", "cascades", "callgraphs"))
    p.add_argument("--num-graphs", type=int, default=500)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = subparsers.add_parser("stats", help="summarize a database file")
    p.add_argument("database")
    p.add_argument("--num-pairs", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_stats)

    p = subparsers.add_parser("build-index", help="build and save an NB-Index")
    p.add_argument("database")
    p.add_argument("--output", required=True)
    p.add_argument("--vantage-points", type=int, default=20)
    p.add_argument("--branching", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="distance-engine processes (default: "
                        "$REPRO_ENGINE_WORKERS or serial)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="snapshot completed build stages into PATH so an "
                        "interrupted build can resume")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists "
                        "(bit-identical to an uninterrupted build)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write a repro.obs metrics document "
                        "(.prom → Prometheus text, else JSON)")
    p.add_argument("--trace", action="store_true",
                   help="print the counter/span report after the build")
    p.set_defaults(func=cmd_build_index)

    p = subparsers.add_parser(
        "shard-build",
        help="partition the database and build one NB-Index per shard",
    )
    p.add_argument("database")
    p.add_argument("--output", required=True, metavar="DIR",
                   help="bundle directory (manifest.json + shard-NNN.npz)")
    p.add_argument("--shards", type=int, required=True, metavar="S",
                   help="number of shards (1..num_graphs)")
    p.add_argument("--partitioner", choices=("hash", "clustering"),
                   default="hash",
                   help="hash: stateless content hash; clustering: "
                        "farthest-first pivots + nearest-pivot assignment")
    p.add_argument("--vantage-points", type=int, default=20)
    p.add_argument("--branching", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="distance-engine processes (default: "
                        "$REPRO_ENGINE_WORKERS or serial)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write a repro.obs metrics document "
                        "(.prom → Prometheus text, else JSON)")
    p.add_argument("--trace", action="store_true",
                   help="print the counter/span report after the build")
    p.set_defaults(func=cmd_shard_build)

    p = subparsers.add_parser("query", help="run a top-k representative query")
    p.add_argument("database")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--theta", type=float, default=None,
                   help="distance threshold (default: calibrated)")
    p.add_argument("--quantile", type=float, default=0.75,
                   help="relevance quantile (default: top quartile)")
    p.add_argument("--dims", type=int, nargs="*", default=None,
                   help="feature dims for relevance (default: all)")
    p.add_argument("--method", choices=("nbindex", "greedy"), default="nbindex")
    p.add_argument("--index", default=None, help="prebuilt index (.npz)")
    p.add_argument("--shards", default=None, metavar="MANIFEST",
                   help="shard-bundle manifest.json — run the query through "
                        "the scatter-gather coordinator (bit-identical "
                        "answers, conflicts with --index)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="mutation journal to replay over the database "
                        "before querying (opens the index through the "
                        "delta layer; needs --index or --shards)")
    p.add_argument("--vantage-points", type=int, default=20)
    p.add_argument("--branching", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="distance-engine processes (default: "
                        "$REPRO_ENGINE_WORKERS or serial)")
    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="wall-clock budget for exact edit distances; on "
                        "expiry they degrade to upper bounds and the "
                        "footer reports the degradation")
    p.add_argument("--cascade", nargs="?", const="full", default=None,
                   metavar="STAGES",
                   help="lower-bound filter cascade: 'full', 'default', "
                        "'none', or a comma-separated ordered stage list "
                        "(label_size,assignment,star,vantage); bare "
                        "--cascade means 'full'")
    p.add_argument("--epsilon", type=float, default=0.0, metavar="E",
                   help="approximate mode: relax bound comparisons to "
                        "(1−E)·θ, keeping the (1−1/e−E) guarantee "
                        "(default 0 = exact)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write a repro.obs metrics document "
                        "(.prom → Prometheus text, else JSON)")
    p.add_argument("--trace", action="store_true",
                   help="print the counter/span report after the query")
    p.set_defaults(func=cmd_query)

    p = subparsers.add_parser(
        "serve",
        help="run the long-lived query service (line-JSON on stdin or TCP)",
    )
    p.add_argument("database")
    p.add_argument("--index", default=None, metavar="PATH",
                   help="prebuilt index (.npz); also becomes the hot-reload "
                        "watch target unless --watch overrides it")
    p.add_argument("--shards", default=None, metavar="MANIFEST",
                   help="shard-bundle manifest.json to serve instead of a "
                        "single index; also the hot-reload watch target "
                        "(per-shard reuse on reload) unless --watch is given")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="listen on a TCP socket instead of stdin/stdout "
                        "(use :0 for an ephemeral port)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="worker threads executing queries (default: 2)")
    p.add_argument("--max-queue", type=int, default=16,
                   help="requests allowed to wait before shedding (default: 16)")
    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="default per-request budget; queue wait counts "
                        "against it (requests may override via timeout_ms)")
    p.add_argument("--drain-grace", type=float, default=5.0, metavar="S",
                   help="seconds to let in-flight work finish on shutdown")
    p.add_argument("--breaker-cooldown", type=float, default=5.0, metavar="S",
                   help="open-breaker cooldown before the half-open probe")
    p.add_argument("--mutable", action="store_true",
                   help="open the index through the delta layer so the "
                        "service accepts insert/delete/update/compact "
                        "protocol ops (disables hot reload; compaction "
                        "owns index swaps)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="durable mutation journal (with --mutable): "
                        "existing records replay on startup, new "
                        "mutations append with fsync")
    p.add_argument("--watch", default=None, metavar="PATH",
                   help="index artifact to watch for hot reload")
    p.add_argument("--reload-poll", type=float, default=1.0, metavar="S",
                   help="watch-path polling interval (default: 1s)")
    p.add_argument("--replicas", type=int, default=None, metavar="R",
                   help="with --shards: serve from a supervised process "
                        "cluster with R worker processes per shard "
                        "(failover, restart, degraded partial answers)")
    p.add_argument("--workers-per-shard", type=int, default=None,
                   metavar="N",
                   help="distance-engine processes inside each shard "
                        "worker (with --replicas; default: serial)")
    p.add_argument("--hedge-ms", type=float, default=None, metavar="MS",
                   help="with --replicas: hedge slow replica reads onto "
                        "a sibling after this floor delay (adaptive "
                        "p99-style EMA above it; default: off)")
    p.add_argument("--crash-log", default=None, metavar="PATH",
                   help="append per-query crash journal entries (JSON lines)")
    p.add_argument("--crash-log-max-bytes", type=int, default=None,
                   metavar="N",
                   help="rotate the crash log once it would exceed N bytes "
                        "(default: 1 MiB; 0 disables rotation)")
    p.add_argument("--crash-log-keep", type=int, default=3, metavar="N",
                   help="rotated crash-log files to keep (default: 3)")
    p.add_argument("--scrub-interval", type=float, default=None, metavar="S",
                   help="run the background scrubber every S seconds, "
                        "re-verifying artifact checksums and self-healing "
                        "from replicas/loaded objects (default: off; "
                        "one-shot 'scrub' protocol ops always work)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="distance-engine processes (default: "
                        "$REPRO_ENGINE_WORKERS or serial)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="flush a repro.obs metrics document on drain "
                        "(.prom → Prometheus text, else JSON)")
    p.add_argument("--trace", action="store_true",
                   help="print the counter/span report after drain")
    p.set_defaults(func=cmd_serve)

    p = subparsers.add_parser(
        "checkpoint",
        help="fold a mutation journal into a fresh generation-numbered "
             "base database (the journal shrinks to zero records)",
    )
    p.add_argument("database",
                   help="the original (generation-0) database file the "
                        "journal replays onto")
    p.add_argument("--journal", required=True, metavar="PATH",
                   help="the mutation journal to checkpoint")
    p.set_defaults(func=cmd_checkpoint)

    p = subparsers.add_parser(
        "backup",
        help="capture a crash-consistent, checksummed snapshot of a "
             "deployment into a fresh directory",
    )
    p.add_argument("output", help="backup directory (must not exist)")
    p.add_argument("--database", default=None, metavar="PATH",
                   help="database JSONL (required unless the journal is "
                        "checkpointed and pins its own base)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="mutation journal to include (its pinned base "
                        "supersedes --database for generation > 0)")
    p.add_argument("--index", default=None, metavar="PATH",
                   help="single-index .npz artifact to include")
    p.add_argument("--shards", default=None, metavar="MANIFEST",
                   help="shard bundle (manifest.json or its directory) — "
                        "the manifest plus every shard artifact")
    p.set_defaults(func=cmd_backup)

    p = subparsers.add_parser(
        "restore",
        help="verify every checksum in a backup, then install it "
             "(atomically into a fresh directory, or --force in place)",
    )
    p.add_argument("backup", help="backup directory written by 'repro backup'")
    p.add_argument("dest", help="destination directory")
    p.add_argument("--force", action="store_true",
                   help="overwrite an existing destination in place "
                        "(per-file atomic replaces, journal last)")
    p.set_defaults(func=cmd_restore)

    p = subparsers.add_parser(
        "verify",
        help="offline checksum audit of any repro artifact: backup dir, "
             "shard bundle, index .npz, journal (+ pinned base), database",
    )
    p.add_argument("paths", nargs="+", help="artifact path(s) to audit")
    p.set_defaults(func=cmd_verify)

    p = subparsers.add_parser(
        "bench-hotpath",
        help="dual-run identity smoke: bitset hot path vs set-based "
             "reference (greedy, NB-Index S=1, sharded S=4)",
    )
    p.add_argument("--sizes", type=int, nargs="+", default=[500],
                   help="database sizes to sweep (default: 500)")
    p.add_argument("--k", type=int, default=16)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--repeats", type=int, default=1,
                   help="timing repeats; identity needs only 1 (default)")
    p.add_argument("--shard-count", type=int, default=4)
    p.add_argument("--no-engines", action="store_true",
                   help="skip the NB-Index / sharded engine rows "
                        "(greedy-only smoke)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the benchmark document to PATH")
    p.set_defaults(func=cmd_bench_hotpath)

    p = subparsers.add_parser("experiment", help="run a paper experiment driver")
    p.add_argument("name", nargs="?", default=None,
                   help="driver name, e.g. fig2a_disc_growth")
    p.add_argument("--all", action="store_true",
                   help="run the full reproduction set")
    p.add_argument("--dataset", default="dud")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_experiment)

    return parser


def main(argv=None) -> int:
    obs.maybe_enable_from_env()
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

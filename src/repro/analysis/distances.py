"""Distance-distribution analysis (Figs. 5(a)–(e) of the paper).

The paper uses the pairwise-distance CDF of each dataset to calibrate θ
and the π̂ ladder, and the distance histogram's Gaussian fit to size the
vantage-point set.  This module computes those artifacts from sampled
pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass
class DistanceDistribution:
    """Sampled pairwise distances plus derived summaries."""

    samples: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std())

    @property
    def diameter_estimate(self) -> float:
        """Largest sampled distance — a lower bound on the true diameter,
        used as the ``mθ`` of the uniform FPR model (Eq. 12)."""
        return float(self.samples.max())

    def cdf(self, thetas) -> np.ndarray:
        """Cumulative distribution F(θ) at the given thresholds (Fig. 5(a–b))."""
        sorted_samples = np.sort(self.samples)
        thetas = np.asarray(list(thetas), dtype=float)
        return np.searchsorted(sorted_samples, thetas, side="right") / len(
            sorted_samples
        )

    def histogram(self, bins: int = 30) -> tuple[np.ndarray, np.ndarray]:
        """Density histogram (Fig. 5(c–e)): (bin_centers, densities)."""
        densities, edges = np.histogram(self.samples, bins=bins, density=True)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, densities

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples, q))


def sample_distances(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    num_pairs: int = 2000,
    rng=None,
    engine=None,
) -> DistanceDistribution:
    """Sample uniformly random distinct pairs and their distances.

    Pairs are drawn first (the draw sequence matches the historical
    interleaved loop), so an ``engine`` can evaluate them as one batch
    with identical samples.
    """
    require(len(database) >= 2, "need at least two graphs")
    from repro.index.pivec import sample_distinct_pairs

    rng = ensure_rng(rng)
    pairs = sample_distinct_pairs(len(database), num_pairs, rng)
    if engine is not None:
        samples = np.asarray(
            engine.pairs([(database[i], database[j]) for i, j in pairs])
        )
    else:
        samples = np.array(
            [float(distance(database[i], database[j])) for i, j in pairs]
        )
    return DistanceDistribution(samples)

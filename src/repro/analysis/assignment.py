"""Assigning relevant graphs to their representatives.

After a top-k representative query, analysts want to know *which* graphs
each exemplar stands for — the "structural grouping" view the paper's
Fig. 7 narrates.  :func:`assign_to_representatives` partitions the covered
relevant set by nearest answer-set member (within θ), and reports the
uncovered remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import QueryResult
from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase

_EPS = 1e-9


@dataclass
class RepresentativeAssignment:
    """The partition of the relevant set induced by an answer."""

    #: exemplar id → sorted ids of the relevant graphs it represents
    clusters: dict[int, list[int]]
    #: relevant ids beyond θ of every exemplar
    uncovered: list[int]
    theta: float

    @property
    def cluster_sizes(self) -> dict[int, int]:
        return {gid: len(members) for gid, members in self.clusters.items()}

    def representative_of(self, gid: int) -> int | None:
        """The exemplar representing ``gid`` (None if uncovered)."""
        for exemplar, members in self.clusters.items():
            if gid in members:
                return exemplar
        return None


def assign_to_representatives(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    result: QueryResult,
) -> RepresentativeAssignment:
    """Partition the relevant set around the answer's exemplars.

    Each relevant graph within θ of at least one exemplar is assigned to
    its *nearest* exemplar (an exemplar is always assigned to itself);
    everything farther than θ from all exemplars lands in ``uncovered``.
    Costs ``O(|L_q| · k)`` distance evaluations.
    """
    relevant = [int(i) for i in database.relevant_indices(query_fn)]
    answer = [int(a) for a in result.answer]
    clusters: dict[int, list[int]] = {gid: [] for gid in answer}
    uncovered: list[int] = []
    for gid in relevant:
        if gid in clusters:
            clusters[gid].append(gid)
            continue
        best_exemplar = None
        best_distance = None
        for exemplar in answer:
            value = float(distance(database[gid], database[exemplar]))
            if value <= result.theta + _EPS:
                if best_distance is None or value < best_distance:
                    best_distance = value
                    best_exemplar = exemplar
        if best_exemplar is None:
            uncovered.append(gid)
        else:
            clusters[best_exemplar].append(gid)
    return RepresentativeAssignment(
        clusters={gid: sorted(members) for gid, members in clusters.items()},
        uncovered=sorted(uncovered),
        theta=result.theta,
    )

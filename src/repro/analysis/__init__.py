"""Analysis utilities: distance distributions and answer-set quality."""

from repro.analysis.assignment import RepresentativeAssignment, assign_to_representatives
from repro.analysis.distances import DistanceDistribution, sample_distances
from repro.analysis.metrics import evaluate_answer, evaluate_answers

__all__ = [
    "assign_to_representatives",
    "RepresentativeAssignment",
    "DistanceDistribution",
    "sample_distances",
    "evaluate_answer",
    "evaluate_answers",
]

"""Answer-set quality metrics (Table 4 and Sec. 8.3.1).

Two quality measures drive the paper's efficacy comparison:

* **compression ratio** ``CR = |N_θ(A)| / |A|`` — relevant objects
  represented per exemplar;
* **representative power** ``π(A)`` — the covered fraction of ``L_q``.

Both are *model-independent*: they evaluate any answer set (REP, DisC,
DIV, traditional top-k) against the same θ-neighborhood semantics, which
is how Table 4 compares engines whose internal objectives differ.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.representative import all_theta_neighborhoods, coverage
from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase


def evaluate_answer(
    answer: Iterable[int],
    neighborhoods: Mapping[int, frozenset[int]],
    num_relevant: int,
) -> dict:
    """CR and π of an arbitrary answer set under given θ-neighborhoods.

    Answer entries without a neighborhood entry (non-relevant picks, which
    can occur for traditional top-k) contribute no coverage but still count
    toward |A|.
    """
    answer = [int(a) for a in answer]
    known = [gid for gid in answer if gid in neighborhoods]
    covered = coverage(neighborhoods, known)
    return {
        "answer_size": len(answer),
        "covered": len(covered),
        "compression_ratio": len(covered) / len(answer) if answer else 0.0,
        "pi": len(covered) / num_relevant if num_relevant else 0.0,
    }


def evaluate_answers(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    answers: Mapping[str, Sequence[int]],
) -> dict[str, dict]:
    """Evaluate several engines' answers under one neighborhood computation.

    Returns ``{engine_name: {answer_size, covered, compression_ratio, pi}}``.
    """
    relevant = [int(i) for i in database.relevant_indices(query_fn)]
    neighborhoods = all_theta_neighborhoods(database, distance, relevant, theta)
    return {
        name: evaluate_answer(answer, neighborhoods, len(relevant))
        for name, answer in answers.items()
    }

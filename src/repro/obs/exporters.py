"""Exporters: the metrics document, JSON, and Prometheus text format.

The *metrics document* is the single serialized artifact of an observed
run: a schema-tagged dict bundling the registry snapshot and the finished
span tree.  ``repro query --metrics out.json`` writes it, the benchmark
harness writes one sidecar per experiment, and
``scripts/validate_metrics.py`` checks it against
``scripts/metrics_schema.json`` in CI.

Prometheus output follows the text exposition format: counters and gauges
verbatim, timers as ``summary`` (``_count``/``_sum``), histograms as
cumulative ``_bucket{le=...}`` series ending in ``+Inf``.  Metric names are
sanitized (dots become underscores) and prefixed ``repro_``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

#: Schema identifier stamped into every exported document.
SCHEMA = "repro.obs/v1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metrics_document(include_spans: bool = True) -> dict:
    """The current registry snapshot + span tree as one plain dict."""
    from repro import obs

    return {
        "schema": SCHEMA,
        "metrics": obs.get_registry().snapshot(),
        "spans": obs.get_tracer().snapshot() if include_spans else [],
    }


def to_json(document: dict | None = None, include_spans: bool = True) -> str:
    """Serialize a metrics document (default: the live one) as JSON."""
    if document is None:
        document = metrics_document(include_spans=include_spans)
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.10g}"
    return str(value)


def to_prometheus(metrics: dict | None = None) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    if metrics is None:
        from repro import obs

        metrics = obs.get_registry().snapshot()
    lines: list[str] = []
    for name in sorted(metrics.get("counters", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(metrics['counters'][name])}")
    for name in sorted(metrics.get("gauges", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(metrics['gauges'][name])}")
    for name in sorted(metrics.get("timers", {})):
        metric = _metric_name(name)
        entry = metrics["timers"][name]
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_format_value(entry['count'])}")
        lines.append(f"{metric}_sum {_format_value(entry['sum'] if 'sum' in entry else entry['total'])}")
    for name in sorted(metrics.get("histograms", {})):
        metric = _metric_name(name)
        entry = metrics["histograms"][name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{_format_value(cumulative)}"
            )
        cumulative += entry["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {_format_value(cumulative)}')
        lines.append(f"{metric}_sum {_format_value(entry['sum'])}")
        lines.append(f"{metric}_count {_format_value(entry['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics(path, include_spans: bool = True) -> Path:
    """Write the live metrics to ``path``.

    The format follows the suffix: ``.prom`` gets Prometheus text, anything
    else the JSON metrics document.
    """
    path = Path(path)
    if path.suffix == ".prom":
        path.write_text(to_prometheus())
    else:
        path.write_text(to_json(include_spans=include_spans))
    return path

"""Span-based tracing with parent/child nesting.

A *span* is a named, attributed, timed region of execution::

    with obs.span("nbtree.build", n=len(graphs)) as sp:
        ...
        sp.set(nodes=tree.num_nodes)

Spans opened while another span is active on the same thread become its
children, so an index build traces as one ``index.build`` root with
``index.vantage_select`` / ``index.embed`` / ``index.tree_build`` children.
Each thread keeps its own open-span stack (``threading.local``); finished
root spans land in a lock-protected collector shared by all threads, which
is what the exporters read.

Finished spans are plain dicts — ``{"name", "seconds", "attrs",
"children"}`` — so they serialize as-is and can travel across process
boundaries: :meth:`Tracer.attach` grafts span records produced in a pool
worker under the caller's currently open span (see
:mod:`repro.engine.pool`).

Like the metrics registry, the default tracer is a no-op
(:class:`NullTracer`): ``span()`` hands back a shared do-nothing context
manager and the collector stays empty.
"""

from __future__ import annotations

import threading
import time


class _NullSpan:
    """Do-nothing span (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The off-switch tracer: no spans are ever recorded."""

    enabled = False
    __slots__ = ()

    def span(self, name, **attrs):
        return _NULL_SPAN

    def attach(self, spans, **attrs):
        pass

    def snapshot(self) -> list:
        return []

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


class Span:
    """One open span; finishes (and records itself) when the block exits."""

    __slots__ = ("_tracer", "name", "attrs", "children", "_started", "seconds")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.children: list[dict] = []
        self.seconds = 0.0

    def set(self, **attrs) -> None:
        """Add or overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.seconds = time.perf_counter() - self._started
        if exc is not None:
            self.attrs.setdefault("error", repr(exc))
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": list(self.children),
        }


class Tracer:
    """Per-thread span stacks feeding one thread-safe collector."""

    enabled = True

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[dict] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = span.to_dict()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self._roots.append(record)

    def attach(self, spans, **attrs) -> None:
        """Graft foreign span records (dicts) into the current position.

        Extra ``attrs`` are stamped onto each record — e.g. the worker pid
        when merging spans shipped back from a process-pool worker.  With a
        span open on this thread the records become its children; otherwise
        they are collected as roots.
        """
        records = []
        for record in spans:
            if attrs:
                record = dict(record)
                record["attrs"] = {**record.get("attrs", {}), **attrs}
            records.append(record)
        if not records:
            return
        stack = self._stack()
        if stack:
            stack[-1].children.extend(records)
        else:
            with self._lock:
                self._roots.extend(records)

    def snapshot(self) -> list[dict]:
        """Finished root spans (nested children inside), oldest first."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()

    def __repr__(self) -> str:
        with self._lock:
            return f"Tracer(roots={len(self._roots)})"

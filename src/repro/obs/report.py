"""Human-readable rendering of an observed run.

:func:`report` prints the registry's counters/gauges/timers/histograms as
aligned text plus the span tree with per-span wall times — the quick look
at where an index build or a query spent its time and its distance calls,
without leaving the terminal.
"""

from __future__ import annotations

import sys


def _format_number(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={_format_number(v)}" for k, v in attrs.items())
    return f"  [{inner}]"


def _render_span(record: dict, indent: int, lines: list[str]) -> None:
    lines.append(
        f"{'  ' * indent}- {record['name']}  {record['seconds']:.4f}s"
        f"{_format_attrs(record.get('attrs', {}))}"
    )
    for child in record.get("children", []):
        _render_span(child, indent + 1, lines)


def render(document: dict | None = None) -> str:
    """Render a metrics document (default: the live one) as text."""
    from repro.obs.exporters import metrics_document

    if document is None:
        document = metrics_document()
    metrics = document.get("metrics", {})
    lines: list[str] = ["== observability report =="]

    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {_format_number(counters[name])}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(width)}  {_format_number(gauges[name])}")
    timers = metrics.get("timers", {})
    if timers:
        lines.append("timers:")
        width = max(len(name) for name in timers)
        for name in sorted(timers):
            entry = timers[name]
            lines.append(
                f"  {name.ljust(width)}  n={entry['count']} "
                f"total={entry['total']:.4f}s mean={entry['mean']:.4f}s "
                f"max={entry['max']:.4f}s"
            )
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            entry = histograms[name]
            bounds = [_format_number(b) for b in entry["buckets"]] + ["inf"]
            cells = ", ".join(
                f"≤{bound}: {count}"
                for bound, count in zip(bounds, entry["counts"])
                if count
            )
            lines.append(
                f"  {name}  n={entry['count']} sum={_format_number(entry['sum'])}"
            )
            if cells:
                lines.append(f"    {cells}")

    spans = document.get("spans", [])
    if spans:
        lines.append("spans:")
        for record in spans:
            _render_span(record, 1, lines)

    if len(lines) == 1:
        lines.append("(nothing recorded — is observability enabled?)")
    return "\n".join(lines) + "\n"


def report(document: dict | None = None, file=None) -> str:
    """Pretty-print the report (default: to stdout); returns the text."""
    text = render(document)
    print(text, end="", file=file if file is not None else sys.stdout)
    return text

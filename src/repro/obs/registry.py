"""Metric primitives: counters, gauges, timers and histograms.

Two implementations share one duck-typed interface.  :class:`MetricsRegistry`
records everything under a lock (instrumented code runs in the benchmark
harness's threads and in pool workers); :class:`NullRegistry` — the default —
turns every recording call into an immediate no-op, so instrumentation left
in hot paths costs one attribute lookup and an empty call.  Consumers never
branch on "is observability on": they call the same methods either way, and
:func:`repro.obs.enable` swaps the registry underneath them.

The value vocabulary is deliberately small and Prometheus-shaped:

* **counter** — monotonically increasing total (``engine.evaluations``);
* **gauge** — last-write-wins sample (``engine.cache_size``);
* **timer** — an observation stream summarized as count/total/min/max,
  recorded via ``with registry.timer("engine.pool.map_seconds"): ...`` or
  :meth:`MetricsRegistry.observe`;
* **histogram** — counts over *explicit* bucket upper bounds, with an
  implicit overflow bucket (``engine.batch_size``).

Snapshots are plain JSON-safe dicts (no ``inf``, no custom types), which is
also the merge format: :meth:`MetricsRegistry.merge` folds a snapshot from
another registry — e.g. one shipped back from a process-pool worker — into
this one.
"""

from __future__ import annotations

import bisect
import threading
import time

#: Default bucket bounds for size-like histograms (batch sizes, candidate
#: counts).  An overflow bucket is always appended.
SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096)

#: Default bucket bounds for duration-like histograms, in seconds.
TIME_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


class _NullTimer:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


class NullRegistry:
    """The off-switch: every method is a no-op, every snapshot empty.

    This is the registry installed by default, so the instrumented hot
    paths pay only for the call dispatch (verified by
    ``benchmarks/bench_obs_overhead.py``).
    """

    enabled = False
    __slots__ = ()

    def counter(self, name, value=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, seconds):
        pass

    def histogram(self, name, value, buckets=SIZE_BUCKETS):
        pass

    def timer(self, name):
        return _NULL_TIMER

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}

    def stats(self) -> dict:
        return self.snapshot()

    def merge(self, snapshot) -> None:
        pass

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRegistry()"


class _Timer:
    """Times a ``with`` block into ``registry.observe(name, seconds)``."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._registry.observe(self._name, time.perf_counter() - self._started)
        return False


class MetricsRegistry:
    """Thread-safe in-memory metrics store (the on-switch)."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max]
        self._timers: dict[str, list[float]] = {}
        # name -> {"buckets": tuple, "counts": list (len(buckets)+1 with
        # overflow), "sum": float, "count": int}
        self._histograms: dict[str, dict] = {}

    # -- recording -----------------------------------------------------
    def counter(self, name: str, value=1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [1, seconds, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                entry[2] = min(entry[2], seconds)
                entry[3] = max(entry[3], seconds)

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def histogram(self, name: str, value, buckets=SIZE_BUCKETS) -> None:
        with self._lock:
            entry = self._histograms.get(name)
            if entry is None:
                bounds = tuple(float(b) for b in buckets)
                entry = {
                    "buckets": bounds,
                    "counts": [0] * (len(bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._histograms[name] = entry
            position = bisect.bisect_left(entry["buckets"], value)
            entry["counts"][position] += 1
            entry["sum"] += value
            entry["count"] += 1

    # -- snapshots & merging -------------------------------------------
    def snapshot(self) -> dict:
        """Plain JSON-safe dict of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "count": entry[0],
                        "total": entry[1],
                        "min": entry[2],
                        "max": entry[3],
                        "mean": entry[1] / entry[0] if entry[0] else 0.0,
                    }
                    for name, entry in self._timers.items()
                },
                "histograms": {
                    name: {
                        "buckets": list(entry["buckets"]),
                        "counts": list(entry["counts"]),
                        "sum": entry["sum"],
                        "count": entry["count"],
                    }
                    for name, entry in self._histograms.items()
                },
            }

    def stats(self) -> dict:
        """Statable protocol: the snapshot."""
        return self.snapshot()

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters, timer streams and same-bucket histograms add; gauges are
        last-write-wins.  This is how per-worker registries from
        :mod:`repro.engine.pool` are aggregated on join.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            with self._lock:
                ours = self._timers.get(name)
                if ours is None:
                    self._timers[name] = [
                        entry["count"], entry["total"], entry["min"], entry["max"],
                    ]
                else:
                    ours[0] += entry["count"]
                    ours[1] += entry["total"]
                    ours[2] = min(ours[2], entry["min"])
                    ours[3] = max(ours[3], entry["max"])
        for name, entry in snapshot.get("histograms", {}).items():
            with self._lock:
                ours = self._histograms.get(name)
                bounds = tuple(float(b) for b in entry["buckets"])
                if ours is None:
                    self._histograms[name] = {
                        "buckets": bounds,
                        "counts": list(entry["counts"]),
                        "sum": entry["sum"],
                        "count": entry["count"],
                    }
                    continue
                if ours["buckets"] == bounds:
                    ours["counts"] = [
                        a + b for a, b in zip(ours["counts"], entry["counts"])
                    ]
                else:  # mismatched layouts: keep totals honest at least
                    ours["counts"][-1] += entry["count"]
                ours["sum"] += entry["sum"]
                ours["count"] += entry["count"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, timers={len(self._timers)}, "
                f"histograms={len(self._histograms)})"
            )

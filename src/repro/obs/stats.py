"""The :class:`Statable` protocol — one shape for every stats surface.

Historically the library grew three inconsistent ways to ask "how much
work happened": ``NBIndex.distance_calls``/``memory_bytes`` (property +
method), ``CountingDistance.stats()``/``CachingDistance.stats()`` (dicts),
and :class:`~repro.core.results.QueryStats` (a dataclass).  They are now
unified: anything observable implements ``stats() -> dict`` of plain,
JSON-safe values, and :func:`collect_stats` gathers several components
into one nested document.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Statable(Protocol):
    """Anything that reports its work as a plain dict.

    Implementors: :class:`~repro.engine.DistanceEngine`,
    :class:`~repro.ged.metric.CountingDistance`,
    :class:`~repro.ged.metric.CachingDistance`,
    :class:`~repro.index.nbindex.NBIndex`,
    :class:`~repro.core.results.QueryStats`,
    :class:`~repro.obs.registry.MetricsRegistry`, and the M-/C-tree
    baselines.  The dict must contain only JSON-serializable values
    (numbers, strings, lists, nested dicts).
    """

    def stats(self) -> dict: ...


def collect_stats(**components) -> dict:
    """Snapshot several Statable components into one nested dict.

    ``None`` components are skipped, so callers can pass optional layers
    unconditionally::

        collect_stats(engine=index.engine, index=index, query=result.stats)
    """
    collected = {}
    for name, component in components.items():
        if component is None:
            continue
        collected[name] = dict(component.stats())
    return collected

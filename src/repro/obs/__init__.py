"""repro.obs — zero-dependency observability for the whole library.

One module-level switch controls a process-wide
:class:`~repro.obs.registry.MetricsRegistry` (counters, gauges, timers,
histograms with explicit buckets) and a
:class:`~repro.obs.tracing.Tracer` (nested spans).  Instrumented code —
the distance engine, the GED metrics, index build/query, the greedy
algorithms — always calls the hot-path helpers below; with observability
*off* (the default) those helpers hit no-op implementations and cost
essentially nothing (guarded by ``benchmarks/bench_obs_overhead.py``).

Typical usage::

    import repro

    with repro.observe() as run:          # flips the global switch on
        index = repro.NBIndex.build(database, distance, seed=7)
        result = index.query(q, theta=8.0, k=10)
        run.report()                      # pretty-print counters + spans
        run.write("metrics.json")         # JSON document (spans included)
        run.write("metrics.prom")         # Prometheus text format

or from the CLI: ``repro query db.jsonl --metrics out.json --trace``.

Process-pool workers get their own registry (installed at worker init by
:mod:`repro.engine.pool`); each task ships its delta back with the result
and the parent merges it here (:func:`merge_state`), so pool fan-out is
invisible in the aggregated numbers and worker chunk spans appear nested
under the batch that dispatched them.

Setting the ``REPRO_OBS`` environment variable to ``1`` enables
observability at CLI/benchmark startup (:func:`maybe_enable_from_env`),
which is how every benchmark script emits a metrics sidecar without code
changes.
"""

from __future__ import annotations

import os

from repro.obs.exporters import (
    metrics_document,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.obs.registry import (
    SIZE_BUCKETS,
    TIME_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.report import render, report
from repro.obs.stats import Statable, collect_stats
from repro.obs.tracing import NullTracer, Tracer

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "Statable",
    "collect_stats",
    "SIZE_BUCKETS",
    "TIME_BUCKETS",
    "enable",
    "disable",
    "enabled",
    "observe",
    "Observation",
    "get_registry",
    "get_tracer",
    "reset",
    "counter",
    "gauge",
    "observe_time",
    "histogram",
    "timer",
    "span",
    "export_state",
    "merge_state",
    "metrics_document",
    "to_json",
    "to_prometheus",
    "write_metrics",
    "render",
    "report",
    "maybe_enable_from_env",
]

_registry = NullRegistry()
_tracer = NullTracer()


# ---------------------------------------------------------------------------
# Switch
# ---------------------------------------------------------------------------
def get_registry():
    """The active registry (:class:`NullRegistry` when observability is off)."""
    return _registry


def get_tracer():
    """The active tracer (:class:`NullTracer` when observability is off)."""
    return _tracer


def enabled() -> bool:
    """Whether observability is currently recording."""
    return _registry.enabled


def enable(fresh: bool = False) -> MetricsRegistry:
    """Install a recording registry + tracer; returns the registry.

    Idempotent: an already-enabled registry is kept (its data intact)
    unless ``fresh=True``, which always starts empty — pool workers use
    that to shed state inherited across ``fork``.
    """
    global _registry, _tracer
    if fresh or not _registry.enabled:
        _registry = MetricsRegistry()
        _tracer = Tracer()
    return _registry


def disable() -> None:
    """Return to the no-op registry/tracer (recorded data is dropped)."""
    global _registry, _tracer
    _registry = NullRegistry()
    _tracer = NullTracer()


def reset() -> None:
    """Zero the active registry and tracer (keeps observability on)."""
    _registry.reset()
    _tracer.reset()


def maybe_enable_from_env() -> bool:
    """Enable observability when ``REPRO_OBS`` is set truthy; returns it."""
    if os.environ.get("REPRO_OBS", "").strip().lower() in {"1", "true", "yes", "on"}:
        enable()
        return True
    return False


class Observation:
    """Handle for one observed region; also a context manager.

    Created by :func:`observe` (re-exported as :func:`repro.observe`).
    Exiting the ``with`` block restores whatever registry/tracer were
    active before, so observations nest cleanly in tests.
    """

    def __init__(self, registry, tracer, previous):
        self.registry = registry
        self.tracer = tracer
        self._previous = previous

    def __enter__(self) -> "Observation":
        return self

    def __exit__(self, *exc) -> None:
        global _registry, _tracer
        _registry, _tracer = self._previous

    def stats(self) -> dict:
        """Statable protocol: the registry snapshot."""
        return self.registry.snapshot()

    def spans(self) -> list[dict]:
        return self.tracer.snapshot()

    def document(self, include_spans: bool = True) -> dict:
        return {
            "schema": "repro.obs/v1",
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot() if include_spans else [],
        }

    def write(self, path, include_spans: bool = True):
        """Write metrics to ``path`` (.prom → Prometheus, else JSON)."""
        from pathlib import Path

        from repro.obs.exporters import to_json as _to_json

        path = Path(path)
        if path.suffix == ".prom":
            path.write_text(to_prometheus(self.registry.snapshot()))
        else:
            path.write_text(_to_json(self.document(include_spans=include_spans)))
        return path

    def report(self, file=None) -> str:
        return report(self.document(), file=file)

    def __repr__(self) -> str:
        return f"Observation(registry={self.registry!r})"


def observe(on: bool = True) -> Observation:
    """Flip observability on (or off) and return the session handle.

    The single public entry point re-exported as ``repro.observe()``.  The
    handle restores the previous state when used as a context manager.
    """
    previous = (_registry, _tracer)
    if on:
        enable()
    else:
        disable()
    return Observation(_registry, _tracer, previous)


# ---------------------------------------------------------------------------
# Hot-path helpers (always safe to call; no-ops when disabled)
# ---------------------------------------------------------------------------
def counter(name: str, value=1) -> None:
    _registry.counter(name, value)


def gauge(name: str, value) -> None:
    _registry.gauge(name, value)


def observe_time(name: str, seconds: float) -> None:
    _registry.observe(name, seconds)


def histogram(name: str, value, buckets=SIZE_BUCKETS) -> None:
    _registry.histogram(name, value, buckets)


def timer(name: str):
    return _registry.timer(name)


def span(name: str, **attrs):
    return _tracer.span(name, **attrs)


# ---------------------------------------------------------------------------
# Cross-process aggregation (pool workers)
# ---------------------------------------------------------------------------
def export_state(reset_after: bool = False) -> dict:
    """Snapshot the registry + spans, optionally resetting (worker deltas)."""
    state = {"metrics": _registry.snapshot(), "spans": _tracer.snapshot()}
    if reset_after:
        reset()
    return state


def merge_state(state: dict, **span_attrs) -> None:
    """Fold an :func:`export_state` payload from another process in.

    Counters/timers/histograms add into the active registry; the foreign
    spans are attached under the currently open span (with ``span_attrs``
    stamped on, e.g. ``worker_pid``).
    """
    if not _registry.enabled or not state:
        return
    _registry.merge(state.get("metrics", {}))
    _tracer.attach(state.get("spans", []), **span_attrs)

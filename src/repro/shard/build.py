"""Build a sharded NB-Index bundle: partition, build per shard, manifest.

Each shard gets a fully independent NB-Index (its own vantage embedding,
NB-Tree and π̂ columns) over the *sub-database* of its member graphs,
persisted with the ordinary checksummed
:func:`~repro.index.persistence.save_index` artifact — a shard file is
byte-compatible with a single-index file and loads with the same code.

Two things are deliberately global:

* the **threshold ladder** is computed once over the whole database and
  passed to every shard build, so π̂ bounds of different shards are
  evaluated at identical rungs and the coordinator's off-ladder check has
  one answer for the whole bundle;
* per-shard **build seeds** are spawned from one root
  :class:`numpy.random.SeedSequence`, so the bundle is a deterministic
  function of (database, distance, S, partitioner, seed) and shard builds
  are statistically independent.
"""

from __future__ import annotations

import time
import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.graphs.database import GraphDatabase
from repro.index.nbindex import NBIndex
from repro.index.persistence import save_index
from repro.index.pivec import ThresholdLadder, choose_thresholds
from repro.shard.manifest import ShardEntry, ShardManifest, database_checksum
from repro.shard.partition import get_partitioner
from repro.utils.validation import require

MANIFEST_NAME = "manifest.json"


def build_shards(
    database: GraphDatabase,
    distance,
    *,
    num_shards: int,
    out_dir: str | Path,
    partitioner: str = "hash",
    num_vantage_points: int = 20,
    branching: int = 8,
    thresholds: ThresholdLadder | None = None,
    seed: int = 0,
    workers: int | None = None,
) -> Path:
    """Build S per-shard indexes plus a manifest under ``out_dir``.

    Returns the manifest path.  ``thresholds`` overrides the global ladder
    (otherwise it is derived from whole-database distance samples exactly
    as :meth:`NBIndex.build` would); ``workers`` configures the engines
    used during the build — the artifacts are identical for any count.
    """
    require(len(database) > 0, "cannot shard an empty database")
    require(
        1 <= num_shards <= len(database),
        f"num_shards {num_shards} not in 1..{len(database)}",
    )
    from repro.engine import DistanceEngine

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    started = time.perf_counter()
    with obs.span(
        "shard.build", n=len(database), shards=num_shards,
        partitioner=partitioner,
    ) as build_span:
        engine = DistanceEngine(
            distance, workers=workers, graphs=database.graphs
        )
        if thresholds is None:
            if len(database) < 2:
                thresholds = ThresholdLadder([1.0])
            else:
                with obs.span("shard.ladder"):
                    thresholds = choose_thresholds(
                        database.graphs, engine, count=10,
                        num_pairs=min(1000, len(database) * 4),
                        rng=np.random.default_rng(seed), engine=engine,
                    )

        with obs.span("shard.partition", strategy=partitioner):
            partition = get_partitioner(partitioner).assign(
                database, num_shards, seed=seed, engine=engine
            )

        shard_seeds = np.random.SeedSequence(seed).spawn(num_shards)
        entries: list[ShardEntry] = []
        shard_build_seconds: list[float] = []
        for shard_id in range(num_shards):
            members = partition.members(shard_id)
            sub = database.subset([int(i) for i in members])
            with obs.span(
                "shard.build_one", shard=shard_id, n=len(sub)
            ), obs.timer("shard.build_one_seconds"):
                shard_started = time.perf_counter()
                index = NBIndex.build(
                    sub, distance,
                    num_vantage_points=min(num_vantage_points, len(sub)),
                    branching=branching,
                    thresholds=thresholds,
                    seed=np.random.default_rng(shard_seeds[shard_id]),
                    workers=workers,
                )
                shard_build_seconds.append(time.perf_counter() - shard_started)
            artifact = out_dir / f"shard-{shard_id:03d}.npz"
            save_index(index, artifact)
            if index.engine is not None:
                index.engine.invalidate_pool()
            entries.append(
                ShardEntry(
                    shard_id=shard_id,
                    path=artifact.name,
                    checksum=zlib.crc32(artifact.read_bytes()),
                    num_graphs=len(sub),
                )
            )
            obs.counter("shard.builds")

        manifest = ShardManifest(
            num_shards=num_shards,
            num_graphs=len(database),
            partitioner=partitioner,
            seed=seed,
            ladder=tuple(thresholds.values),
            assignments=partition.assignments,
            database_checksum=database_checksum(database),
            shards=tuple(entries),
            build={
                "num_vantage_points": num_vantage_points,
                "branching": branching,
                "shard_seconds": [round(s, 6) for s in shard_build_seconds],
                "total_seconds": round(time.perf_counter() - started, 6),
            },
        )
        manifest_path = out_dir / MANIFEST_NAME
        manifest.save(manifest_path)
        build_span.set(seconds=round(time.perf_counter() - started, 3))
        engine.invalidate_pool()
    obs.observe_time("shard.build_seconds", time.perf_counter() - started)
    return manifest_path

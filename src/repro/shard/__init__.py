"""Sharded NB-Index: partitioned builds + scatter-gather distributed greedy.

Partition a database into S shards (:mod:`repro.shard.partition`), build an
independent NB-Index per shard behind a checksummed manifest
(:func:`build_shards`), and query the bundle through a coordinator
(:class:`ShardedIndex` / :mod:`repro.shard.coordinator`) whose answers are
bit-identical to the single-index engine for any S and any partitioner.
"""

from repro.shard.build import build_shards
from repro.shard.coordinator import ShardedQuerySession
from repro.shard.errors import ManifestError, PartitionError, ShardError
from repro.shard.frontier import ShardFrontier
from repro.shard.manifest import ShardEntry, ShardManifest
from repro.shard.partition import (
    PARTITIONERS,
    ClusteringPartitioner,
    HashPartitioner,
    Partition,
    get_partitioner,
)
from repro.shard.sharded import ShardedIndex

__all__ = [
    "build_shards",
    "ShardedIndex",
    "ShardedQuerySession",
    "ShardFrontier",
    "ShardManifest",
    "ShardEntry",
    "Partition",
    "HashPartitioner",
    "ClusteringPartitioner",
    "PARTITIONERS",
    "get_partitioner",
    "ShardError",
    "PartitionError",
    "ManifestError",
]

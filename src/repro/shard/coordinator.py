"""The scatter-gather distributed greedy coordinator.

One coordinator drives the global lazy best-first loop of Algorithm 2 over
S independent shard frontiers.  Every greedy round runs a threshold-
algorithm pull over the shards, each of which exposes its best remaining
*local* gain bound (:meth:`~repro.shard.frontier.RoundSearch.peek`):

1. Shards are ranked by ``peek(shard) + foreign_uncovered(shard)`` — the
   local bound plus the count of uncovered relevant graphs living on other
   shards, a trivially valid bound on any candidate's *global* gain.
2. The top shard is pulled: its frontier advances its lazy tree walk to
   the next candidate and returns its exact local gain.  The candidate
   climbs a ladder of successively tighter (and dearer) global bounds:

   * **tier 1** — exact local gain + foreign uncovered count (free);
   * **tier 2** — exact local gain + Σ over foreign shards of the
     π̂-style Chebyshev count of uncovered relevant members within θ
     (array arithmetic against cached foreign coordinates; a few |V|-sized
     distance batches the first time a shard sees the graph);
   * **tier 3** — full scatter resolve: every foreign shard verifies the
     candidate's exact θ-neighborhood members; the union with the local
     part is the true global neighborhood, cached for later rounds.

   A candidate falls off the ladder the moment a bound can no longer beat
   (or id-tie-break) the incumbent.
3. When the best shard's bound cannot beat the incumbent, the round is
   over: the incumbent is *the* canonical greedy selection — the maximum
   exact marginal gain with ties broken by smallest global id, the same
   rule the single-index engine applies — so the answer is bit-identical
   to ``NBIndex.query`` regardless of S or partitioner.
4. The selection is broadcast: newly covered ids flow back into every
   frontier's Theorem 6–8 update walk, keeping all bounds valid for the
   next round.

Every bound above is an upper bound on the candidate's gain *at the time
it is computed*, and gains only shrink as coverage grows (submodularity),
so lazy reuse across rounds is safe — the same staleness argument that
backs the single-index search.

The loop itself (:func:`run_greedy`) is generic over a small frontier
protocol — ``begin_round`` / ``root_bound`` / ``min_gid_bound`` /
``open_round`` / ``pi_hat_uncovered`` / ``neighborhood_of`` / ``select`` /
``apply_update`` plus the ``uncovered_count`` / ``relevant_global`` /
``foreign_embeds`` attributes — so a participant does not have to be an
NB-Tree shard at all.  :mod:`repro.delta` drives the same loop with an
:class:`~repro.delta.frontier.ExactFrontier` (the un-indexed memtable,
scanned exactly) sitting next to the indexed shard frontiers; the
canonical (max gain, min id) selection rule keeps the merged answer
bit-identical to a from-scratch single index either way.
"""

from __future__ import annotations

import heapq
import time

from repro import obs
from repro.bitset import BitsetDelta, BitsetUniverse, kernel as bitset_kernel
from repro.core.results import QueryResult, QueryStats
from repro.index.errors import OffLadderThetaError
from repro.shard.frontier import ShardFrontier
from repro.utils.validation import require_positive


def _beats(bound: float, gid: int, inc_gain: float, inc_gid: int | None) -> bool:
    """Can a candidate with this bound still win against the incumbent
    under the (max gain, min id) selection rule?"""
    if inc_gid is None:
        return True
    return bound > inc_gain or (bound == inc_gain and gid < inc_gid)


def new_coord(num_frontiers: int) -> dict:
    """Fresh coordinator accounting dict shared by every frontier mix."""
    return {
        "shards": num_frontiers,
        "rounds": 0,
        "pulls": 0,
        "pi_hat_refines": 0,
        "refine_prunes": 0,
        "scatter_resolves": 0,
        "broadcasts": 0,
        "broadcast_words": 0,
        "foreign_embeds": 0,
    }


def run_greedy(
    frontiers,
    universe,
    home_of,
    k: int,
    num_relevant: int,
    *,
    stop_on_zero_gain: bool,
    enable_updates: bool,
    stats,
    coord: dict,
):
    """The full scatter-gather greedy over any frontier-protocol mix.

    ``home_of(gid)`` returns the frontier that owns ``gid`` (the one whose
    :meth:`select` retires it).  Returns ``(answer, gains, covered)`` with
    ``covered`` as a packed bitset over ``universe``.
    """
    covered = universe.empty()
    answer: list[int] = []
    gains: list[int] = []
    #: Fully resolved *global* neighborhoods from tier-3 scatters — the
    #: coordinator's analog of the single-index session's neighborhood
    #: cache (packed global bitsets).
    global_nbhd: dict[int, object] = {}

    for _ in range(min(k, num_relevant)):
        search_started = time.perf_counter()
        coord["rounds"] += 1
        selection = _run_round(frontiers, covered, global_nbhd, coord)
        stats.search_seconds += time.perf_counter() - search_started
        if selection is None:
            break
        gid, neighborhood = selection
        newly = bitset_kernel.andnot(neighborhood, covered)
        gain = bitset_kernel.popcount(newly)
        if not gain and stop_on_zero_gain:
            break
        answer.append(gid)
        gains.append(gain)
        bitset_kernel.union_into(covered, newly)
        home_of(gid).select(gid)
        update_started = time.perf_counter()
        if gain and enable_updates:
            # Word-aligned delta broadcast: only the words that actually
            # changed cross the frontier boundary.
            delta = BitsetDelta.from_words(newly, universe.size)
            coord["broadcast_words"] += delta.num_words
            for frontier in frontiers:
                frontier.apply_update(gid, delta, covered)
            coord["broadcasts"] += 1
        stats.update_seconds += time.perf_counter() - update_started

    coord["foreign_embeds"] = sum(f.foreign_embeds for f in frontiers)
    coord["shard_relevant"] = [int(f.relevant_global.size) for f in frontiers]
    return answer, gains, covered


def _run_round(frontiers, covered, global_nbhd, coord):
    """One greedy selection: threshold-algorithm pull over the frontiers.

    Returns ``(gid, exact global neighborhood)`` of the canonical argmax,
    or ``None`` when no candidate remains."""
    total_uncovered = 0
    for frontier in frontiers:
        frontier.begin_round(covered)
        total_uncovered += frontier.uncovered_count

    rounds: dict[int, object] = {}
    shard_heap: list[tuple[float, int]] = []
    for s, frontier in enumerate(frontiers):
        local_top = frontier.root_bound()
        if local_top == float("-inf"):
            continue
        foreign = total_uncovered - frontier.uncovered_count
        heapq.heappush(shard_heap, (-(local_top + foreign), s))

    inc_gid: int | None = None
    inc_gain = -1.0
    inc_nbhd = None

    while shard_heap:
        neg_bound, s = heapq.heappop(shard_heap)
        shard_bound = -neg_bound
        if inc_gid is not None:
            if shard_bound < inc_gain:
                # The best-ranked frontier cannot reach the incumbent's
                # gain; no other frontier can either (max-heap).
                break
            if shard_bound == inc_gain and frontiers[s].min_gid_bound() > inc_gid:
                # This frontier can at best tie the incumbent's gain, and
                # every graph it holds loses the id tie-break — drop it
                # for the round, but later frontiers may still tie-win.
                continue
        frontier = frontiers[s]
        foreign = total_uncovered - frontier.uncovered_count
        round_search = rounds.get(s)
        if round_search is None:
            round_search = rounds[s] = frontier.open_round(covered)
        min_useful = (
            float("-inf") if inc_gid is None else inc_gain - foreign
        )
        candidate = round_search.next(min_useful, inc_gid)
        if candidate is None:
            continue  # frontier exhausted for this round (final)
        coord["pulls"] += 1
        gid, local_gain, local_nbhd = candidate
        resolved = _resolve_candidate(
            gid, local_gain, local_nbhd, s, frontiers, covered,
            global_nbhd, coord, inc_gain, inc_gid,
        )
        if resolved is not None:
            gain, neighborhood = resolved
            if _beats(gain, gid, inc_gain, inc_gid):
                inc_gid, inc_gain, inc_nbhd = gid, gain, neighborhood
        next_local = round_search.peek()
        if next_local != float("-inf"):
            heapq.heappush(shard_heap, (-(next_local + foreign), s))

    if inc_gid is None:
        return None
    return inc_gid, inc_nbhd


def _resolve_candidate(
    gid, local_gain, local_nbhd, home, frontiers, covered,
    global_nbhd, coord, inc_gain, inc_gid,
):
    """Climb the bound ladder for one pulled candidate.

    Returns ``(exact global gain, exact global neighborhood)`` when the
    candidate survives to tier 3 (or was resolved in an earlier round),
    ``None`` when a bound proves it cannot win."""
    cached = global_nbhd.get(gid)
    if cached is not None:
        # Resolved in an earlier round: the exact gain is one batch
        # popcount away — no scatter needed.
        return (
            float(bitset_kernel.uncovered_count(cached, covered)),
            cached,
        )

    foreign_frontiers = [
        f for s, f in enumerate(frontiers) if s != home
    ]
    foreign_uncovered = sum(f.uncovered_count for f in foreign_frontiers)
    if not _beats(local_gain + foreign_uncovered, gid, inc_gain, inc_gid):
        return None  # tier 1

    refined = local_gain + sum(
        f.pi_hat_uncovered(gid) for f in foreign_frontiers
    )
    coord["pi_hat_refines"] += 1
    if not _beats(refined, gid, inc_gain, inc_gid):
        coord["refine_prunes"] += 1
        return None  # tier 2

    neighborhood = local_nbhd.copy()
    for frontier in foreign_frontiers:
        bitset_kernel.union_into(neighborhood, frontier.neighborhood_of(gid))
    global_nbhd[gid] = neighborhood
    coord["scatter_resolves"] += 1
    return (
        float(bitset_kernel.uncovered_count(neighborhood, covered)),
        neighborhood,
    )


def record_coordinator_obs(coord: dict, stats) -> None:
    """Shared obs roll-up for any session driving :func:`run_greedy`."""
    if not obs.enabled():
        return
    obs.counter("query.count")
    obs.counter("shard.coordinator.rounds", coord["rounds"])
    obs.counter("shard.coordinator.pulls", coord["pulls"])
    obs.counter("shard.coordinator.pi_hat_refines", coord["pi_hat_refines"])
    obs.counter("shard.coordinator.refine_prunes", coord["refine_prunes"])
    obs.counter(
        "shard.coordinator.scatter_resolves", coord["scatter_resolves"]
    )
    obs.counter("shard.coordinator.broadcasts", coord["broadcasts"])
    obs.counter("shard.coordinator.broadcast_words", coord["broadcast_words"])
    obs.counter("shard.coordinator.foreign_embeds", coord["foreign_embeds"])
    obs.counter("query.distance_calls", stats.distance_calls)
    obs.counter("query.exact_neighborhoods", stats.exact_neighborhoods)
    obs.counter("query.nodes_popped", stats.nodes_popped)
    obs.counter("query.leaves_evaluated", stats.leaves_evaluated)
    obs.counter("query.pruned_subtrees", stats.pruned_subtrees)
    obs.counter("query.batch_decrements", stats.batch_decrements)
    obs.observe_time("query.init_seconds", stats.init_seconds)
    obs.observe_time("query.search_seconds", stats.search_seconds)
    obs.observe_time("query.update_seconds", stats.update_seconds)


class ShardedQuerySession:
    """Per-relevance-function state for coordinated queries.

    Mirrors :class:`~repro.index.nbindex.QuerySession`: the relevant set is
    materialized once and reused across (θ, k) refinements."""

    def __init__(self, sharded, query_fn):
        self.sharded = sharded
        self.query_fn = query_fn
        started = time.perf_counter()
        self.relevant = sharded.database.relevant_indices(query_fn)
        self.relevant_set = frozenset(int(i) for i in self.relevant)
        #: Shared global id ↔ bit position codec; every frontier's bitsets
        #: and every broadcast delta are laid out against this universe.
        self.universe = BitsetUniverse(self.relevant)
        self.init_seconds = time.perf_counter() - started
        obs.observe_time("shard.session_init_seconds", self.init_seconds)

    # ------------------------------------------------------------------
    def query(
        self,
        theta: float,
        k: int,
        stop_on_zero_gain: bool = False,
        enable_updates: bool = True,
        deadline=None,
        cascade=None,
        epsilon: float = 0.0,
    ) -> QueryResult:
        """Coordinated top-k query; same contract as the single-index
        :meth:`~repro.index.nbindex.QuerySession.query`, same answer."""
        require_positive(theta, "theta")
        require_positive(k, "k")
        from repro.cascade import runtime_for
        from repro.resilience.deadline import current_deadline, deadline_scope

        runtime = runtime_for(cascade, epsilon)
        sharded = self.sharded
        ladder_index = sharded.ladder.index_for(theta)
        if ladder_index is None:
            obs.counter("index.offladder_theta")
            raise OffLadderThetaError(theta, sharded.ladder)

        stats = QueryStats(init_seconds=self.init_seconds)
        calls_before = self._total_calls()
        effective_deadline = deadline if deadline is not None else current_deadline()
        degradations_before = (
            dict(effective_deadline.degradations)
            if effective_deadline is not None else {}
        )
        coord = new_coord(sharded.num_shards)

        with deadline_scope(deadline), obs.span(
            "shard.query", theta=theta, k=k, shards=sharded.num_shards,
        ) as query_span:
            started = time.perf_counter()
            frontiers = [
                ShardFrontier(
                    shard_id=s,
                    index=sharded.shards[s],
                    global_ids=sharded.global_ids[s],
                    relevant_global=self.relevant,
                    global_engine=sharded.engine,
                    theta=theta,
                    ladder_index=ladder_index,
                    stats=stats,
                    universe=self.universe,
                    cascade=runtime,
                )
                for s in range(sharded.num_shards)
            ]
            stats.init_seconds += time.perf_counter() - started

            answer, gains, covered = run_greedy(
                frontiers,
                self.universe,
                lambda gid: frontiers[int(sharded.shard_of[gid])],
                k,
                int(self.relevant.size),
                stop_on_zero_gain=stop_on_zero_gain,
                enable_updates=enable_updates,
                stats=stats,
                coord=coord,
            )
            stats.distance_calls = self._total_calls() - calls_before
            stats.coordinator = coord
            if runtime is not None:
                stats.epsilon = runtime.epsilon
                stats.approximate = runtime.approximate
                stats.cascade = runtime.snapshot()
            if effective_deadline is not None:
                delta = {
                    kind: count - degradations_before.get(kind, 0)
                    for kind, count in effective_deadline.degradations.items()
                    if count > degradations_before.get(kind, 0)
                }
                stats.degradations = delta
                stats.degradation_events = sum(delta.values())
                stats.degraded = bool(delta)
                if stats.degraded:
                    obs.counter("query.degraded")
            self._record_obs(coord, stats)
            query_span.set(
                answer_size=len(answer),
                degraded=stats.degraded,
                scatter_resolves=coord["scatter_resolves"],
            )
        return QueryResult(
            answer=answer,
            gains=gains,
            covered=self.universe.decode_frozenset(covered),
            num_relevant=int(self.relevant.size),
            theta=theta,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _total_calls(self) -> int:
        sharded = self.sharded
        total = sharded.engine.calls
        for shard in sharded.shards:
            total += shard._counting.calls
        return total

    def _record_obs(self, coord: dict, stats: QueryStats) -> None:
        if not obs.enabled():
            return
        obs.counter("shard.query.count")
        record_coordinator_obs(coord, stats)

    def __repr__(self) -> str:
        return (
            f"<ShardedQuerySession relevant={self.relevant.size} "
            f"shards={self.sharded.num_shards}>"
        )

"""`ShardedIndex`: S per-shard NB-Indexes behind the single-index API.

Load a manifest bundle (or build one in place) and query it exactly like
an :class:`~repro.index.NBIndex` — same ``query(query_fn, theta, k)``
signature, same keyword arguments, same :class:`QueryResult`, and (by the
coordinator's canonical selection rule) the *same bits* in the answer.

The global :class:`~repro.engine.DistanceEngine` attached here handles
every cross-shard distance using global graph ids; per-shard engines speak
only their own renumbered local ids.  Keeping the two id spaces in
separate engines is what keeps the shared pair caches sound.

Hot reload support: :meth:`load` accepts the previously served instance
and *reuses* any shard object whose artifact checksum and member set are
unchanged in the new manifest — reloading a bundle where one shard was
rebuilt touches exactly one shard's worth of disk and allocation.
"""

from __future__ import annotations

import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.results import QueryResult
from repro.graphs.database import GraphDatabase
from repro.index.errors import ReadOnlyIndexError
from repro.index.nbindex import NBIndex
from repro.index.persistence import load_index
from repro.index.pivec import ThresholdLadder
from repro.resilience.errors import CorruptIndexError, DatabaseMismatchError
from repro.shard.coordinator import ShardedQuerySession
from repro.shard.manifest import ShardManifest, database_checksum


class ShardedIndex:
    """S shard NB-Indexes + manifest + global engine, queryable as one."""

    def __init__(
        self,
        database: GraphDatabase,
        distance,
        *,
        shards: list[NBIndex],
        manifest: ShardManifest,
        engine,
        path: Path | None = None,
        reused_shards: int = 0,
    ):
        self.database = database
        self.distance = distance
        self.shards = list(shards)
        self.manifest = manifest
        self.engine = engine
        self.path = path
        self.reused_shards = reused_shards
        self.ladder = ThresholdLadder(manifest.ladder)
        self.shard_of = np.asarray(manifest.assignments, dtype=np.int64)
        self.global_ids = [
            manifest.members(s) for s in range(manifest.num_shards)
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        manifest_path: str | Path,
        database: GraphDatabase,
        distance,
        *,
        workers: int | None = None,
        previous: "ShardedIndex | None" = None,
    ) -> "ShardedIndex":
        """Load a shard bundle written by :func:`~repro.shard.build_shards`.

        Raises :class:`~repro.shard.errors.ManifestError` /
        :class:`~repro.resilience.CorruptIndexError` /
        :class:`~repro.resilience.DatabaseMismatchError` — all
        ``PersistenceError`` subclasses, so the service reload path rolls
        back cleanly.  ``previous`` enables shard-object reuse (see module
        docstring)."""
        from repro.engine import DistanceEngine

        manifest_path = Path(manifest_path)
        manifest = ShardManifest.load(manifest_path)
        if len(database) != manifest.num_graphs or (
            database_checksum(database) != manifest.database_checksum
        ):
            raise DatabaseMismatchError(
                f"{manifest_path}: shard manifest does not match the "
                f"provided database"
            )
        engine = DistanceEngine(
            distance, workers=workers, graphs=database.graphs
        )
        base_dir = manifest_path.parent
        shards: list[NBIndex] = []
        reused = 0
        for entry in manifest.shards:
            members = manifest.members(entry.shard_id)
            if (
                previous is not None
                and entry.shard_id < previous.manifest.num_shards
                and previous.manifest.shards[entry.shard_id].checksum
                == entry.checksum
                and np.array_equal(
                    previous.manifest.members(entry.shard_id), members
                )
            ):
                shards.append(previous.shards[entry.shard_id])
                reused += 1
                continue
            artifact = manifest.artifact_path(entry.shard_id, base_dir)
            raw = artifact.read_bytes()
            if zlib.crc32(raw) != entry.checksum:
                raise CorruptIndexError(
                    f"{artifact}: shard bytes do not match the manifest "
                    f"checksum — stale or tampered artifact"
                )
            sub = database.subset([int(i) for i in members])
            shards.append(load_index(artifact, sub, distance, workers=workers))
        obs.counter("shard.loads")
        if reused:
            obs.counter("shard.reused", reused)
        return cls(
            database, distance, shards=shards, manifest=manifest,
            engine=engine, path=manifest_path, reused_shards=reused,
        )

    @classmethod
    def build(
        cls,
        database: GraphDatabase,
        distance,
        *,
        num_shards: int,
        out_dir: str | Path,
        workers: int | None = None,
        **build_kwargs,
    ) -> "ShardedIndex":
        """Build a bundle under ``out_dir`` and load it back."""
        from repro.shard.build import build_shards

        manifest_path = build_shards(
            database, distance, num_shards=num_shards, out_dir=out_dir,
            workers=workers, **build_kwargs,
        )
        return cls.load(manifest_path, database, distance, workers=workers)

    # ------------------------------------------------------------------
    # Queries (single-index API surface)
    # ------------------------------------------------------------------
    def session(self, query_fn) -> ShardedQuerySession:
        return ShardedQuerySession(self, query_fn)

    def query(self, query_fn, theta: float, k: int, **kwargs) -> QueryResult:
        unknown = set(kwargs) - NBIndex._QUERY_KWARGS
        if unknown:
            raise TypeError(
                f"ShardedIndex.query() got unexpected keyword arguments "
                f"{sorted(unknown)}; accepted: {sorted(NBIndex._QUERY_KWARGS)}"
            )
        return self.session(query_fn).query(theta, k, **kwargs)

    def set_ladder(self, ladder: ThresholdLadder) -> None:
        """Swap the coordinator's (global) ladder; each shard re-ladders
        too so π̂ columns keep being read at the shared rungs."""
        self.ladder = ladder
        for shard in self.shards:
            shard.set_ladder(ladder)

    # ------------------------------------------------------------------
    # Mutations (Index protocol: read-only here)
    # ------------------------------------------------------------------
    #: A loaded bundle is a read-only view of its manifest generation —
    #: open with ``repro.open_index(path, mutable=True)`` to mutate.
    mutable = False

    def insert(self, graph, feature_row) -> int:
        raise ReadOnlyIndexError("insert", "ShardedIndex")

    def delete(self, gid: int) -> bool:
        raise ReadOnlyIndexError("delete", "ShardedIndex")

    def update(self, gid: int, graph, feature_row) -> int:
        raise ReadOnlyIndexError("update", "ShardedIndex")

    def compact(self) -> dict:
        raise ReadOnlyIndexError("compact", "ShardedIndex")

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.manifest.num_shards

    @property
    def tree_nodes(self) -> int:
        """Total NB-Tree nodes across shards (single-index parity)."""
        return sum(shard.tree.num_nodes for shard in self.shards)

    def stats(self) -> dict:
        """Statable protocol: bundle roll-up plus per-shard breakdown.

        The scalar core uses the same key schema as
        :meth:`NBIndex.stats` (``num_graphs`` / ``num_shards`` /
        ``tree_nodes`` / ``ladder_thresholds`` / ``distance_calls`` /
        ``memory_bytes`` / ``coverage_bytes`` / ``build_seconds`` /
        ``degraded``), so dashboards read one shape regardless of the
        deployment; per-shard detail nests under ``shards`` with the
        same per-quantity names."""
        out = {
            "num_graphs": len(self.database),
            "num_shards": self.num_shards,
            "partitioner": self.manifest.partitioner,
            "tree_nodes": self.tree_nodes,
            "ladder_thresholds": len(self.ladder),
            "reused_shards": self.reused_shards,
            "memory_bytes": sum(s._memory_bytes() for s in self.shards),
            "coverage_bytes": sum(s._coverage_bytes() for s in self.shards),
            "build_seconds": float(
                self.manifest.build.get(
                    "total_seconds",
                    sum(s.build_seconds for s in self.shards),
                )
            ),
            "degraded": any(bool(s.build_degradations) for s in self.shards),
            "distance_calls": (
                self.engine.calls
                + sum(s._counting.calls for s in self.shards)
            ),
            "shards": [
                {
                    "shard_id": i,
                    "num_graphs": len(shard.database),
                    "tree_nodes": shard.tree.num_nodes,
                    "distance_calls": shard._counting.calls,
                    "memory_bytes": shard._memory_bytes(),
                    "coverage_bytes": shard._coverage_bytes(),
                }
                for i, shard in enumerate(self.shards)
            ],
        }
        if hasattr(self.engine, "stats"):
            out["engine"] = dict(self.engine.stats())
        return out

    def invalidate_pools(self) -> None:
        """Tear down the global engine's pool and every shard engine's."""
        if hasattr(self.engine, "invalidate_pool"):
            self.engine.invalidate_pool()
        for shard in self.shards:
            if shard.engine is not None:
                shard.engine.invalidate_pool()

    close = invalidate_pools

    def __repr__(self) -> str:
        return (
            f"<ShardedIndex n={len(self.database)} "
            f"shards={self.num_shards} "
            f"partitioner={self.manifest.partitioner!r}>"
        )

"""The shard manifest: one small JSON file describing a sharded index.

The manifest is the unit the service watches and the CLI passes around; the
per-shard ``.npz`` artifacts live next to it (paths are stored relative to
the manifest's directory so the whole bundle relocates as one).  It records
everything needed to (re)load and *validate* the bundle:

* the partitioner and the full per-graph shard assignment,
* the shared global threshold ladder (every shard indexes π̂ at the same
  rungs — the coordinator's off-ladder check is global),
* a crc32 over the database fingerprint (wrong-database loads fail loudly
  before any shard is touched),
* per-shard artifact paths, byte checksums and sizes — the checksum is how
  hot reload decides which shards actually changed and which loaded shard
  objects can be reused as-is.

The file is written atomically and carries its own crc32 over the canonical
body, so a torn or hand-mangled manifest raises
:class:`~repro.shard.errors.ManifestError` (a
:class:`~repro.resilience.errors.PersistenceError`) instead of a JSON
traceback.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.atomicio import atomic_write
from repro.shard.errors import ManifestError

SCHEMA = "repro.shard-manifest/v1"


@dataclass(frozen=True)
class ShardEntry:
    """One shard's artifact: where it lives and how to validate it."""

    shard_id: int
    path: str  # relative to the manifest's directory
    checksum: int  # crc32 of the artifact file bytes
    num_graphs: int

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "path": self.path,
            "checksum": self.checksum,
            "num_graphs": self.num_graphs,
        }


@dataclass(frozen=True)
class ShardManifest:
    """Complete description of a sharded NB-Index bundle."""

    num_shards: int
    num_graphs: int
    partitioner: str
    seed: int | None
    ladder: tuple[float, ...]
    assignments: np.ndarray  # (num_graphs,) global gid -> shard id
    database_checksum: int  # crc32 over the database fingerprint bytes
    shards: tuple[ShardEntry, ...]
    build: dict = field(default_factory=dict)

    def members(self, shard_id: int) -> np.ndarray:
        """Global graph ids of one shard, ascending — the local→global id
        map (local id ``i`` is the ``i``-th smallest global id)."""
        return np.flatnonzero(self.assignments == shard_id)

    def artifact_path(self, shard_id: int, base_dir: Path) -> Path:
        return Path(base_dir) / self.shards[shard_id].path

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _body(self) -> dict:
        return {
            "schema": SCHEMA,
            "num_shards": self.num_shards,
            "num_graphs": self.num_graphs,
            "partitioner": self.partitioner,
            "seed": self.seed,
            "ladder": list(self.ladder),
            "assignments": [int(a) for a in self.assignments],
            "database_checksum": self.database_checksum,
            "shards": [entry.to_dict() for entry in self.shards],
            "build": self.build,
        }

    def save(self, path: str | Path) -> None:
        body = self._body()
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        document = {"manifest": body, "crc32": zlib.crc32(canonical.encode())}
        with atomic_write(Path(path), "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        path = Path(path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ManifestError(f"{path}: unreadable shard manifest: {error}")
        if not isinstance(document, dict) or "manifest" not in document:
            raise ManifestError(f"{path}: not a shard manifest")
        body = document["manifest"]
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(canonical.encode()) != document.get("crc32"):
            raise ManifestError(
                f"{path}: manifest checksum mismatch — file is corrupt"
            )
        if body.get("schema") != SCHEMA:
            raise ManifestError(
                f"{path}: unsupported manifest schema "
                f"{body.get('schema')!r} (this build reads {SCHEMA!r})"
            )
        try:
            manifest = cls(
                num_shards=int(body["num_shards"]),
                num_graphs=int(body["num_graphs"]),
                partitioner=str(body["partitioner"]),
                seed=body["seed"],
                ladder=tuple(float(v) for v in body["ladder"]),
                assignments=np.asarray(body["assignments"], dtype=np.int64),
                database_checksum=int(body["database_checksum"]),
                shards=tuple(
                    ShardEntry(
                        shard_id=int(e["shard_id"]),
                        path=str(e["path"]),
                        checksum=int(e["checksum"]),
                        num_graphs=int(e["num_graphs"]),
                    )
                    for e in body["shards"]
                ),
                build=dict(body.get("build", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ManifestError(f"{path}: malformed shard manifest: {error}")
        if manifest.assignments.shape != (manifest.num_graphs,):
            raise ManifestError(
                f"{path}: assignment vector has "
                f"{manifest.assignments.shape[0]} entries for "
                f"{manifest.num_graphs} graphs"
            )
        if len(manifest.shards) != manifest.num_shards:
            raise ManifestError(
                f"{path}: {len(manifest.shards)} shard entries for "
                f"num_shards={manifest.num_shards}"
            )
        return manifest


def database_checksum(database) -> int:
    """crc32 over the database fingerprint — cheap wrong-database guard.

    The per-shard artifacts additionally carry full fingerprints of their
    sub-databases, so this is a fast-fail, not the only line of defense.
    """
    from repro.index.persistence import database_fingerprint

    return zlib.crc32(database_fingerprint(database).tobytes())

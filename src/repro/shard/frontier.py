"""Per-shard query frontier: the shard-local half of the distributed greedy.

A :class:`ShardFrontier` owns one shard's NB-Index structures for the
duration of a single (θ, k) query and answers the coordinator's three
needs, always in *global* graph ids:

* **candidates** — a lazily advancing best-first walk of the shard's
  NB-Tree (:class:`RoundSearch`, Algorithm 2 restricted to the shard),
  yielding leaves with exact *local* gains in bound order.  The per-node
  working bounds ``W`` persist across greedy rounds exactly as in the
  single-index engine; submodularity keeps stale entries safe.
* **foreign resolution** — membership of *any* graph's θ-neighborhood
  within this shard's relevant set, for graphs living on other shards:
  the foreign graph is embedded once against this shard's vantage points
  (``|V|`` distances through the shared global engine) and then filtered
  with the same Chebyshev lower bound / min-sum upper bound sandwich the
  home path uses, so only the undecided band pays exact distances.
  π̂-style *counts* over the uncovered relevant set
  (:meth:`pi_hat_uncovered`) give the coordinator a cheap bound-refinement
  tier before it commits to full resolution.
* **broadcast updates** — after a selection anywhere in the cluster,
  :meth:`apply_update` replays the Theorem 6–8 walk against this shard's
  tree: subtrees provably outside the ``2θ`` ball of the selected graph
  are skipped, contained clusters get one batch decrement, cached leaves
  refresh to exact residual gains.

Coverage state is packed: every frontier shares the session's global
:class:`~repro.bitset.BitsetUniverse` over ``L_q``, so the covered set,
per-node relevant bitmaps, cached neighborhoods, and the coordinator's
broadcast deltas (:class:`~repro.bitset.BitsetDelta` — only the nonzero
words cross the shard boundary) are all layout-compatible uint64 arrays;
set arithmetic is word-parallel popcounts, never per-id Python.

Id discipline (load-bearing): the shard's own engine and embedding speak
*local* ids (the sub-database renumbers 0..n_s−1); everything that crosses
a shard boundary goes through the *global* engine with global ids.  Mixing
the two in one engine would alias different graphs onto the same pair-cache
key.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro import obs
from repro.bitset import BitsetDelta, BitsetUniverse, kernel as bitset_kernel
from repro.cascade.stages import BLOCK_EVALS
from repro.core.results import QueryStats
from repro.index.nbindex import NBIndex
from repro.index.nbtree import NBTreeNode

_EPS = 1e-9
_NEG_INF = float("-inf")
#: Tie-break sentinel for subtrees with no relevant members (loses to any
#: real graph id).
_NO_GID = 2**63 - 1


class ShardFrontier:
    """One shard's state for one coordinated (θ, k) query."""

    def __init__(
        self,
        shard_id: int,
        index: NBIndex,
        global_ids: np.ndarray,
        relevant_global: np.ndarray,
        global_engine,
        theta: float,
        ladder_index: int,
        stats: QueryStats,
        universe: BitsetUniverse | None = None,
        cascade=None,
    ):
        self.shard_id = shard_id
        self.index = index
        self.global_ids = np.asarray(global_ids, dtype=np.int64)
        self.global_engine = global_engine
        self.theta = float(theta)
        self.stats = stats
        #: Shared per-query :class:`~repro.cascade.FilterCascade` (None →
        #: the legacy vantage-only pipeline at ε = 0).
        self.cascade = cascade
        self._gen_theta = (
            float(theta) if cascade is None else cascade.generation_theta(theta)
        )
        self._g2l = {int(g): i for i, g in enumerate(self.global_ids)}
        self.member_set = frozenset(self._g2l)

        #: Shared global id ↔ bit position codec over the full relevant set.
        self.universe = (
            universe
            if universe is not None
            else BitsetUniverse(np.asarray(relevant_global, dtype=np.int64))
        )

        # Relevant graphs of this shard, aligned local/global, ascending.
        rel = [int(g) for g in relevant_global if int(g) in self._g2l]
        self.relevant_global = np.asarray(rel, dtype=np.int64)
        self.relevant_local = np.asarray(
            [self._g2l[g] for g in rel], dtype=np.int64
        )
        self._position = {g: p for p, g in enumerate(rel)}
        #: Bit positions (in the global universe) of this shard's relevant
        #: members, aligned with ``relevant_local``.
        self._rel_positions = self.universe.positions_of(self.relevant_global)
        #: This shard's relevant members as a packed global bitset.
        self.member_bits = self.universe.encode_positions(self._rel_positions)

        # Per-node relevant member bitmaps (global universe) and min-gid
        # tie keys — the Theorem 7 decrement is one delta popcount per node.
        self._node_bits = self.universe.empty_matrix(index.tree.num_nodes)
        self._node_min_gid = np.full(
            index.tree.num_nodes, _NO_GID, dtype=np.int64
        )
        self._collect_relevant(index.tree.root)
        self._node_has = bitset_kernel.popcount_rows(self._node_bits) > 0

        # Initial working bounds: the π̂ column at the covering rung.
        if self.relevant_local.size:
            theta_i = index.ladder[ladder_index]
            column = index.embedding.candidate_counts(
                self.relevant_local, [theta_i], self.relevant_local
            )[:, 0]
        else:
            column = np.empty(0, dtype=np.int64)
        self.bounds = self._initial_bounds(column)

        self._selected: set[int] = set()
        #: Exact θ-neighborhood *within this shard's relevant set* as a
        #: packed global bitset, keyed by global id (home and foreign
        #: graphs share the cache).
        self._nbhd: dict[int, np.ndarray] = {}
        self._foreign_coords: dict[int, np.ndarray] = {}
        self._uncov_mask = np.ones(self.relevant_global.size, dtype=bool)
        self.uncovered_count = int(self.relevant_global.size)

    # ------------------------------------------------------------------
    # Initialization internals
    # ------------------------------------------------------------------
    def _collect_relevant(self, node: NBTreeNode) -> None:
        row = self._node_bits[node.node_id]
        if node.is_leaf:
            gid = int(self.global_ids[node.graph_index])
            if gid in self._position:
                bitset_kernel.set_bit(row, int(self.universe.position(gid)))
        else:
            for child in node.children:
                self._collect_relevant(child)
                bitset_kernel.union_into(row, self._node_bits[child.node_id])
        self._node_min_gid[node.node_id] = self.universe.min_id(row, _NO_GID)

    def _initial_bounds(self, column: np.ndarray) -> np.ndarray:
        bounds = np.full(self.index.tree.num_nodes, _NEG_INF)

        def fill(node: NBTreeNode) -> float:
            if node.is_leaf:
                gid = int(self.global_ids[node.graph_index])
                position = self._position.get(gid)
                value = float(column[position]) if position is not None else _NEG_INF
            else:
                value = max(
                    (fill(child) for child in node.children), default=_NEG_INF
                )
            bounds[node.node_id] = value
            return value

        fill(self.index.tree.root)
        return bounds

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self, covered: np.ndarray) -> None:
        """Refresh the uncovered-relevant view for one greedy round.

        ``covered`` is the coordinator's packed global covered bitset; the
        shard's uncovered count is one ``popcount(members & ~covered)``
        and the per-member mask one vectorized bit gather — no per-id scan.
        """
        if self.relevant_global.size:
            self._uncov_mask = ~bitset_kernel.test_positions(
                covered, self._rel_positions
            )
            self.uncovered_count = bitset_kernel.uncovered_count(
                self.member_bits, covered
            )
        else:
            self.uncovered_count = 0

    def root_bound(self) -> float:
        return float(self.bounds[self.index.tree.root.node_id])

    def min_gid_bound(self) -> int:
        """Smallest relevant global id anywhere in this frontier (static —
        a conservative key for the coordinator's id tie-break pruning)."""
        return int(self._node_min_gid[self.index.tree.root.node_id])

    @property
    def foreign_embeds(self) -> int:
        """How many foreign graphs were embedded against this shard's
        vantage points (coordinator accounting)."""
        return len(self._foreign_coords)

    def open_round(self, covered: np.ndarray) -> "RoundSearch":
        return RoundSearch(self, covered)

    def select(self, gid: int) -> None:
        """Mark a home graph as chosen: its leaf leaves the frontier."""
        local = self._g2l[int(gid)]
        self.bounds[self.index._leaf_of[local].node_id] = _NEG_INF
        self._selected.add(int(gid))

    # ------------------------------------------------------------------
    # Neighborhood resolution (home and foreign graphs)
    # ------------------------------------------------------------------
    def foreign_coords(self, gid: int) -> np.ndarray:
        """This shard's vantage coordinates of a foreign graph (cached)."""
        coords = self._foreign_coords.get(gid)
        if coords is None:
            vantage_global = [
                int(self.global_ids[vp])
                for vp in self.index.embedding.vantage_indices
            ]
            coords = np.asarray(
                self.global_engine.one_to_many(int(gid), vantage_global),
                dtype=float,
            )
            self._foreign_coords[gid] = coords
        return coords

    def pi_hat_uncovered(self, gid: int) -> int:
        """Chebyshev count of *uncovered* relevant members within θ of
        ``gid`` — an upper bound on the gain contribution of this shard."""
        if not self.uncovered_count:
            return 0
        coords = self.foreign_coords(gid)
        among = self.relevant_local[self._uncov_mask]
        obs.counter(BLOCK_EVALS)
        lower = self.index.embedding.lower_bounds_to(coords, among)
        return int(np.count_nonzero(lower <= self.theta + _EPS))

    def neighborhood_of(self, gid: int) -> np.ndarray:
        """``N_θ(gid) ∩ relevant(shard)`` as a packed global bitset, exact,
        cached.

        Membership is always ``d(gid, c) ≤ θ + ε`` with the global ε — the
        same predicate on the home path (shard engine + embedding sandwich)
        and the foreign path (global engine + foreign-coords sandwich), so
        the union over shards equals the single-index neighborhood."""
        cached = self._nbhd.get(gid)
        if cached is not None:
            return cached
        gid = int(gid)
        theta = self.theta
        stats = self.stats
        if gid in self.member_set:
            local = self._g2l[gid]
            index = self.index
            candidates = index.embedding.candidates(
                local, self._gen_theta + _EPS, self.relevant_local
            )
            stats.candidates_generated += int(candidates.size)
            verified: set[int] = set()
            others = [int(c) for c in candidates if int(c) != local]
            if len(others) < candidates.size:
                verified.add(local)
            stats.candidate_verifications += len(others)
            mask = index.engine.within(
                local, others, theta, cascade=self.cascade, prefiltered=True
            )
            verified.update(c for c, ok in zip(others, mask) if ok)
            members = [int(self.global_ids[c]) for c in verified]
        else:
            coords = self.foreign_coords(gid)
            among = self.relevant_local
            members = []
            if among.size:
                obs.counter(BLOCK_EVALS)
                lower = self.index.embedding.lower_bounds_to(coords, among)
                window = among[lower <= self._gen_theta + _EPS]
                stats.candidates_generated += int(window.size)
                if window.size:
                    upper = self.index.embedding.upper_bounds_to(coords, window)
                    accepted = window[upper <= theta + _EPS]
                    undecided = window[upper > theta + _EPS]
                    members.extend(int(self.global_ids[c]) for c in accepted)
                    stats.candidate_verifications += int(undecided.size)
                    if undecided.size:
                        targets = [int(self.global_ids[c]) for c in undecided]
                        if self.cascade is None:
                            distances = self.global_engine.one_to_many(
                                gid, targets
                            )
                            members.extend(
                                t for t, d in zip(targets, distances)
                                if d <= theta + _EPS
                            )
                        else:
                            # Structural stages prune the undecided band
                            # through the global engine (the foreign graph
                            # has no row in this shard's embedding, so the
                            # vantage stage cannot re-run — `prefiltered`).
                            ok_mask = self.global_engine.within(
                                gid, targets, theta,
                                cascade=self.cascade, prefiltered=True,
                            )
                            members.extend(
                                t for t, ok in zip(targets, ok_mask) if ok
                            )
        result = self.universe.encode_ids(
            np.fromiter(members, dtype=np.int64, count=len(members))
        )
        self._nbhd[gid] = result
        stats.exact_neighborhoods += 1
        return result

    # ------------------------------------------------------------------
    # Broadcast update (Theorems 6–8 on the shard tree)
    # ------------------------------------------------------------------
    def apply_update(
        self, selected: int, newly: BitsetDelta, covered: np.ndarray
    ) -> None:
        """Tighten this shard's bounds after ``selected`` (any shard) was
        added and the ids in the ``newly`` delta became covered."""
        self._update(self.index.tree.root, int(selected), newly, covered)

    def _update(
        self,
        node: NBTreeNode,
        selected: int,
        newly: BitsetDelta,
        covered: np.ndarray,
    ) -> None:
        bounds = self.bounds
        if bounds[node.node_id] == _NEG_INF:
            return
        stats = self.stats
        theta = self.theta
        centroid_global = int(self.global_ids[node.centroid])
        centroid_distance = float(
            self.global_engine(selected, centroid_global)
        )
        if centroid_distance - node.radius > 2.0 * theta + _EPS:
            stats.pruned_subtrees += 1
            return  # Theorem 6: no member's neighborhood changed.
        if node.is_leaf:
            gid = int(self.global_ids[node.graph_index])
            cached = self._nbhd.get(gid)
            if cached is not None:
                # Residual of the *local* part only — still an upper-bound
                # component; the coordinator adds foreign parts on top.
                bounds[node.node_id] = float(
                    bitset_kernel.uncovered_count(cached, covered)
                )
            elif centroid_distance <= theta + _EPS and (
                (position := self.universe.position(gid)) is not None
                and newly.test(position)
            ):
                bounds[node.node_id] = max(0.0, bounds[node.node_id] - 1.0)
            return
        if (
            node.diameter <= theta + _EPS
            and centroid_distance + node.radius <= theta + _EPS
        ):
            # Theorem 7: the whole cluster sits inside N(selected); one
            # decrement covers every member.
            decrement = newly.intersection_count(self._node_bits[node.node_id])
            if decrement:
                stats.batch_decrements += 1
                bounds[node.node_id] = max(
                    0.0, bounds[node.node_id] - float(decrement)
                )
            return
        for child in node.children:
            self._update(child, selected, newly, covered)


class RoundSearch:
    """One shard's lazy best-first walk for one greedy round.

    The coordinator pulls candidates with :meth:`next`; between pulls it
    reads :meth:`peek` to re-rank the shard against the others.  The walk
    shares the frontier's persistent bound array, so work done in one
    round keeps paying off in later rounds (and pulls that resolve leaves
    leave exact gains behind for the update step to refresh)."""

    def __init__(self, frontier: ShardFrontier, covered: np.ndarray):
        self.frontier = frontier
        self.covered = covered
        self._counter = itertools.count()
        self._heap: list[tuple[float, int, float, NBTreeNode]] = []
        root = frontier.index.tree.root
        root_bound = float(frontier.bounds[root.node_id])
        if root_bound != _NEG_INF:
            self._heap.append((-root_bound, next(self._counter), root_bound, root))

    def peek(self) -> float:
        """Upper bound on any local gain still obtainable this round."""
        return self._heap[0][2] if self._heap else _NEG_INF

    def next(
        self, min_useful: float, tie_gid: int | None
    ) -> tuple[int, float, np.ndarray] | None:
        """Advance to the next candidate whose local gain could still
        matter: strictly above ``min_useful``, or equal to it with a graph
        id smaller than ``tie_gid``.

        Returns ``(global id, exact local gain, local neighborhood bitset)``
        or ``None`` when the shard is exhausted for this round.  ``None`` is
        final: the thresholds only tighten as the round progresses, so a
        shard that cannot contribute now cannot contribute later in the
        same round."""
        frontier = self.frontier
        bounds = frontier.bounds
        min_gid = frontier._node_min_gid
        heap = self._heap
        stats = frontier.stats
        while heap:
            _, _, pushed_bound, node = heapq.heappop(heap)
            stats.nodes_popped += 1
            if pushed_bound < min_useful:
                # Everything left is no better; park the entry so peek()
                # stays honest for the coordinator's ranking.
                heapq.heappush(
                    heap,
                    (-pushed_bound, next(self._counter), pushed_bound, node),
                )
                return None
            if (
                tie_gid is not None
                and pushed_bound == min_useful
                and min_gid[node.node_id] > tie_gid
            ):
                continue  # can tie but never win the id tie-break
            current = min(pushed_bound, float(bounds[node.node_id]))
            if current < min_useful or (
                tie_gid is not None
                and current == min_useful
                and min_gid[node.node_id] > tie_gid
            ):
                continue
            if node.is_leaf:
                if bounds[node.node_id] == _NEG_INF:
                    continue
                gid = int(frontier.global_ids[node.graph_index])
                neighborhood = frontier.neighborhood_of(gid)
                gain = float(
                    bitset_kernel.uncovered_count(neighborhood, self.covered)
                )
                bounds[node.node_id] = gain
                stats.leaves_evaluated += 1
                return gid, gain, neighborhood
            for child in node.children:
                if not frontier._node_has[child.node_id]:
                    continue
                child_bound = min(float(bounds[child.node_id]), current)
                if child_bound == _NEG_INF:
                    continue
                if child_bound > min_useful or (
                    child_bound == min_useful
                    and (tie_gid is None or min_gid[child.node_id] < tie_gid)
                ):
                    heapq.heappush(
                        heap,
                        (-child_bound, next(self._counter), child_bound, child),
                    )
        return None

"""Database partitioners: assign every graph to one of S shards.

Two strategies, both deterministic for a fixed (database, S, seed):

* **hash** — crc32 of each graph's canonical form modulo S.  The digest is
  the same one :func:`~repro.index.persistence.database_fingerprint` uses,
  so the assignment is a pure function of graph *structure*: stable across
  processes, reorderings of equal databases, and Python hash randomization.
* **clustering** — farthest-first traversal picks S pivot graphs, then
  every graph joins its nearest pivot's shard (ties to the lowest pivot).
  Metrically compact shards keep θ-neighborhoods shard-local, which is what
  the coordinator's foreign-shard work scales with.

Correctness never depends on the partitioner — the scatter-gather greedy
returns bit-identical answers for *any* assignment — so partitioners are
free to optimize locality only.  Every shard is guaranteed non-empty (an
empty shard would produce an unloadable empty sub-database): empty slots
steal the smallest-id graph from the largest shard, deterministically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.shard.errors import PartitionError
from repro.utils.validation import require


@dataclass(frozen=True)
class Partition:
    """A complete shard assignment: ``assignments[gid] -> shard id``."""

    assignments: np.ndarray
    num_shards: int
    partitioner: str
    seed: int | None = None

    def members(self, shard_id: int) -> np.ndarray:
        """Global graph ids assigned to ``shard_id``, ascending."""
        return np.flatnonzero(self.assignments == shard_id)

    def sizes(self) -> list[int]:
        return [int(self.members(s).size) for s in range(self.num_shards)]


def _ensure_nonempty(assignments: np.ndarray, num_shards: int) -> np.ndarray:
    """Deterministically repair empty shards by stealing one graph each
    from the currently largest shard (smallest donor id moves)."""
    assignments = assignments.copy()
    for shard in range(num_shards):
        if np.any(assignments == shard):
            continue
        counts = np.bincount(assignments, minlength=num_shards)
        donor = int(np.argmax(counts))
        if counts[donor] <= 1:
            raise PartitionError(
                f"cannot repair empty shard {shard}: no shard has more "
                f"than one graph"
            )
        moved = int(np.flatnonzero(assignments == donor)[0])
        assignments[moved] = shard
    return assignments


class HashPartitioner:
    """Structure-hash assignment: ``crc32(canonical_form(g)) mod S``."""

    name = "hash"

    def assign(
        self,
        database: GraphDatabase,
        num_shards: int,
        *,
        seed: int | None = None,
        engine=None,
    ) -> Partition:
        digests = np.array(
            [zlib.crc32(repr(g.canonical_form()).encode()) for g in database],
            dtype=np.uint64,
        )
        assignments = (digests % np.uint64(num_shards)).astype(np.int64)
        assignments = _ensure_nonempty(assignments, num_shards)
        return Partition(assignments, num_shards, self.name, seed)


class ClusteringPartitioner:
    """Metric-clustering assignment: farthest-first pivots, nearest-pivot
    membership.

    Needs distances: pass a :class:`~repro.engine.DistanceEngine` attached
    to the database (the pivot scans run as batches and land in the shared
    pair cache, so the subsequent per-shard builds reuse them).
    """

    name = "clustering"

    def assign(
        self,
        database: GraphDatabase,
        num_shards: int,
        *,
        seed: int | None = None,
        engine=None,
    ) -> Partition:
        require(engine is not None, "clustering partitioner needs an engine")
        n = len(database)
        rng = np.random.default_rng(seed)

        def scan(pivot: int) -> np.ndarray:
            return np.asarray(
                engine.one_to_many(int(pivot), range(n)), dtype=float
            )

        first = int(rng.integers(n))
        pivots = [first]
        pivot_rows = [scan(first)]
        min_dist = pivot_rows[0].copy()
        while len(pivots) < num_shards:
            nxt = int(np.argmax(min_dist))
            pivots.append(nxt)
            pivot_rows.append(scan(nxt))
            np.minimum(min_dist, pivot_rows[-1], out=min_dist)
        # Nearest pivot wins; np.argmin resolves distance ties to the
        # earliest-selected pivot, which is itself seed-deterministic.
        matrix = np.vstack(pivot_rows)
        assignments = np.argmin(matrix, axis=0).astype(np.int64)
        assignments = _ensure_nonempty(assignments, num_shards)
        return Partition(assignments, num_shards, self.name, seed)


PARTITIONERS = {p.name: p for p in (HashPartitioner(), ClusteringPartitioner())}


def get_partitioner(name: str):
    """Look up a partitioner by name (``hash`` or ``clustering``)."""
    try:
        return PARTITIONERS[name]
    except KeyError:
        raise PartitionError(
            f"unknown partitioner {name!r}; available: "
            f"{sorted(PARTITIONERS)}"
        ) from None

"""Typed errors for the sharded index layer.

:class:`ManifestError` derives from
:class:`~repro.resilience.errors.PersistenceError` so the query service's
reload path treats a bad manifest exactly like a bad single-index artifact:
report once, keep serving the previous generation.
"""

from __future__ import annotations

from repro.resilience.errors import PersistenceError


class ShardError(Exception):
    """Base class for operational sharding failures."""


class PartitionError(ValueError):
    """Invalid partition specification (unknown partitioner, bad S, ...)."""


class ManifestError(PersistenceError):
    """Shard manifest is unreadable, corrupt, or from an unknown schema."""

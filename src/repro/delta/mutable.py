"""`MutableIndex`: live insert/delete/update over a served NB-Index.

The LSM shape, specialized to the NB-Index:

* **memtable** — graphs appended after the last compaction live only in
  the database (ids ``indexed_count ..``); queries scan them *exactly*
  through an :class:`~repro.delta.frontier.ExactFrontier` that sits next
  to the indexed shard frontiers in the same coordinator loop.
* **tombstones** — deletes are soft
  (:meth:`~repro.graphs.database.GraphDatabase.mark_deleted`): the graph
  stays addressable so every tree/embedding structure remains valid, but
  ``relevant_indices`` masks it out of ``L_q``, which is the row every
  coverage bitset is built from — a deleted graph can neither be an
  answer nor be covered.
* **updates** — ids are content-immutable (the engines' pair caches and
  the shards' cached foreign coordinates key on them), so an update is
  tombstone-old + insert-new and returns the *new* id.
* **journal** — an optional
  :class:`~repro.delta.journal.MutationJournal` makes mutations durable:
  base file + journal replay = database, fsynced per record.
* **compaction** — :meth:`compact` rebuilds the base over the merged
  view (a prefix snapshot of the live database) *outside* the latch and
  swaps it under the write side, bumping a generation counter.  For a
  sharded base only the shards whose member sets changed are rebuilt —
  unchanged shards keep their artifacts, byte checksums and loaded
  objects (PR 5's hot-reload reuse, extended from "rebuild offline" to
  "compact online").  The new manifest's atomic rename is the commit
  point; any failure before it rolls back with the old generation still
  serving (and the old manifest still on disk).

Answer invariant (the acceptance gate): after any mutation sequence,
with or without interleaved compactions, ``query()`` is bit-identical —
ids, gains, order, coverage — to a from-scratch build over the mutated
database.  The coordinator's canonical (max gain, min id) selection rule
makes answers independent of how the database is split between indexed
shards and the exactly-scanned memtable.
"""

from __future__ import annotations

import os
import time
import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.bitset import BitsetUniverse
from repro.core.results import QueryResult, QueryStats
from repro.delta.errors import CompactionError
from repro.delta.frontier import ExactFrontier
from repro.delta.journal import MutationJournal
from repro.graphs.database import GraphDatabase
from repro.index.errors import OffLadderThetaError
from repro.index.nbindex import NBIndex
from repro.index.persistence import save_index
from repro.resilience import faults
from repro.resilience.atomicio import unwrap_checksummed
from repro.service.latch import ReadWriteLatch
from repro.shard.coordinator import (
    new_coord,
    record_coordinator_obs,
    run_greedy,
)
from repro.shard.frontier import ShardFrontier
from repro.utils.validation import require, require_positive


class MutableIndex:
    """A live index: a base (NBIndex or ShardedIndex) plus a memtable.

    Build one through :func:`repro.open_index` with ``mutable=True``.
    All methods are thread-safe: mutations and compaction swaps take the
    write side of an internal latch, queries the read side.
    """

    #: The facade's capability flag — read-only indexes carry ``False``.
    mutable = True

    def __init__(
        self,
        database: GraphDatabase,
        base,
        *,
        distance,
        workers: int | None = None,
        journal: MutationJournal | None = None,
        manifest_path: str | Path | None = None,
        index_path: str | Path | None = None,
        seed: int = 0,
    ):
        from repro.engine import DistanceEngine

        self.database = database  # the LIVE database; grows in place
        self.base = base
        self.distance = distance
        self.workers = workers
        self.journal = journal
        self.manifest_path = (
            Path(manifest_path) if manifest_path is not None else None
        )
        self.index_path = Path(index_path) if index_path is not None else None
        self.seed = int(seed)
        self.latch = ReadWriteLatch()
        self.generation = 0
        self.compactions = 0
        self.compaction_failures = 0
        #: Graphs with ids below this are covered by the base index;
        #: everything at or above is memtable, scanned exactly.
        self.indexed_count = self._base_count(base)
        require(
            self.indexed_count <= len(database),
            f"base covers {self.indexed_count} graphs but the database "
            f"has only {len(database)}",
        )
        # The mutation layer's own global engine: plain (no vantage
        # embedding attached — memtable graphs have no coordinates), over
        # the live graph list, so appended graphs are immediately
        # reachable.  Shard engines keep speaking local ids; this one
        # speaks global ids only.
        self.engine = DistanceEngine(
            distance, workers=workers, graphs=database.graphs
        )

    @staticmethod
    def _base_count(base) -> int:
        if hasattr(base, "manifest"):
            return int(base.manifest.num_graphs)
        return len(base.database)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ladder(self):
        return self.base.ladder

    @property
    def memtable_size(self) -> int:
        return len(self.database) - self.indexed_count

    @property
    def tombstones(self) -> int:
        return len(self.database.deleted)

    @property
    def num_shards(self) -> int:
        return getattr(self.base, "num_shards", 1)

    @property
    def tree_nodes(self) -> int:
        if hasattr(self.base, "tree_nodes"):
            return self.base.tree_nodes
        return self.base.tree.num_nodes

    def stats(self) -> dict:
        """Statable protocol: the base's normalized stats plus a
        ``delta`` section describing the mutation layer."""
        with self.latch.read():
            out = dict(self.base.stats())
            out["num_graphs"] = len(self.database)
            out["distance_calls"] = (
                out.get("distance_calls", 0) + self.engine.calls
            )
            out["mutable"] = True
            out["delta"] = {
                "memtable_size": self.memtable_size,
                "tombstones": self.tombstones,
                "indexed_graphs": self.indexed_count,
                "generation": self.generation,
                "compactions": self.compactions,
                "compaction_failures": self.compaction_failures,
                "journal_records": (
                    self.journal.num_records
                    if self.journal is not None else 0
                ),
                "journal_torn_tails": (
                    self.journal.torn_tail_repairs
                    if self.journal is not None else 0
                ),
                "journal_generation": (
                    self.journal.generation
                    if self.journal is not None else 0
                ),
            }
        return out

    # ------------------------------------------------------------------
    # Mutations (write latch; journaled before acknowledging)
    # ------------------------------------------------------------------
    def insert(self, graph, feature_row) -> int:
        """Append one graph; it is queryable immediately (memtable).
        Returns its global id."""
        with self.latch.write():
            gid = self.database.append(graph, feature_row)
            self.engine.invalidate_pool()
            if self.journal is not None:
                self.journal.append_insert(gid, self.database[gid], feature_row)
        obs.counter("delta.inserts")
        self._memtable_gauges()
        return gid

    def delete(self, gid: int) -> bool:
        """Tombstone one graph.  Returns ``False`` if it was already
        deleted (idempotent), ``True`` otherwise."""
        with self.latch.write():
            require(
                0 <= int(gid) < len(self.database),
                f"gid {gid} outside 0..{len(self.database) - 1}",
            )
            if self.database.is_deleted(gid):
                return False
            self.database.mark_deleted(gid)
            if self.journal is not None:
                self.journal.append_delete(gid)
        obs.counter("delta.deletes")
        self._memtable_gauges()
        return True

    def update(self, gid: int, graph, feature_row) -> int:
        """Replace one graph: tombstone ``gid``, insert the replacement.

        Returns the replacement's *new* id — ids are content-immutable
        (engine pair caches and cached shard coordinates key on them), so
        an update never rewrites a graph in place."""
        with self.latch.write():
            require(
                0 <= int(gid) < len(self.database),
                f"gid {gid} outside 0..{len(self.database) - 1}",
            )
            require(
                not self.database.is_deleted(gid),
                f"gid {gid} is already deleted",
            )
            new_id = self.database.append(graph, feature_row)
            self.database.mark_deleted(gid)
            self.engine.invalidate_pool()
            if self.journal is not None:
                self.journal.append_update(
                    gid, new_id, self.database[new_id], feature_row
                )
        obs.counter("delta.updates")
        self._memtable_gauges()
        return new_id

    def _memtable_gauges(self) -> None:
        if obs.enabled():
            obs.gauge("delta.memtable_size", self.memtable_size)
            obs.gauge("delta.tombstones", self.tombstones)
            obs.gauge("delta.generation", self.generation)

    # ------------------------------------------------------------------
    # Queries (read latch for the whole query)
    # ------------------------------------------------------------------
    def query(self, query_fn, theta: float, k: int, **kwargs) -> QueryResult:
        unknown = set(kwargs) - NBIndex._QUERY_KWARGS
        if unknown:
            raise TypeError(
                f"MutableIndex.query() got unexpected keyword arguments "
                f"{sorted(unknown)}; accepted: {sorted(NBIndex._QUERY_KWARGS)}"
            )
        with self.latch.read():
            return MutableQuerySession(self, query_fn).query(theta, k, **kwargs)

    # ------------------------------------------------------------------
    # Compaction (build outside the latch, swap under it)
    # ------------------------------------------------------------------
    def compact(self) -> dict:
        """Absorb the memtable into the base index, one shard at a time.

        Concurrent queries keep serving the old generation while the new
        one builds; concurrent mutations keep landing (anything appended
        after the snapshot stays in the memtable).  On any failure the
        old generation — in memory *and* on disk — keeps serving and
        :class:`~repro.delta.errors.CompactionError` is raised; the
        rollback is reported once via ``delta.compaction_rollbacks``.
        """
        with self.latch.read():
            base = self.base
            n1 = len(self.database)
            absorbed = n1 - self.indexed_count
            if not absorbed:
                return {
                    "generation": self.generation,
                    "absorbed": 0,
                    "rebuilt_shards": [],
                    "reused_shards": self.num_shards,
                    "skipped": True,
                }
            # Prefix snapshot: ids 0..n1-1, content-identical to the live
            # database (appends only ever extend, never rewrite), so the
            # new base's structures line up with live global ids.
            snapshot = self.database.subset(range(n1))
        started = time.perf_counter()
        try:
            with obs.span(
                "delta.compact", absorbed=absorbed,
                generation=self.generation + 1,
            ):
                faults.maybe_slow("delta.compact")
                if hasattr(base, "manifest"):
                    new_base, report = self._compact_sharded(
                        base, snapshot, n1
                    )
                else:
                    new_base, report = self._compact_single(
                        base, snapshot, n1
                    )
        except Exception as error:
            self.compaction_failures += 1
            obs.counter("delta.compaction_failures")
            obs.counter("delta.compaction_rollbacks")
            raise CompactionError(
                f"compaction failed and was rolled back — generation "
                f"{self.generation} still serving: "
                f"{type(error).__name__}: {error}"
            ) from error
        with self.latch.write():
            self.base = new_base
            self.indexed_count = n1
            self.generation += 1
            self.compactions += 1
        obs.counter("delta.compactions")
        obs.observe_time(
            "delta.compact_seconds", time.perf_counter() - started
        )
        self._memtable_gauges()
        report.update(
            generation=self.generation, absorbed=absorbed,
            seconds=round(time.perf_counter() - started, 6),
        )
        return report

    def _compact_single(self, base: NBIndex, snapshot, n1: int):
        """Full rebuild — a single NBIndex has exactly one 'shard'."""
        new_index = NBIndex.build(
            snapshot,
            self.distance,
            num_vantage_points=min(
                base.embedding.num_vantage_points, len(snapshot)
            ),
            branching=base.tree.branching,
            thresholds=base.ladder,
            seed=np.random.default_rng(self.seed),
            workers=self.workers,
        )
        if self.index_path is not None:
            # Stage → verify → atomic rename, so a torn write can never
            # replace the serving artifact.
            staging = self.index_path.with_name(
                self.index_path.name + f".gen{self.generation + 1:04d}"
            )
            save_index(new_index, staging)
            unwrap_checksummed(staging.read_bytes(), source=str(staging))
            faults.maybe_abort_stage("delta.compact.commit")
            os.replace(staging, self.index_path)
        else:
            faults.maybe_abort_stage("delta.compact.commit")
        return new_index, {"rebuilt_shards": [0], "reused_shards": 0}

    def _compact_sharded(self, base, snapshot, n1: int):
        """Rebuild only the shards whose member sets changed.

        Existing graphs keep their shard; memtable graphs are routed by
        the same structure hash the hash partitioner uses (stable across
        compactions).  Unchanged shards keep their artifacts, checksums
        and loaded index objects."""
        from repro.index.pivec import ThresholdLadder
        from repro.shard.manifest import (
            ShardEntry,
            ShardManifest,
            database_checksum,
        )
        from repro.shard.sharded import ShardedIndex

        manifest = base.manifest
        n0 = manifest.num_graphs
        num_shards = manifest.num_shards
        generation = self.generation + 1
        manifest_path = self.manifest_path or base.path
        require(
            manifest_path is not None,
            "sharded compaction needs the manifest path",
        )
        out_dir = Path(manifest_path).parent

        digests = np.array(
            [
                zlib.crc32(repr(snapshot[g].canonical_form()).encode())
                for g in range(n0, n1)
            ],
            dtype=np.uint64,
        )
        assignments = np.concatenate([
            manifest.assignments,
            (digests % np.uint64(num_shards)).astype(np.int64),
        ])
        changed = sorted({int(a) for a in assignments[n0:]})

        ladder = ThresholdLadder(manifest.ladder)
        root_seed = manifest.seed if manifest.seed is not None else self.seed
        shard_seeds = np.random.SeedSequence(root_seed).spawn(num_shards)
        entries: list[ShardEntry] = []
        shards: list[NBIndex] = []
        for shard_id in range(num_shards):
            if shard_id not in changed:
                entries.append(manifest.shards[shard_id])
                shards.append(base.shards[shard_id])
                continue
            members = np.flatnonzero(assignments == shard_id)
            sub = snapshot.subset([int(i) for i in members])
            index = NBIndex.build(
                sub,
                self.distance,
                num_vantage_points=min(
                    int(manifest.build.get("num_vantage_points", 20)),
                    len(sub),
                ),
                branching=int(manifest.build.get("branching", 8)),
                thresholds=ladder,
                seed=np.random.default_rng(shard_seeds[shard_id]),
                workers=self.workers,
            )
            artifact = out_dir / (
                f"shard-{shard_id:03d}-gen{generation:04d}.npz"
            )
            save_index(index, artifact)
            raw = artifact.read_bytes()
            # Verify before the manifest references it: a torn artifact
            # write must fail the compaction, not the next load.
            unwrap_checksummed(raw, source=str(artifact))
            if index.engine is not None:
                index.engine.invalidate_pool()
            entries.append(ShardEntry(
                shard_id=shard_id,
                path=artifact.name,
                checksum=zlib.crc32(raw),
                num_graphs=len(sub),
            ))
            shards.append(index)
            obs.counter("delta.shard_rebuilds")
            faults.maybe_abort_stage("delta.compact.shard")

        faults.maybe_abort_stage("delta.compact.commit")
        new_manifest = ShardManifest(
            num_shards=num_shards,
            num_graphs=n1,
            partitioner=manifest.partitioner,
            seed=manifest.seed,
            ladder=manifest.ladder,
            assignments=assignments,
            database_checksum=database_checksum(snapshot),
            shards=tuple(entries),
            build={
                **manifest.build,
                "generation": generation,
                "compacted": True,
            },
        )
        new_manifest.save(manifest_path)  # atomic rename = commit point

        from repro.engine import DistanceEngine

        new_base = ShardedIndex(
            snapshot,
            self.distance,
            shards=shards,
            manifest=new_manifest,
            engine=DistanceEngine(
                self.distance, workers=self.workers, graphs=snapshot.graphs
            ),
            path=Path(manifest_path),
            reused_shards=num_shards - len(changed),
        )
        # Post-commit, best effort: superseded generation artifacts are
        # unreferenced by the new manifest and safe to drop.
        old_names = {entry.path for entry in manifest.shards}
        new_names = {entry.path for entry in new_manifest.shards}
        for name in old_names - new_names:
            try:
                (out_dir / name).unlink()
            except OSError:  # pragma: no cover - cleanup is advisory
                pass
        return new_base, {
            "rebuilt_shards": changed,
            "reused_shards": num_shards - len(changed),
        }

    # ------------------------------------------------------------------
    # Checkpoint (fold the journal into a fresh base database)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Fold the journal into a new generation-numbered base database.

        Compaction absorbs the memtable into the *index*; checkpointing
        folds the journal into the *base file*, so recovery replays a
        short (usually empty) journal over a fresh base instead of the
        whole mutation history.  Delegates to
        :func:`repro.durability.checkpoint`; raises
        :class:`~repro.durability.errors.CheckpointError` (with the old
        generation still serving) on any failure before the commit
        rename."""
        from repro.durability.checkpoint import checkpoint as _checkpoint

        return _checkpoint(self)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.engine.invalidate_pool()
        if hasattr(self.base, "invalidate_pools"):
            self.base.invalidate_pools()
        elif getattr(self.base, "engine", None) is not None:
            self.base.engine.invalidate_pool()
        if self.journal is not None:
            self.journal.close()

    invalidate_pools = close

    def __repr__(self) -> str:
        return (
            f"<MutableIndex n={len(self.database)} "
            f"indexed={self.indexed_count} memtable={self.memtable_size} "
            f"tombstones={self.tombstones} generation={self.generation}>"
        )


class MutableQuerySession:
    """Per-relevance-function state for queries over base + memtable.

    Mirrors :class:`~repro.shard.coordinator.ShardedQuerySession`; one
    extra frontier — the exactly-scanned delta — joins the pull loop."""

    def __init__(self, mutable: MutableIndex, query_fn):
        self.mutable = mutable
        self.query_fn = query_fn
        started = time.perf_counter()
        self.relevant = mutable.database.relevant_indices(query_fn)
        self.universe = BitsetUniverse(self.relevant)
        self.init_seconds = time.perf_counter() - started
        obs.observe_time("delta.session_init_seconds", self.init_seconds)

    def query(
        self,
        theta: float,
        k: int,
        stop_on_zero_gain: bool = False,
        enable_updates: bool = True,
        deadline=None,
        cascade=None,
        epsilon: float = 0.0,
    ) -> QueryResult:
        require_positive(theta, "theta")
        require_positive(k, "k")
        from repro.cascade import runtime_for
        from repro.resilience.deadline import current_deadline, deadline_scope

        runtime = runtime_for(cascade, epsilon)
        mutable = self.mutable
        base = mutable.base
        ladder_index = mutable.ladder.index_for(theta)
        if ladder_index is None:
            obs.counter("index.offladder_theta")
            raise OffLadderThetaError(theta, mutable.ladder)

        stats = QueryStats(init_seconds=self.init_seconds)
        calls_before = self._total_calls()
        effective_deadline = (
            deadline if deadline is not None else current_deadline()
        )
        degradations_before = (
            dict(effective_deadline.degradations)
            if effective_deadline is not None else {}
        )
        indexed = mutable.indexed_count
        base_rel = self.relevant[self.relevant < indexed]
        delta_rel = self.relevant[self.relevant >= indexed]

        with deadline_scope(deadline), obs.span(
            "delta.query", theta=theta, k=k,
            memtable=int(delta_rel.size),
        ) as query_span:
            started = time.perf_counter()
            if hasattr(base, "shards"):
                frontiers = [
                    ShardFrontier(
                        shard_id=s,
                        index=base.shards[s],
                        global_ids=base.global_ids[s],
                        relevant_global=base_rel,
                        global_engine=mutable.engine,
                        theta=theta,
                        ladder_index=ladder_index,
                        stats=stats,
                        universe=self.universe,
                        cascade=runtime,
                    )
                    for s in range(base.num_shards)
                ]
                shard_of = base.shard_of
            else:
                frontiers = [
                    ShardFrontier(
                        shard_id=0,
                        index=base,
                        global_ids=np.arange(indexed, dtype=np.int64),
                        relevant_global=base_rel,
                        global_engine=mutable.engine,
                        theta=theta,
                        ladder_index=ladder_index,
                        stats=stats,
                        universe=self.universe,
                        cascade=runtime,
                    )
                ]
                shard_of = np.zeros(indexed, dtype=np.int64)
            delta_frontier = ExactFrontier(
                delta_rel, self.universe, mutable.engine, theta, stats,
                cascade=runtime,
            )
            frontiers.append(delta_frontier)
            stats.init_seconds += time.perf_counter() - started

            coord = new_coord(len(frontiers))

            def home_of(gid: int):
                if gid >= indexed:
                    return delta_frontier
                return frontiers[int(shard_of[gid])]

            answer, gains, covered = run_greedy(
                frontiers,
                self.universe,
                home_of,
                k,
                int(self.relevant.size),
                stop_on_zero_gain=stop_on_zero_gain,
                enable_updates=enable_updates,
                stats=stats,
                coord=coord,
            )
            coord["memtable_relevant"] = int(delta_rel.size)
            stats.distance_calls = self._total_calls() - calls_before
            stats.coordinator = coord
            if runtime is not None:
                stats.epsilon = runtime.epsilon
                stats.approximate = runtime.approximate
                stats.cascade = runtime.snapshot()
            if effective_deadline is not None:
                delta = {
                    kind: count - degradations_before.get(kind, 0)
                    for kind, count in effective_deadline.degradations.items()
                    if count > degradations_before.get(kind, 0)
                }
                stats.degradations = delta
                stats.degradation_events = sum(delta.values())
                stats.degraded = bool(delta)
                if stats.degraded:
                    obs.counter("query.degraded")
            if obs.enabled():
                obs.counter("delta.query.count")
                record_coordinator_obs(coord, stats)
            query_span.set(
                answer_size=len(answer),
                degraded=stats.degraded,
                scatter_resolves=coord["scatter_resolves"],
            )
        return QueryResult(
            answer=answer,
            gains=gains,
            covered=self.universe.decode_frozenset(covered),
            num_relevant=int(self.relevant.size),
            theta=theta,
            stats=stats,
        )

    def _total_calls(self) -> int:
        mutable = self.mutable
        base = mutable.base
        total = mutable.engine.calls
        if hasattr(base, "shards"):
            total += base.engine.calls
            total += sum(shard._counting.calls for shard in base.shards)
        else:
            total += base._counting.calls
        return total

    def __repr__(self) -> str:
        return (
            f"<MutableQuerySession relevant={self.relevant.size} "
            f"memtable={self.mutable.memtable_size}>"
        )

"""The delta-shard frontier: un-indexed graphs, scanned exactly.

Memtable graphs have no NB-Tree, no vantage embedding and no π̂ columns —
they were inserted after the last compaction.  Instead of approximating,
the :class:`ExactFrontier` computes its members' θ-neighborhoods (within
the delta's own relevant set) *exactly* at session start: one batched
``within`` scan per member through the live global engine.  That is the
LSM trade the memtable makes — O(m²) distances over a structure kept
small by background compaction buys bounds that are not bounds at all
but exact gains, so the coordinator's threshold-algorithm pull treats
the delta like a shard whose ladder is always tight.

The frontier speaks the same protocol as
:class:`~repro.shard.frontier.ShardFrontier` (see
:func:`repro.shard.coordinator.run_greedy`), so the coordinator needs no
special case: the canonical (max gain, min id) rule merges indexed and
un-indexed candidates bit-identically to a from-scratch build over the
mutated database.

Id discipline: everything here is *global* ids through the *global*
engine — delta graphs exist only in the live database, never in a
shard's renumbered sub-database.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.bitset import BitsetDelta, BitsetUniverse, kernel as bitset_kernel

_EPS = 1e-9
_NEG_INF = float("-inf")
#: Tie-break sentinel for an empty delta (loses to any real graph id).
_NO_GID = 2**63 - 1


class ExactFrontier:
    """The memtable's state for one coordinated (θ, k) query."""

    def __init__(
        self,
        relevant_global: np.ndarray,
        universe: BitsetUniverse,
        global_engine,
        theta: float,
        stats,
        cascade=None,
    ):
        self.relevant_global = np.asarray(relevant_global, dtype=np.int64)
        self.universe = universe
        self.global_engine = global_engine
        self.theta = float(theta)
        self.stats = stats
        #: Shared per-query filter cascade (None → legacy exact scan).
        self.cascade = cascade
        self.member_set = frozenset(int(g) for g in self.relevant_global)
        self._position = {
            int(g): p for p, g in enumerate(self.relevant_global)
        }
        self._rel_positions = universe.positions_of(self.relevant_global)
        self.member_bits = universe.encode_positions(self._rel_positions)

        # Exact θ-neighborhoods among delta members: one row per member,
        # packed over the global universe.  This is the "scanned exactly"
        # part — no tree, no ladder, just distances.
        m = self.relevant_global.size
        self._rows = universe.empty_matrix(m)
        members = [int(g) for g in self.relevant_global]
        for p, gid in enumerate(members):
            mask = global_engine.within(
                gid, members, self.theta, cascade=cascade
            )
            stats.candidates_generated += m
            stats.candidate_verifications += m
            hits = [members[j] for j in np.flatnonzero(mask)]
            self._rows[p] = universe.encode_ids(
                np.asarray(hits, dtype=np.int64)
            )
            stats.exact_neighborhoods += 1

        self.bounds = bitset_kernel.popcount_rows(self._rows).astype(float)
        self._selected = np.zeros(m, dtype=bool)
        #: Exact neighborhoods of *foreign* (indexed) graphs within the
        #: delta's relevant set, keyed by global id.
        self._nbhd: dict[int, np.ndarray] = {}
        self._covered: np.ndarray | None = None
        self.uncovered_count = int(m)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self, covered: np.ndarray) -> None:
        """Refresh the exact per-member gains for one greedy round.

        Unlike a shard's lazily tightened tree bounds, the delta's bounds
        are recomputed exactly every round: one batch popcount over the
        member rows.  ``apply_update`` is therefore a no-op here."""
        self._covered = covered
        if not self.relevant_global.size:
            self.uncovered_count = 0
            return
        self.uncovered_count = bitset_kernel.uncovered_count(
            self.member_bits, covered
        )
        self.bounds = bitset_kernel.uncovered_counts(
            self._rows, covered
        ).astype(float)
        self.bounds[self._selected] = _NEG_INF

    def root_bound(self) -> float:
        if not self.bounds.size:
            return _NEG_INF
        return float(self.bounds.max())

    def min_gid_bound(self) -> int:
        if not self.relevant_global.size:
            return _NO_GID
        return int(self.relevant_global[0])

    @property
    def foreign_embeds(self) -> int:
        return 0  # no vantage points to embed against

    def open_round(self, covered: np.ndarray) -> "ExactRoundSearch":
        return ExactRoundSearch(self)

    def select(self, gid: int) -> None:
        position = self._position[int(gid)]
        self._selected[position] = True
        self.bounds[position] = _NEG_INF

    # ------------------------------------------------------------------
    # Neighborhood resolution (home and foreign graphs)
    # ------------------------------------------------------------------
    def pi_hat_uncovered(self, gid: int) -> int:
        """Upper bound on a foreign graph's gain inside the delta.

        With no embedding there is no Chebyshev refinement; an already
        resolved neighborhood gives the exact residual, otherwise the
        uncovered member count is the (trivially valid) bound."""
        if not self.uncovered_count:
            return 0
        cached = self._nbhd.get(int(gid))
        if cached is not None and self._covered is not None:
            return int(bitset_kernel.uncovered_count(cached, self._covered))
        return int(self.uncovered_count)

    def neighborhood_of(self, gid: int) -> np.ndarray:
        """``N_θ(gid) ∩ relevant(delta)`` as a packed global bitset, exact,
        cached.  Same ``d ≤ θ + ε`` predicate as every other frontier."""
        gid = int(gid)
        position = self._position.get(gid)
        if position is not None:
            return self._rows[position]
        cached = self._nbhd.get(gid)
        if cached is not None:
            return cached
        members = [int(g) for g in self.relevant_global]
        if members:
            mask = self.global_engine.within(
                gid, members, self.theta, cascade=self.cascade
            )
            hits = [members[j] for j in np.flatnonzero(mask)]
            self.stats.candidates_generated += len(members)
            self.stats.candidate_verifications += len(members)
        else:
            hits = []
        result = self.universe.encode_ids(np.asarray(hits, dtype=np.int64))
        self._nbhd[gid] = result
        self.stats.exact_neighborhoods += 1
        return result

    # ------------------------------------------------------------------
    def apply_update(
        self, selected: int, newly: BitsetDelta, covered: np.ndarray
    ) -> None:
        """No-op: :meth:`begin_round` recomputes every bound exactly."""

    def __repr__(self) -> str:
        return (
            f"<ExactFrontier members={self.relevant_global.size} "
            f"theta={self.theta}>"
        )


class ExactRoundSearch:
    """The delta's candidate cursor for one greedy round.

    The frontier's bounds are exact gains as of the round's start, so
    there is no walk to advance — just a heap ordered by
    (gain desc, gid asc), matching the canonical selection rule."""

    def __init__(self, frontier: ExactFrontier):
        self.frontier = frontier
        self._heap: list[tuple[float, int, int]] = [
            (-float(bound), int(gid), int(pos))
            for pos, (gid, bound) in enumerate(
                zip(frontier.relevant_global, frontier.bounds)
            )
            if bound != _NEG_INF
        ]
        heapq.heapify(self._heap)

    def peek(self) -> float:
        return -self._heap[0][0] if self._heap else _NEG_INF

    def next(
        self, min_useful: float, tie_gid: int | None
    ) -> tuple[int, float, np.ndarray] | None:
        heap = self._heap
        frontier = self.frontier
        while heap:
            neg_gain, gid, position = heap[0]
            gain = -neg_gain
            if gain < min_useful:
                return None  # heap max can't matter; keep peek() honest
            heapq.heappop(heap)
            if (
                tie_gid is not None
                and gain == min_useful
                and gid > tie_gid
            ):
                continue  # can tie but never win the id tie-break
            frontier.stats.leaves_evaluated += 1
            return gid, gain, frontier._rows[position]
        return None

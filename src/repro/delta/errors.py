"""Exception types for the mutation layer."""

from __future__ import annotations

from repro.resilience.errors import PersistenceError


class JournalError(PersistenceError):
    """The mutation journal is unusable: a record in the *middle* of the
    file fails its checksum or cannot be parsed.  (A torn *final* record is
    not an error — it is the expected shape of a crash mid-append and is
    truncated away on replay.)"""


class CompactionError(RuntimeError):
    """Online compaction failed and was rolled back.

    The previous generation keeps serving: the in-memory base index, the
    memtable, and the on-disk manifest are all untouched (the new manifest
    is the commit point and was never written, or its atomic rename never
    happened).  The cause is chained as ``__cause__``."""

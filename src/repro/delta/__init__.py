"""Live index mutations: delta-shard memtable + online compaction.

The NB-Index (and its sharded deployment) is built offline; this package
makes a built index *mutable* without giving up the paper's exact
answers.  The shape is a small LSM tree specialized to coverage search:

* inserts land in a **memtable** — the suffix of the live database past
  what the base index covers — and are scanned *exactly* by an extra
  coordinator frontier (:class:`~repro.delta.frontier.ExactFrontier`);
* deletes are **tombstones** masked out of the relevant set before any
  coverage bitset is built;
* a :class:`~repro.delta.journal.MutationJournal` makes mutations
  durable (append-only, crc-per-record, fsync before acknowledge);
* :meth:`MutableIndex.compact` absorbs the memtable by rebuilding only
  the shards whose member sets changed and swapping through the
  manifest's atomic-rename commit point — crash-safe, with the old
  generation still serving on any failure.

The invariant throughout: after any mutation sequence, with or without
interleaved compactions, query answers are **bit-identical** to a
from-scratch build over the mutated database.

Most callers should not import this package directly — use
:func:`repro.open_index` with ``mutable=True``.
"""

from repro.delta.errors import CompactionError, JournalError
from repro.delta.frontier import ExactFrontier
from repro.delta.journal import MutationJournal
from repro.delta.mutable import MutableIndex, MutableQuerySession

__all__ = [
    "CompactionError",
    "ExactFrontier",
    "JournalError",
    "MutableIndex",
    "MutableQuerySession",
]

"""The mutation journal: an append-only, per-record-checksummed log.

Durability for the memtable.  The base database file (``graphs/io``
JSONL) is never rewritten by mutations; instead every ``insert`` /
``delete`` / ``update`` appends one self-checksummed JSON line here, and
reopening an index replays the journal over the freshly loaded database —
``database = base file + journal``, exactly.  Compaction does **not**
truncate the journal (the base file still lacks the inserted graphs), so
insert records are retained for the life of the journal; rewriting the
base database and starting a fresh journal is an offline operation
(``save_database`` round-trips tombstones for exactly this purpose).

Crash safety is the LSM rule: each append is one line, flushed and
fsynced before the mutation is acknowledged.  On replay a torn *final*
line (the crash-mid-append signature) is truncated away with a warning
and an obs counter; a bad record anywhere *before* the tail means real
corruption and raises :class:`~repro.delta.errors.JournalError`.

Line format (one JSON object per line)::

    {"record": {"op": "insert", "gid": 7, "graph": {...},
                "features": [...]}, "crc32": 1234}

where ``crc32`` covers the canonical (sorted, compact) JSON of
``record``.  The first line is a header record carrying the schema tag.
"""

from __future__ import annotations

import json
import warnings
import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.delta.errors import JournalError
from repro.graphs.database import GraphDatabase
from repro.graphs.io import graph_from_dict, graph_to_dict

SCHEMA = "repro.mutation-journal/v1"


def _encode(record: dict) -> str:
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(canonical.encode())
    return json.dumps(
        {"record": record, "crc32": crc}, separators=(",", ":")
    )


def _decode(line: str) -> dict | None:
    """The record in one journal line, or ``None`` if the line is torn."""
    try:
        document = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(document, dict) or "record" not in document:
        return None
    record = document["record"]
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode()) != document.get("crc32"):
        return None
    return record


class MutationJournal:
    """Append-only mutation log bound to one file.

    Opening reads and validates every existing record (repairing a torn
    tail in place); :meth:`replay_into` then applies them to a freshly
    loaded database.  Afterwards the journal stays open for appends —
    every append is flushed and fsynced before it returns.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: list[dict] = []
        #: Torn final records truncated away on open — a nonzero value is
        #: the fingerprint of a crash mid-append (surfaced through
        #: ``MutableIndex.stats()["delta"]["journal_torn_tails"]``).
        self.torn_tail_repairs = 0
        self._load()
        self._handle = self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Open / recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            header = {"op": "open", "schema": SCHEMA}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w", encoding="utf-8") as handle:
                handle.write(_encode(header) + "\n")
                handle.flush()
            return
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        records: list[dict] = []
        keep_bytes = 0
        for i, line in enumerate(lines):
            if not line.strip():
                keep_bytes += len(line.encode()) + 1
                continue
            record = _decode(line)
            if record is None:
                if any(rest.strip() for rest in lines[i + 1:]):
                    raise JournalError(
                        f"{self.path}: journal record {i} fails its "
                        f"checksum with intact records after it — the "
                        f"file is corrupt, not torn"
                    )
                # Torn tail: the crash-mid-append signature.  Truncate it
                # away; the un-acknowledged mutation never happened.
                warnings.warn(
                    f"{self.path}: truncating torn final journal record",
                    RuntimeWarning,
                    stacklevel=4,
                )
                obs.counter("delta.journal_truncated")
                obs.counter("delta.journal_torn_tail")
                self.torn_tail_repairs += 1
                with self.path.open("r+", encoding="utf-8") as handle:
                    handle.truncate(keep_bytes)
                break
            if not records:
                if record.get("schema") != SCHEMA:
                    raise JournalError(
                        f"{self.path}: unsupported journal schema "
                        f"{record.get('schema')!r} (this build reads "
                        f"{SCHEMA!r})"
                    )
            records.append(record)
            keep_bytes += len(line.encode()) + 1
        if not records:
            raise JournalError(f"{self.path}: journal has no header record")
        self._records = records[1:]  # drop the header

    def replay_into(self, database: GraphDatabase) -> dict:
        """Apply every journaled mutation to ``database`` (which must be
        the freshly loaded base file).  Returns replay counts."""
        counts = {"inserts": 0, "deletes": 0, "updates": 0}
        for record in self._records:
            op = record["op"]
            if op in ("insert", "update"):
                graph = graph_from_dict(record["graph"])
                gid = database.append(
                    graph, np.asarray(record["features"], dtype=float)
                )
                if gid != int(record["gid"]):
                    raise JournalError(
                        f"{self.path}: replayed {op} landed at id {gid}, "
                        f"journal says {record['gid']} — journal and "
                        f"database file disagree"
                    )
                if op == "update":
                    database.mark_deleted(int(record["old_gid"]))
                counts["updates" if op == "update" else "inserts"] += 1
            elif op == "delete":
                database.mark_deleted(int(record["gid"]))
                counts["deletes"] += 1
            else:
                raise JournalError(
                    f"{self.path}: unknown journal op {op!r}"
                )
        return counts

    # ------------------------------------------------------------------
    # Appends (fsync before acknowledging)
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        import os

        self._handle.write(_encode(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._records.append(record)
        obs.counter("delta.journal_records")

    def append_insert(self, gid: int, graph, features) -> None:
        self._append({
            "op": "insert",
            "gid": int(gid),
            "graph": graph_to_dict(graph),
            "features": [float(x) for x in np.asarray(features).ravel()],
        })

    def append_delete(self, gid: int) -> None:
        self._append({"op": "delete", "gid": int(gid)})

    def append_update(self, old_gid: int, gid: int, graph, features) -> None:
        self._append({
            "op": "update",
            "old_gid": int(old_gid),
            "gid": int(gid),
            "graph": graph_to_dict(graph),
            "features": [float(x) for x in np.asarray(features).ravel()],
        })

    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Mutation records (header excluded)."""
        return len(self._records)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __repr__(self) -> str:
        return f"<MutationJournal {self.path} records={self.num_records}>"

"""The mutation journal: an append-only, per-record-checksummed log.

Durability for the memtable.  The base database file (``graphs/io``
JSONL) is never rewritten by mutations; instead every ``insert`` /
``delete`` / ``update`` appends one self-checksummed JSON line here, and
reopening an index replays the journal over the freshly loaded database —
``database = base file + journal``, exactly.  Compaction does **not**
truncate the journal (the base file still lacks the inserted graphs);
:func:`repro.durability.checkpoint` is the online operation that rewrites
the base database (``save_database`` round-trips tombstones for exactly
this purpose) and starts a fresh *generation* of this journal through
:meth:`MutationJournal.start_generation` — an atomic rename is the commit
point, so a crash at any moment leaves either the old generation or the
new one, never a mix.

Crash safety is the LSM rule: each append is one line, flushed and
fsynced before the mutation is acknowledged.  On replay a torn *final*
line (the crash-mid-append signature) is truncated away — byte-exactly,
in binary mode — with a warning and an obs counter; a bad record anywhere
*before* the tail means real corruption and raises
:class:`~repro.delta.errors.JournalError`.  Recovery streams the file
line by line, so reopening costs O(1) memory in the journal size beyond
the decoded records themselves.

Line format (one JSON object per line)::

    {"record": {"op": "insert", "gid": 7, "graph": {...},
                "features": [...]}, "crc32": 1234}

where ``crc32`` covers the canonical (sorted, compact) JSON of
``record``.  The first line is a header record carrying the schema tag
and, for checkpointed journals, the generation number plus a pointer to
(and a crc32 of) the rewritten base database file the records replay
onto.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.delta.errors import JournalError
from repro.graphs.database import GraphDatabase
from repro.graphs.io import graph_from_dict, graph_to_dict
from repro.resilience import faults

SCHEMA = "repro.mutation-journal/v1"


def _encode(record: dict) -> str:
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(canonical.encode())
    return json.dumps(
        {"record": record, "crc32": crc}, separators=(",", ":")
    )


def _decode(line: str) -> dict | None:
    """The record in one journal line, or ``None`` if the line is torn."""
    try:
        document = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(document, dict) or "record" not in document:
        return None
    record = document["record"]
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode()) != document.get("crc32"):
        return None
    return record


def _iter_journal_lines(path: Path):
    """Stream ``(offset, line_bytes)`` pairs without loading the file.

    ``offset`` is the byte position where the line starts; ``line_bytes``
    keeps its trailing newline (absent only on a torn final line), so
    ``offset + len(line_bytes)`` is always the exact truncation point
    *after* the line.
    """
    offset = 0
    with path.open("rb") as handle:
        for line in handle:
            yield offset, line
            offset += len(line)


def scan_journal(path: str | Path) -> dict:
    """Audit one journal file without mutating it.

    Streams every line, verifying the per-record crc32 and the header,
    and reports what a reopen would see::

        {"records": N,            # valid mutation records (header excluded)
         "generation": G, "base": name-or-None, "base_crc32": crc-or-None,
         "torn_tail": bool,       # final line fails its checksum
         "problems": [...]}       # mid-file corruption / header trouble

    A torn tail is *not* a problem — it is the expected shape of a crash
    (or a concurrent append caught mid-write) and reopening repairs it.
    Anything in ``problems`` means the journal cannot replay.  Used by
    ``repro verify`` and the background scrubber, which must never
    truncate a live file the way :class:`MutationJournal` does on open.
    """
    path = Path(path)
    report = {
        "records": 0, "generation": 0, "base": None, "base_crc32": None,
        "torn_tail": False, "problems": [],
    }
    if not path.exists():
        report["problems"].append(f"{path}: journal file does not exist")
        return report
    header_seen = False
    bad_at: int | None = None
    index = 0
    for _offset, raw in _iter_journal_lines(path):
        line = raw.decode("utf-8", errors="replace")
        if not line.strip():
            index += 1
            continue
        if bad_at is not None:
            # Valid-looking bytes after a bad record: corruption, not a
            # torn tail.
            report["problems"].append(
                f"{path}: record {bad_at} fails its checksum with intact "
                f"records after it — corrupt, not torn"
            )
            bad_at = None
            report["torn_tail"] = False
        record = _decode(line)
        if record is None or not raw.endswith(b"\n"):
            bad_at = index
            report["torn_tail"] = True
            index += 1
            continue
        if not header_seen:
            header_seen = True
            if record.get("schema") != SCHEMA:
                report["problems"].append(
                    f"{path}: unsupported journal schema "
                    f"{record.get('schema')!r}"
                )
            report["generation"] = int(record.get("generation", 0))
            report["base"] = record.get("base")
            base_crc = record.get("base_crc32")
            report["base_crc32"] = (
                None if base_crc is None else int(base_crc)
            )
        else:
            report["records"] += 1
        index += 1
    if not header_seen and not report["torn_tail"]:
        report["problems"].append(f"{path}: journal has no header record")
    return report


class MutationJournal:
    """Append-only mutation log bound to one file.

    Opening reads and validates every existing record (repairing a torn
    tail in place); :meth:`replay_into` then applies them to a freshly
    loaded database.  Afterwards the journal stays open for appends —
    every append is flushed and fsynced before it returns.

    A checkpointed journal (generation > 0) additionally pins its own
    base database file: :attr:`base_name` / :attr:`base_crc32` name the
    rewritten base next to the journal, and :func:`repro.open_index`
    loads *that* file (crc-verified) instead of the original database.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: list[dict] = []
        #: Torn final records truncated away on open — a nonzero value is
        #: the fingerprint of a crash mid-append (surfaced through
        #: ``MutableIndex.stats()["delta"]["journal_torn_tails"]``).
        self.torn_tail_repairs = 0
        #: Checkpoint generation (0 = the original base database file).
        self.generation = 0
        #: Relative filename of the checkpointed base database next to
        #: this journal, or ``None`` at generation 0.
        self.base_name: str | None = None
        #: crc32 of the checkpointed base file's bytes (``None`` at
        #: generation 0) — verified before the base is trusted.
        self.base_crc32: int | None = None
        self._load()
        self._handle = self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Open / recovery
    # ------------------------------------------------------------------
    def _header_record(self) -> dict:
        header = {"op": "open", "schema": SCHEMA}
        if self.generation:
            header["generation"] = self.generation
            header["base"] = self.base_name
            header["base_crc32"] = self.base_crc32
        return header

    def _load(self) -> None:
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w", encoding="utf-8") as handle:
                handle.write(_encode(self._header_record()) + "\n")
                handle.flush()
            return
        # Stream line by line in binary mode: recovery memory stays O(1)
        # in the file size, and the truncation point is byte-exact (no
        # text-mode newline arithmetic).
        records: list[dict] = []
        torn_at: int | None = None
        keep_bytes = 0
        index = 0
        for offset, raw in _iter_journal_lines(self.path):
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                if torn_at is None:
                    keep_bytes = offset + len(raw)
                index += 1
                continue
            if torn_at is not None:
                raise JournalError(
                    f"{self.path}: journal record {torn_at} fails its "
                    f"checksum with intact records after it — the "
                    f"file is corrupt, not torn"
                )
            record = _decode(line)
            if record is None or not raw.endswith(b"\n"):
                # Candidate torn tail; only confirmed if nothing valid
                # follows.  (A final line without its newline is torn by
                # definition — appends write the newline in the same
                # buffer as the record.)
                torn_at = index
                index += 1
                continue
            if not records:
                if record.get("schema") != SCHEMA:
                    raise JournalError(
                        f"{self.path}: unsupported journal schema "
                        f"{record.get('schema')!r} (this build reads "
                        f"{SCHEMA!r})"
                    )
                self.generation = int(record.get("generation", 0))
                self.base_name = record.get("base")
                base_crc = record.get("base_crc32")
                self.base_crc32 = (
                    None if base_crc is None else int(base_crc)
                )
            records.append(record)
            keep_bytes = offset + len(raw)
            index += 1
        if torn_at is not None:
            # Torn tail: the crash-mid-append signature.  Truncate it
            # away; the un-acknowledged mutation never happened.
            warnings.warn(
                f"{self.path}: truncating torn final journal record",
                RuntimeWarning,
                stacklevel=4,
            )
            obs.counter("delta.journal_truncated")
            obs.counter("delta.journal_torn_tail")
            self.torn_tail_repairs += 1
            with self.path.open("r+b") as handle:
                handle.truncate(keep_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        if not records:
            raise JournalError(f"{self.path}: journal has no header record")
        self._records = records[1:]  # drop the header

    def replay_into(self, database: GraphDatabase) -> dict:
        """Apply every journaled mutation to ``database`` (which must be
        the freshly loaded base file).  Returns replay counts."""
        counts = {"inserts": 0, "deletes": 0, "updates": 0}
        for record in self._records:
            op = record["op"]
            if op in ("insert", "update"):
                graph = graph_from_dict(record["graph"])
                gid = database.append(
                    graph, np.asarray(record["features"], dtype=float)
                )
                if gid != int(record["gid"]):
                    raise JournalError(
                        f"{self.path}: replayed {op} landed at id {gid}, "
                        f"journal says {record['gid']} — journal and "
                        f"database file disagree"
                    )
                if op == "update":
                    database.mark_deleted(int(record["old_gid"]))
                counts["updates" if op == "update" else "inserts"] += 1
            elif op == "delete":
                database.mark_deleted(int(record["gid"]))
                counts["deletes"] += 1
            else:
                raise JournalError(
                    f"{self.path}: unknown journal op {op!r}"
                )
        return counts

    # ------------------------------------------------------------------
    # Appends (fsync before acknowledging)
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        self._handle.write(_encode(record) + "\n")
        self._handle.flush()
        faults.maybe_kill_at("durability.journal.append")
        os.fsync(self._handle.fileno())
        faults.maybe_kill_at("durability.journal.fsync")
        self._records.append(record)
        obs.counter("delta.journal_records")

    def append_insert(self, gid: int, graph, features) -> None:
        self._append({
            "op": "insert",
            "gid": int(gid),
            "graph": graph_to_dict(graph),
            "features": [float(x) for x in np.asarray(features).ravel()],
        })

    def append_delete(self, gid: int) -> None:
        self._append({"op": "delete", "gid": int(gid)})

    def append_update(self, old_gid: int, gid: int, graph, features) -> None:
        self._append({
            "op": "update",
            "old_gid": int(old_gid),
            "gid": int(gid),
            "graph": graph_to_dict(graph),
            "features": [float(x) for x in np.asarray(features).ravel()],
        })

    # ------------------------------------------------------------------
    # Checkpoint generations
    # ------------------------------------------------------------------
    def start_generation(
        self,
        *,
        base_name: str,
        base_crc32: int,
        carried_records: list[dict],
    ) -> None:
        """Swap in a fresh generation of this journal, atomically.

        Writes a complete replacement journal — new header pinning
        ``base_name``/``base_crc32``, then ``carried_records`` (mutations
        that landed after the checkpoint snapshot and are therefore not
        folded into the new base) — to a staging file, fsyncs it, and
        ``os.replace``s it over the live path.  The rename is the commit
        point: a crash before it leaves the old generation fully intact,
        a crash after it leaves the new one fully intact.

        Callers (:func:`repro.durability.checkpoint`) must hold the
        index's write latch: the live append handle is closed and
        reopened across the swap.
        """
        new_generation = self.generation + 1
        staging = self.path.with_name(
            self.path.name + f".gen{new_generation:04d}.tmp"
        )
        header = {
            "op": "open",
            "schema": SCHEMA,
            "generation": new_generation,
            "base": str(base_name),
            "base_crc32": int(base_crc32),
        }
        with staging.open("w", encoding="utf-8") as handle:
            handle.write(_encode(header) + "\n")
            for record in carried_records:
                handle.write(_encode(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        faults.maybe_kill_at("durability.checkpoint.journal")
        self._handle.close()
        os.replace(staging, self.path)
        _fsync_dir(self.path.parent)
        # Committed on disk; bring the in-memory view up before the
        # post-commit kill site so an in-process SimulatedCrash leaves a
        # consistent (new-generation) journal object behind.
        self.generation = new_generation
        self.base_name = str(base_name)
        self.base_crc32 = int(base_crc32)
        self._records = list(carried_records)
        self._handle = self.path.open("a", encoding="utf-8")
        obs.counter("durability.journal_generations")
        faults.maybe_kill_at("durability.checkpoint.commit")

    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Mutation records (header excluded)."""
        return len(self._records)

    def records_snapshot(self) -> list[dict]:
        """A shallow copy of the current mutation records (checkpoint
        uses it to mark the fold point under the read latch)."""
        return list(self._records)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __repr__(self) -> str:
        return (
            f"<MutationJournal {self.path} gen={self.generation} "
            f"records={self.num_records}>"
        )


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync (persists a rename's directory entry)."""
    import contextlib

    with contextlib.suppress(OSError):
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

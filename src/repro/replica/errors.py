"""Typed errors of the replicated process-cluster backend.

Two audiences, two families:

* **Internal transport failures** (:class:`ReplicaUnreachable` and its
  refinements) never leave :mod:`repro.replica` — the router catches
  them, reports the replica to the supervisor, and fails over to a
  sibling.  They exist as types so tests can assert *which* failure
  triggered a failover.
* :class:`ShardUnavailableError` is the surface the coordinator sees
  when a **whole replica group** is down: every replica of one shard
  failed (or failed to restart in time).  The replicated query session
  catches it and degrades to a flagged *partial* answer over the
  surviving shards — the same "answer what you can, flag what you
  couldn't" contract the circuit breaker's bound-only mode uses —
  instead of failing the query.
"""

from __future__ import annotations


class ReplicaError(Exception):
    """Base class for everything raised by :mod:`repro.replica`."""


class ShardUnavailableError(ReplicaError):
    """Every replica of one shard is down; its frontier cannot be served.

    ``shard_id`` names the dead group; ``causes`` holds the last
    per-replica transport failures (strings), for logs and tests.
    """

    def __init__(self, shard_id: int, causes: list[str] | None = None):
        self.shard_id = int(shard_id)
        self.causes = list(causes or [])
        detail = f": {'; '.join(self.causes)}" if self.causes else ""
        super().__init__(
            f"shard {shard_id}: no live replica remains{detail}"
        )


class ReplicaWorkerError(ReplicaError):
    """A worker answered with a typed ``internal``/``invalid_request``
    error: the *op itself* failed, deterministically, on a healthy
    process.  Failing over would just re-raise it on the sibling, so it
    propagates as a query failure (the service journals it and answers
    ``query_failed``) instead of burning replicas.
    """

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"replica op failed ({code}): {message}")


class ReplicaUnreachable(ReplicaError):
    """One replica failed to serve one op (crash, EOF, timeout, garbage).

    Internal: the router converts it into a failover, never propagates it.
    """


class ReplicaTimeout(ReplicaUnreachable):
    """The replica did not answer within the per-op deadline (wedged or
    overloaded).  The connection is poisoned — a late answer would
    desynchronize the request/response stream — so the worker is killed
    and restarted rather than reused."""


class ReplicaDead(ReplicaUnreachable):
    """The worker process exited (EOF / broken pipe mid-op)."""


class ReplicaProtocolError(ReplicaUnreachable):
    """The replica answered with a malformed or oversized frame.

    Counted once per occurrence (``replica.protocol_errors``) and treated
    exactly like a crash: the worker is restarted and the op fails over —
    a corrupt peer must not be able to wedge or crash the coordinator.
    """

"""Worker lifecycle: spawn R replicas per shard, watch them, restart them.

The :class:`Supervisor` owns every shard-worker process and the one
``socketpair`` connecting each to the coordinator.  Workers are forked
(the database object rides along for free; no serialization), greeted
with a ``hello`` handshake that doubles as a readiness gate, and then
watched by a monitor thread:

* **crash detection** — a worker whose process has exited is marked dead
  and scheduled for restart with the capped-backoff
  :class:`~repro.resilience.retry.RetryPolicy` (attempts reset once a
  restart survives its handshake, so steady chaos churn restarts fast
  while a truly broken worker backs off to the cap).
* **wedge detection** — a worker that has been busy on one op for longer
  than ``wedge_timeout_s`` is killed outright (its blocked caller gets a
  clean EOF and fails over); an *idle* worker that has not answered
  anything recently is probed with a ``ping`` heartbeat, and a failed
  probe is treated as a wedge.

Every successful router op refreshes the worker's ``last_ok`` stamp, so
heartbeat pings only fire on genuinely quiet workers — busy clusters pay
no probe traffic.

A timed-out connection is *poisoned*, never reused: a late response from
a wedged worker would desynchronize the request/response stream, so the
worker is killed and respawned with a fresh pair instead.  Fresh workers
hold no query sessions; the router's session-restore protocol
(:mod:`repro.replica.remote`) rebuilds them lazily on first contact.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from pathlib import Path

from repro import obs
from repro.replica import wire
from repro.replica.errors import (
    ReplicaDead,
    ReplicaError,
    ReplicaProtocolError,
    ReplicaTimeout,
)
from repro.replica.worker import worker_main
from repro.resilience.retry import RetryPolicy
from repro.utils.validation import require


class WorkerHandle:
    """One live (or dead) replica process and its coordinator-side pipe."""

    def __init__(self, shard_id: int, replica_index: int):
        self.shard_id = shard_id
        self.replica_index = replica_index
        self.proc = None
        self.sock: socket.socket | None = None
        self.reader = None
        #: Serializes ops on the pair — one in-flight request per worker.
        self.lock = threading.Lock()
        self.alive = False
        self.last_ok = time.monotonic()
        self.busy_since: float | None = None
        #: Bumps on every restart; a new process holds no sessions.
        self.generation = 0
        #: Session ids this *process generation* has opened (router-side
        #: record; consulted for proactive restore after a restart).
        self.sessions: set[str] = set()
        self.restart_attempts = 0
        self.next_restart_at = 0.0
        self.tree_nodes = 0
        self.num_graphs = 0
        #: Exponential latency tracking for hedging (EMA + deviation).
        self.ema_latency = 0.0
        self.ema_deviation = 0.0

    # ------------------------------------------------------------------
    def call(self, payload: dict, timeout: float,
             *, max_frame: int = wire.MAX_FRAME_BYTES) -> dict:
        """One request/response round trip under the handle's lock.

        Raises :class:`ReplicaDead` / :class:`ReplicaTimeout` /
        :class:`ReplicaProtocolError`; the caller decides whether that
        means failover.  On any raise the connection is left poisoned
        (``alive=False``) — the supervisor will respawn it.
        """
        with self.lock:
            if not self.alive or self.sock is None:
                raise ReplicaDead(
                    f"replica {self.shard_id}/{self.replica_index} is down"
                )
            self.busy_since = time.monotonic()
            try:
                self.sock.settimeout(timeout)
                self.sock.sendall(wire.encode_frame(payload))
                response = wire.read_frame(self.reader, max_bytes=max_frame)
            except (socket.timeout, TimeoutError) as error:
                self.alive = False
                raise ReplicaTimeout(
                    f"replica {self.shard_id}/{self.replica_index} did not "
                    f"answer {payload.get('op')!r} within {timeout:g}s"
                ) from error
            except ReplicaDead:
                self.alive = False
                raise
            except OSError as error:
                self.alive = False
                raise ReplicaDead(
                    f"replica {self.shard_id}/{self.replica_index} "
                    f"connection failed: {error}"
                ) from error
            except ReplicaProtocolError:
                self.alive = False
                obs.counter("replica.protocol_errors")
                raise
            finally:
                started, self.busy_since = self.busy_since, None
            if response is None:
                self.alive = False
                raise ReplicaDead(
                    f"replica {self.shard_id}/{self.replica_index} closed "
                    f"the connection (process exit)"
                )
            elapsed = time.monotonic() - started
            self.last_ok = time.monotonic()
            self._note_latency(elapsed)
            return response

    def _note_latency(self, elapsed: float) -> None:
        if self.ema_latency == 0.0:
            self.ema_latency = elapsed
        else:
            delta = elapsed - self.ema_latency
            self.ema_latency += 0.2 * delta
            self.ema_deviation += 0.2 * (abs(delta) - self.ema_deviation)

    @property
    def hedge_latency(self) -> float:
        """EMA-p99-style delay: mean plus three deviations."""
        return self.ema_latency + 3.0 * self.ema_deviation

    # ------------------------------------------------------------------
    def mark_dead(self) -> None:
        """Poison the handle (idempotent; safe from any thread)."""
        self.alive = False

    def close(self) -> None:
        self.alive = False
        if self.reader is not None:
            try:
                self.reader.close()
            except OSError:
                pass
            self.reader = None
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def kill(self) -> None:
        self.close()
        if self.proc is not None and self.proc.is_alive():
            self.proc.kill()

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"<WorkerHandle shard={self.shard_id} "
            f"replica={self.replica_index} {state} "
            f"gen={self.generation}>"
        )


class Supervisor:
    """Spawn, monitor and restart the S × R shard-worker fleet."""

    def __init__(
        self,
        database,
        distance,
        manifest_path: str | Path,
        num_shards: int,
        *,
        replicas: int = 2,
        workers_per_shard: int | None = None,
        heartbeat_s: float = 0.5,
        wedge_timeout_s: float = 5.0,
        spawn_timeout_s: float = 60.0,
        restart_policy: RetryPolicy | None = None,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
    ):
        require(int(replicas) >= 1, "replicas must be >= 1")
        require(heartbeat_s > 0.0, "heartbeat_s must be > 0")
        require(wedge_timeout_s > 0.0, "wedge_timeout_s must be > 0")
        self.database = database
        self.distance = distance
        self.manifest_path = Path(manifest_path)
        self.num_shards = int(num_shards)
        self.replicas = int(replicas)
        self.workers_per_shard = workers_per_shard
        self.heartbeat_s = float(heartbeat_s)
        self.wedge_timeout_s = float(wedge_timeout_s)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=2.0, jitter=0.25
        )
        self.max_frame_bytes = int(max_frame_bytes)
        self._ctx = multiprocessing.get_context("fork")
        self.groups: list[list[WorkerHandle]] = [
            [WorkerHandle(s, r) for r in range(self.replicas)]
            for s in range(self.num_shards)
        ]
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self.spawns = 0
        self.restarts = 0
        self.wedge_kills = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        require(self._monitor is None, "supervisor already started")
        for group in self.groups:
            for handle in group:
                self._spawn(handle)
                if not handle.alive:
                    self.stop()
                    raise ReplicaError(
                        f"replica {handle.shard_id}/{handle.replica_index} "
                        f"failed its startup handshake"
                    )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replica-monitor",
            daemon=True,
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for group in self.groups:
            for handle in group:
                handle.close()  # EOF → worker exits its loop
        for group in self.groups:
            for handle in group:
                if handle.proc is not None:
                    handle.proc.join(timeout=1.0)
                    if handle.proc.is_alive():
                        handle.proc.kill()
                        handle.proc.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Routing views
    # ------------------------------------------------------------------
    def live(self, shard_id: int) -> list[WorkerHandle]:
        """Live replicas of one shard, replica-index order (primary first)."""
        return [h for h in self.groups[shard_id] if h.alive]

    def report_failure(self, handle: WorkerHandle) -> None:
        """Router-side notice: an op on this worker failed.

        Poison and kill it; the monitor respawns it on its next tick.  A
        late response from a half-dead worker must never be read, so the
        pair is closed here, not recycled.
        """
        handle.mark_dead()
        handle.next_restart_at = time.monotonic()
        if handle.proc is not None and handle.proc.is_alive():
            handle.proc.kill()
        obs.counter("replica.deaths")

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _inherited_sockets(self) -> list[socket.socket]:
        return [
            h.sock for group in self.groups for h in group
            if h.sock is not None
        ]

    def _spawn(self, handle: WorkerHandle) -> None:
        """(Re)fork one worker into ``handle``; sets ``alive`` on success."""
        if not handle.lock.acquire(timeout=1.0):
            return  # a failing caller is still draining; retry next tick
        try:
            handle.close()
            parent_sock, child_sock = socket.socketpair()
            # Forked children inherit every open fd; the child closes its
            # copies of the *other* workers' pipes first thing, so an EOF
            # from the coordinator always reaches its worker.
            inherited = self._inherited_sockets()
            proc = self._ctx.Process(
                target=_worker_entry,
                args=(
                    child_sock, inherited, self.database, self.distance,
                    str(self.manifest_path), handle.shard_id,
                    handle.replica_index, self.workers_per_shard,
                    self.max_frame_bytes,
                ),
                name=(
                    f"repro-shard{handle.shard_id}-r{handle.replica_index}"
                ),
                daemon=True,
            )
            proc.start()
            child_sock.close()
            handle.proc = proc
            handle.sock = parent_sock
            handle.reader = parent_sock.makefile("rb")
            handle.generation += 1
            handle.sessions = set()
            handle.busy_since = None
            handle.alive = True  # provisionally, for the handshake call
            self.spawns += 1
            obs.counter("replica.spawns")
        finally:
            handle.lock.release()
        try:
            hello = handle.call({"op": "hello"}, self.spawn_timeout_s,
                                max_frame=self.max_frame_bytes)
            require(hello.get("ok") is True, "bad hello response")
            handle.tree_nodes = int(hello["r"]["tree_nodes"])
            handle.num_graphs = int(hello["r"]["num_graphs"])
        except (ReplicaError, KeyError, TypeError, ValueError):
            handle.kill()
            handle.alive = False
            return
        handle.restart_attempts = 0
        handle.last_ok = time.monotonic()

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            for group in self.groups:
                for handle in group:
                    try:
                        self._check(handle)
                    except Exception:  # pragma: no cover - must survive
                        obs.counter("replica.monitor_errors")

    def _check(self, handle: WorkerHandle) -> None:
        now = time.monotonic()
        if handle.alive and handle.proc is not None and (
            not handle.proc.is_alive()
        ):
            # Crashed between ops: no caller noticed yet.
            handle.mark_dead()
            handle.next_restart_at = now
            obs.counter("replica.deaths")
        if not handle.alive:
            if now >= handle.next_restart_at:
                self._restart(handle)
            return
        busy_since = handle.busy_since
        if busy_since is not None and (
            now - busy_since > self.wedge_timeout_s
        ):
            # Wedged mid-op: kill it so the blocked caller gets EOF and
            # fails over instead of waiting out its own timeout.
            self.wedge_kills += 1
            obs.counter("replica.wedge_kills")
            handle.mark_dead()
            handle.next_restart_at = now
            if handle.proc is not None and handle.proc.is_alive():
                handle.proc.kill()
            return
        if busy_since is None and (
            now - handle.last_ok > self.wedge_timeout_s
        ):
            self._probe(handle)

    def _probe(self, handle: WorkerHandle) -> None:
        """Idle-worker heartbeat: ping with a short budget."""
        if not handle.lock.acquire(blocking=False):
            return  # became busy; the busy path covers it
        handle.lock.release()
        try:
            response = handle.call(
                {"op": "ping"},
                min(self.wedge_timeout_s, self.spawn_timeout_s),
                max_frame=self.max_frame_bytes,
            )
            require(response.get("ok") is True, "bad ping response")
            obs.counter("replica.heartbeats")
        except (ReplicaError, ValueError):
            obs.counter("replica.heartbeat_failures")
            self.report_failure(handle)

    def _restart(self, handle: WorkerHandle) -> None:
        if handle.proc is not None:
            handle.proc.join(timeout=0.1)  # reap the corpse
        self._spawn(handle)
        if handle.alive:
            self.restarts += 1
            obs.counter("replica.restarts")
        else:
            handle.restart_attempts += 1
            handle.next_restart_at = (
                time.monotonic()
                + self.restart_policy.delay(handle.restart_attempts - 1)
            )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "spawns": self.spawns,
            "restarts": self.restarts,
            "wedge_kills": self.wedge_kills,
            "live": [
                sum(1 for h in group if h.alive) for group in self.groups
            ],
        }

    def __repr__(self) -> str:
        live = sum(h.alive for g in self.groups for h in g)
        return (
            f"<Supervisor shards={self.num_shards} "
            f"replicas={self.replicas} live={live}/"
            f"{self.num_shards * self.replicas}>"
        )


def _worker_entry(
    conn, inherited, database, distance, manifest_path,
    shard_id, replica_index, engine_workers, max_frame,
) -> None:
    """Child-process shim: drop inherited pipes, then serve."""
    for sock in inherited:
        try:
            sock.close()
        except OSError:
            pass
    worker_main(
        conn, database, distance, manifest_path, shard_id, replica_index,
        engine_workers=engine_workers, max_frame=max_frame,
    )

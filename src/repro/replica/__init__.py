"""Replicated multi-process shard serving.

``repro.replica`` turns a PR-5 shard bundle into a supervised process
cluster: R :class:`~repro.replica.worker.ShardWorker` replicas per shard
(line-JSON over socketpairs), a :class:`~repro.replica.supervisor.Supervisor`
that heartbeats, wedge-kills, and restarts them with capped backoff, and
a :class:`~repro.replica.router.ReplicaRouter` that gives the
scatter-gather coordinator failover and optional hedged reads.  The
public entry point is :class:`ReplicatedIndex`, a drop-in for
:class:`~repro.shard.ShardedIndex` that answers bit-identically under
replica churn and degrades to flagged partial answers
(:class:`ShardUnavailableError` per dead group) instead of failing.
"""

from repro.replica.cluster import ReplicatedIndex, ReplicaQuerySession
from repro.replica.errors import (
    ReplicaError,
    ReplicaWorkerError,
    ShardUnavailableError,
)
from repro.replica.router import ReplicaRouter
from repro.replica.supervisor import Supervisor
from repro.replica.worker import ShardWorker, worker_main

__all__ = [
    "ReplicatedIndex",
    "ReplicaQuerySession",
    "ReplicaError",
    "ReplicaRouter",
    "ReplicaWorkerError",
    "ShardUnavailableError",
    "ShardWorker",
    "Supervisor",
    "worker_main",
]

"""`ReplicatedIndex`: a supervised multi-process cluster behind the
single-index API.

The replicated deployment runs every shard of a manifest bundle as R
worker *processes* (R replicas per shard), supervised and restarted on
failure, and drives the PR-5 scatter-gather greedy over
:class:`~repro.replica.remote.RemoteFrontier` objects instead of
in-process :class:`~repro.shard.frontier.ShardFrontier` ones.  The
coordinator loop, the selection rule, and therefore the answer bits are
identical — a replica crash mid-query costs a failover and some
re-pulled candidates, never a different answer.

Degradation contract: when *every* replica of a shard is down (and stays
down past the router's failover budget) the query session retries the
query over the surviving shards with fresh worker sessions and returns a
flagged partial answer (``stats.partial`` /
``stats.unavailable_shards``), mirroring the "answer what you can, flag
what you couldn't" contract of the circuit breaker's bound-only mode.
Only a deterministic worker-side op failure
(:class:`~repro.replica.errors.ReplicaWorkerError`) fails the query.

The relevance function must be wire-expressible: replicated serving
accepts :class:`~repro.graphs.relevance.AverageScoreThreshold`-shaped
functions (anything with ``dims`` and ``threshold`` attributes), which is
what :func:`~repro.graphs.relevance.quartile_relevance` — and hence the
query service — produces.  Each worker rebuilds the function from
``(dims, threshold)`` and derives the identical relevant set.
"""

from __future__ import annotations

import time
import uuid
import zlib
from pathlib import Path

import numpy as np

from repro import obs
from repro.bitset import BitsetUniverse
from repro.core.results import QueryResult, QueryStats
from repro.graphs.database import GraphDatabase
from repro.index.errors import OffLadderThetaError, ReadOnlyIndexError
from repro.index.nbindex import NBIndex
from repro.index.pivec import ThresholdLadder
from repro.replica.errors import ShardUnavailableError
from repro.replica.remote import RemoteFrontier
from repro.replica.router import ReplicaRouter
from repro.replica.supervisor import Supervisor
from repro.resilience.errors import DatabaseMismatchError
from repro.shard.coordinator import (
    new_coord,
    record_coordinator_obs,
    run_greedy,
)
from repro.shard.manifest import ShardManifest, database_checksum
from repro.utils.validation import require_positive


class ReplicatedIndex:
    """R supervised worker processes per shard, queryable as one index."""

    def __init__(
        self,
        database: GraphDatabase,
        distance,
        *,
        manifest: ShardManifest,
        path: Path,
        supervisor: Supervisor,
        router: ReplicaRouter,
    ):
        self.database = database
        self.distance = distance
        self.manifest = manifest
        self.path = path
        self.supervisor = supervisor
        self.router = router
        self.ladder = ThresholdLadder(manifest.ladder)
        self.shard_of = np.asarray(manifest.assignments, dtype=np.int64)
        #: Single-index/service stats parity (nothing is hot-reloaded
        #: into a live process cluster).
        self.reused_shards = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        manifest_path: str | Path,
        database: GraphDatabase,
        distance,
        *,
        replicas: int = 2,
        workers_per_shard: int | None = None,
        op_timeout_s: float = 10.0,
        hedge_ms: float | None = None,
        heartbeat_s: float = 0.5,
        wedge_timeout_s: float = 5.0,
        spawn_timeout_s: float = 60.0,
        restart_policy=None,
    ) -> "ReplicatedIndex":
        """Spawn and handshake the full S×R worker fleet.

        Raises the same :class:`~repro.resilience.DatabaseMismatchError`
        as :meth:`ShardedIndex.load <repro.shard.ShardedIndex.load>` when
        the manifest does not describe ``database``; raises
        :class:`~repro.replica.errors.ReplicaError` when any worker fails
        its startup handshake (a cluster that cannot start complete does
        not start at all)."""
        manifest_path = Path(manifest_path)
        manifest = ShardManifest.load(manifest_path)
        if len(database) != manifest.num_graphs or (
            database_checksum(database) != manifest.database_checksum
        ):
            raise DatabaseMismatchError(
                f"{manifest_path}: shard manifest does not match the "
                f"provided database"
            )
        supervisor = Supervisor(
            database,
            distance,
            manifest_path,
            manifest.num_shards,
            replicas=replicas,
            workers_per_shard=workers_per_shard,
            heartbeat_s=heartbeat_s,
            wedge_timeout_s=wedge_timeout_s,
            spawn_timeout_s=spawn_timeout_s,
            restart_policy=restart_policy,
        )
        supervisor.start()
        router = ReplicaRouter(
            supervisor, op_timeout_s=op_timeout_s, hedge_ms=hedge_ms,
        )
        return cls(
            database, distance, manifest=manifest, path=manifest_path,
            supervisor=supervisor, router=router,
        )

    # ------------------------------------------------------------------
    # Queries (single-index API surface)
    # ------------------------------------------------------------------
    def session(self, query_fn) -> "ReplicaQuerySession":
        return ReplicaQuerySession(self, query_fn)

    def query(self, query_fn, theta: float, k: int, **kwargs) -> QueryResult:
        unknown = set(kwargs) - NBIndex._QUERY_KWARGS
        if unknown:
            raise TypeError(
                f"ReplicatedIndex.query() got unexpected keyword arguments "
                f"{sorted(unknown)}; accepted: {sorted(NBIndex._QUERY_KWARGS)}"
            )
        return self.session(query_fn).query(theta, k, **kwargs)

    # ------------------------------------------------------------------
    # Mutations (Index protocol: read-only here)
    # ------------------------------------------------------------------
    #: Worker processes hold immutable shard artifacts; mutate through a
    #: single-process ``repro.open_index(path, mutable=True)`` deployment.
    mutable = False

    def insert(self, graph, feature_row) -> int:
        raise ReadOnlyIndexError("insert", "ReplicatedIndex")

    def delete(self, gid: int) -> bool:
        raise ReadOnlyIndexError("delete", "ReplicatedIndex")

    def update(self, gid: int, graph, feature_row) -> int:
        raise ReadOnlyIndexError("update", "ReplicatedIndex")

    def compact(self) -> dict:
        raise ReadOnlyIndexError("compact", "ReplicatedIndex")

    # ------------------------------------------------------------------
    # Durability (the scrubber's self-heal source)
    # ------------------------------------------------------------------
    def fetch_shard_bytes(self, shard_id: int) -> bytes:
        """The shard artifact's original bytes, served from a live replica.

        Workers retain the bytes they verified at startup, so even when
        the on-disk artifact has since rotted, any live replica can hand
        back a pristine copy.  Chunked over the wire and verified end to
        end (length + crc32 across the reassembly); raises
        :class:`~repro.replica.errors.ReplicaWorkerError` /
        :class:`~repro.replica.errors.ShardUnavailableError` when no
        replica can serve it, and :class:`ValueError` when the reassembled
        bytes fail their own checksum."""
        from repro.replica.worker import FETCH_CHUNK_BYTES

        chunks: list[bytes] = []
        offset = 0
        total = None
        crc = None
        while total is None or offset < total:
            result = self.router.call(shard_id, {
                "op": "fetch_shard",
                "off": offset,
                "len": FETCH_CHUNK_BYTES,
            })
            total = int(result["size"])
            crc = int(result["crc32"])
            chunk = bytes.fromhex(result["data"])
            if not chunk and offset < total:
                raise ValueError(
                    f"shard {shard_id}: empty fetch_shard chunk at offset "
                    f"{offset} of {total}"
                )
            chunks.append(chunk)
            offset += len(chunk)
        data = b"".join(chunks)
        if len(data) != total or zlib.crc32(data) != crc:
            raise ValueError(
                f"shard {shard_id}: reassembled artifact fails the "
                f"replica's checksum ({len(data)}/{total} bytes)"
            )
        obs.counter("replica.shard_fetches")
        return data

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.manifest.num_shards

    @property
    def replicas(self) -> int:
        return self.supervisor.replicas

    @property
    def tree_nodes(self) -> int:
        """Total NB-Tree nodes across shards (replica 0's handshake view —
        every replica of a shard reports the same artifact)."""
        return sum(
            group[0].tree_nodes or 0 for group in self.supervisor.groups
        )

    def stats(self) -> dict:
        """Statable protocol: same scalar core as :meth:`ShardedIndex.stats`
        plus a ``replica`` section with the supervisor's fleet view."""
        return {
            "num_graphs": len(self.database),
            "num_shards": self.num_shards,
            "partitioner": self.manifest.partitioner,
            "tree_nodes": self.tree_nodes,
            "ladder_thresholds": len(self.ladder),
            "reused_shards": self.reused_shards,
            "replica": self.supervisor.stats(),
        }

    def invalidate_pools(self) -> None:
        """Lifecycle hook parity: tears down the whole worker fleet."""
        self.supervisor.stop()

    close = invalidate_pools

    def __enter__(self) -> "ReplicatedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ReplicatedIndex n={len(self.database)} "
            f"shards={self.num_shards} replicas={self.replicas}>"
        )


class ReplicaQuerySession:
    """Per-relevance-function state for replicated queries.

    Mirrors :class:`~repro.shard.coordinator.ShardedQuerySession`: the
    relevant set and bit universe are materialized once, client-side, and
    shipped to workers as the ``(dims, threshold)`` spec."""

    def __init__(self, cluster: ReplicatedIndex, query_fn):
        dims = getattr(query_fn, "dims", None)
        threshold = getattr(query_fn, "threshold", None)
        if dims is None or threshold is None:
            raise TypeError(
                "replicated serving needs a wire-expressible relevance "
                "function exposing `dims` and `threshold` (e.g. "
                "AverageScoreThreshold / quartile_relevance); got "
                f"{type(query_fn).__name__}"
            )
        self.cluster = cluster
        self.query_fn = query_fn
        self.dims = tuple(int(d) for d in dims)
        self.threshold = float(threshold)
        started = time.perf_counter()
        self.relevant = cluster.database.relevant_indices(query_fn)
        self.relevant_set = frozenset(int(i) for i in self.relevant)
        self.universe = BitsetUniverse(self.relevant)
        #: Per-shard relevant members (ascending; pure function of the
        #: manifest, identical to each worker's own derivation).
        self.shard_relevant = {
            s: self.relevant[
                cluster.shard_of[self.relevant] == s
            ]
            for s in range(cluster.num_shards)
        }
        self.init_seconds = time.perf_counter() - started
        obs.observe_time("shard.session_init_seconds", self.init_seconds)

    # ------------------------------------------------------------------
    def query(
        self,
        theta: float,
        k: int,
        stop_on_zero_gain: bool = False,
        enable_updates: bool = True,
        deadline=None,
        cascade=None,
        epsilon: float = 0.0,
    ) -> QueryResult:
        """Replicated top-k query; same contract — and same answer bits —
        as :meth:`ShardedQuerySession.query`, degrading to a flagged
        partial answer when whole replica groups are unavailable."""
        require_positive(theta, "theta")
        require_positive(k, "k")
        from repro.cascade import resolve_cascade
        from repro.resilience.deadline import current_deadline, deadline_scope

        # Workers run the stages; the coordinator only ships the config
        # (in each session-open frame) and flags the result.
        config = resolve_cascade(cascade, epsilon)
        cascade_wire = (
            config.to_wire()
            if config is not None and not config.is_default() else None
        )
        cluster = self.cluster
        ladder_index = cluster.ladder.index_for(theta)
        if ladder_index is None:
            obs.counter("index.offladder_theta")
            raise OffLadderThetaError(theta, cluster.ladder)

        stats = QueryStats(init_seconds=self.init_seconds)
        effective_deadline = (
            deadline if deadline is not None else current_deadline()
        )
        degradations_before = (
            dict(effective_deadline.degradations)
            if effective_deadline is not None else {}
        )
        unavailable: set[int] = set()
        worker_degradations: list[dict] = []
        coord = new_coord(cluster.num_shards)

        with deadline_scope(deadline), obs.span(
            "replica.query", theta=theta, k=k,
            shards=cluster.num_shards, replicas=cluster.replicas,
        ) as query_span:
            while True:
                served = [
                    s for s in range(cluster.num_shards)
                    if s not in unavailable
                ]
                if not served:
                    answer, gains = [], []
                    covered = self.universe.empty()
                    coord = new_coord(0)
                    break
                frontiers = self._open_frontiers(
                    served, theta, effective_deadline, cascade_wire
                )
                coord = new_coord(len(frontiers))
                try:
                    answer, gains, covered = run_greedy(
                        list(frontiers.values()),
                        self.universe,
                        lambda gid: frontiers[int(cluster.shard_of[gid])],
                        k,
                        int(self.relevant.size),
                        stop_on_zero_gain=stop_on_zero_gain,
                        enable_updates=enable_updates,
                        stats=stats,
                        coord=coord,
                    )
                    break
                except ShardUnavailableError as error:
                    # A whole replica group died mid-query.  Drop that
                    # shard and re-run over the survivors with fresh
                    # sessions (worker state from the aborted attempt is
                    # keyed by session id and simply ages out).
                    unavailable.add(error.shard_id)
                    obs.counter("replica.shard_unavailable")
                finally:
                    for frontier in frontiers.values():
                        worker_degradations.append(
                            frontier.session.degradations
                        )
                        frontier.close()

            stats.coordinator = coord
            if config is not None:
                stats.epsilon = config.epsilon
                stats.approximate = config.approximate
            if effective_deadline is not None:
                for reported in worker_degradations:
                    effective_deadline.merge_degradations(reported)
                delta = {
                    kind: count - degradations_before.get(kind, 0)
                    for kind, count in effective_deadline.degradations.items()
                    if count > degradations_before.get(kind, 0)
                }
                stats.degradations = delta
                stats.degradation_events = sum(delta.values())
                stats.degraded = bool(delta)
            if unavailable:
                stats.partial = True
                stats.unavailable_shards = sorted(unavailable)
                stats.degradations = dict(stats.degradations)
                stats.degradations["replica.shard_unavailable"] = len(
                    unavailable
                )
                stats.degradation_events += len(unavailable)
                stats.degraded = True
            if stats.degraded:
                obs.counter("query.degraded")
            self._record_obs(coord, stats)
            query_span.set(
                answer_size=len(answer),
                degraded=stats.degraded,
                partial=stats.partial,
            )
        return QueryResult(
            answer=answer,
            gains=gains,
            covered=self.universe.decode_frozenset(covered),
            num_relevant=int(self.relevant.size),
            theta=theta,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _open_frontiers(
        self, served: list[int], theta: float, effective_deadline,
        cascade_wire: dict | None = None,
    ) -> dict[int, RemoteFrontier]:
        """One fresh-session RemoteFrontier per served shard.

        One session id covers the whole attempt — worker session tables
        are per-process, so the same id on every shard is unambiguous,
        and a retry after a group failure gets a new id (no state from
        the aborted attempt leaks in)."""
        sid = uuid.uuid4().hex[:16]
        deadline_state = (
            effective_deadline.state()
            if effective_deadline is not None else None
        )
        return {
            s: RemoteFrontier(
                self.cluster.router,
                s,
                sid,
                dims=self.dims,
                threshold=self.threshold,
                theta=theta,
                relevant_global=self.shard_relevant[s],
                universe=self.universe,
                deadline_state=deadline_state,
                cascade_wire=cascade_wire,
            )
            for s in served
        }

    def _record_obs(self, coord: dict, stats: QueryStats) -> None:
        if not obs.enabled():
            return
        obs.counter("replica.query.count")
        record_coordinator_obs(coord, stats)

    def __repr__(self) -> str:
        return (
            f"<ReplicaQuerySession relevant={self.relevant.size} "
            f"shards={self.cluster.num_shards} "
            f"replicas={self.cluster.replicas}>"
        )

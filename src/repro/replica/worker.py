"""The shard worker: one long-lived process serving one shard's frontier.

A worker is forked by the :class:`~repro.replica.supervisor.Supervisor`
with the *database object already in memory* (fork inheritance — no
re-parse) and loads its own shard's NB-Index artifact on startup.  It
then answers the coordinator's frontier protocol over a ``socketpair``,
one line-JSON frame per op (:mod:`repro.replica.wire`):

====================  =====================================================
op                    effect
====================  =====================================================
``hello``             identity + shard shape (handshake; supervisor only)
``ping``              liveness probe (heartbeat)
``open``              create a query session: relevance spec → frontier
``begin_round``       refresh uncovered view; returns count + root bound
``open_round``        start a :class:`~repro.shard.frontier.RoundSearch`
``next``              advance the lazy walk (piggybacks ``peek``)
``pi_hat``            Chebyshev uncovered count for a foreign candidate
``nbhd``              exact θ-neighborhood ∩ shard-relevant (bitset)
``select``            retire a chosen home graph from the frontier
``update``            Theorem 6–8 broadcast (sparse covered delta)
``close``             drop a session
``fetch_shard``       chunk of the artifact's verified startup bytes
====================  =====================================================

Sessions are keyed by a coordinator-chosen ``sid`` and bounded by an LRU
cap; an op naming an evicted or never-seen ``sid`` gets the typed
``unknown_session`` error, which is the router's cue to *restore* the
session (re-open + replay selections) — the mechanism that lets a
freshly restarted replica rejoin a query mid-flight.  Restored state is
coarser (initial π̂ bounds instead of refined ones) but every bound is
still a valid upper bound, so answers are unchanged; only work counts
move.

Fault-plan hooks (:func:`repro.resilience.faults.maybe_kill_replica` /
``maybe_wedge_replica``) run at op entry, so chaos tests can kill or
wedge a worker deterministically *between* frames — the coordinator sees
a clean EOF or a timeout, never a torn frame of our making.

A worker never lets a per-op exception escape the loop: unexpected
failures become typed ``internal`` error responses and the process keeps
serving (the same fault-isolation stance as the service's worker
threads).
"""

from __future__ import annotations

import os
import socket
import traceback
import zlib
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.core.results import QueryStats
from repro.graphs.relevance import AverageScoreThreshold
from repro.index.persistence import load_index
from repro.index.pivec import ThresholdLadder
from repro.replica import wire
from repro.resilience import faults
from repro.resilience.deadline import Deadline, deadline_scope
from repro.shard.frontier import ShardFrontier
from repro.shard.manifest import ShardManifest

_NEG_INF = float("-inf")

#: Concurrent query sessions one worker retains (LRU).  The coordinator
#: restores an evicted session transparently, so the cap only bounds
#: memory, never correctness.
SESSION_CAP = 8

#: ``fetch_shard`` chunk cap: 1 MiB of raw bytes is 2 MiB of hex, half
#: the wire's 4 MiB frame limit.
FETCH_CHUNK_BYTES = 1 << 20


def _num(value) -> float | None:
    """``null``-tolerant number: wire ``None`` stands for ``-inf``/unset."""
    return None if value is None else float(value)


def _bound_to_wire(value: float):
    """JSON-safe bound: ``-inf`` (empty frontier) travels as ``null``."""
    return None if value == _NEG_INF else float(value)


def _bound_from_wire(value) -> float:
    return _NEG_INF if value is None else float(value)


class _Session:
    """One (relevance, θ) query's shard-local state."""

    __slots__ = ("frontier", "round", "deadline", "stats")

    def __init__(self, frontier: ShardFrontier, deadline: Deadline | None):
        self.frontier = frontier
        self.round = None
        self.deadline = deadline
        self.stats = frontier.stats


class ShardWorker:
    """Op dispatcher bound to one loaded shard replica."""

    def __init__(
        self,
        database,
        distance,
        manifest_path: str | Path,
        shard_id: int,
        replica_index: int,
        *,
        engine_workers: int | None = None,
        session_cap: int = SESSION_CAP,
    ):
        from repro.engine import DistanceEngine

        manifest_path = Path(manifest_path)
        manifest = ShardManifest.load(manifest_path)
        self.shard_id = int(shard_id)
        self.replica_index = int(replica_index)
        self.members = manifest.members(self.shard_id)
        self.database = database
        sub = database.subset([int(i) for i in self.members])
        artifact = manifest.artifact_path(self.shard_id, manifest_path.parent)
        #: The verified startup bytes, retained for ``fetch_shard``: every
        #: local replica mmap/opens the *same* artifact file, so healing a
        #: corrupted file needs a copy that does not live on that disk.
        self.artifact_path = artifact
        self.artifact_bytes = artifact.read_bytes()
        self.index = load_index(artifact, sub, distance, workers=engine_workers)
        self.ladder = ThresholdLadder(manifest.ladder)
        #: Cross-shard distances go through a *global-id* engine over the
        #: full database — the same id discipline as the in-process
        #: coordinator (mixing id spaces would alias pair-cache keys).
        self.global_engine = DistanceEngine(
            distance, workers=None, graphs=database.graphs
        )
        self.sessions: OrderedDict[str, _Session] = OrderedDict()
        self.session_cap = int(session_cap)
        self.ops_served = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """One frame in → one response out; never raises."""
        self.ops_served += 1
        op = request.get("op")
        if op != "hello":
            # The handshake is exempt so a standing kill plan cannot turn
            # every restart into an immediate re-death (livelock).
            faults.maybe_kill_replica(self.replica_index, self.ops_served)
            faults.maybe_wedge_replica(self.replica_index)
        handler = self._HANDLERS.get(op)
        if handler is None:
            return _error("invalid_request", f"unknown op {op!r}")
        try:
            session = None
            if op not in ("hello", "ping", "open", "fetch_shard"):
                session = self._session(request)
            with deadline_scope(session.deadline if session else None):
                result = handler(self, request, session)
            response = {"ok": True, "r": result}
            if session is not None and session.deadline is not None and (
                session.deadline.degradations
            ):
                response["deg"] = dict(session.deadline.degradations)
            return response
        except _UnknownSession as error:
            return _error("unknown_session", str(error))
        except wire.ReplicaProtocolError as error:
            return _error("invalid_request", str(error))
        except Exception as error:  # fault isolation: the op dies, not us
            return _error(
                "internal",
                f"{type(error).__name__}: {error}\n"
                + traceback.format_exc(limit=4),
            )

    def _session(self, request: dict) -> "_Session":
        sid = request.get("sid")
        session = self.sessions.get(sid)
        if session is None:
            raise _UnknownSession(
                f"session {sid!r} unknown to replica "
                f"{self.shard_id}/{self.replica_index} (evicted or "
                f"restarted); restore it"
            )
        self.sessions.move_to_end(sid)
        return session

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _op_hello(self, request: dict, _session) -> dict:
        return {
            "shard": self.shard_id,
            "replica": self.replica_index,
            "pid": os.getpid(),
            "num_graphs": int(len(self.index.database)),
            "tree_nodes": int(self.index.tree.num_nodes),
        }

    def _op_ping(self, request: dict, _session) -> dict:
        return {"pong": True}

    def _op_open(self, request: dict, _session) -> dict:
        sid = request.get("sid")
        if not isinstance(sid, str) or not sid:
            raise wire.ReplicaProtocolError("open needs a string 'sid'")
        dims = request.get("dims")
        if not isinstance(dims, list) or not dims:
            raise wire.ReplicaProtocolError("open needs a 'dims' list")
        theta = float(request["theta"])
        #: The coordinator ships the *resolved* relevance spec — exact
        #: dims + threshold float — so every process derives the identical
        #: relevant set (no re-quantiling, no float drift).
        query_fn = AverageScoreThreshold(
            tuple(int(d) for d in dims), float(request["threshold"])
        )
        relevant = self.database.relevant_indices(query_fn)
        ladder_index = self.ladder.index_for(theta)
        if ladder_index is None:
            raise wire.ReplicaProtocolError(
                f"theta {theta:g} is off this bundle's ladder"
            )
        deadline_state = request.get("deadline")
        deadline = (
            Deadline.from_state(deadline_state)
            if deadline_state is not None else None
        )
        cascade_payload = request.get("cascade")
        runtime = None
        if cascade_payload is not None:
            from repro.cascade import CascadeConfig, CascadeConfigError, FilterCascade

            try:
                runtime = FilterCascade(CascadeConfig.from_wire(cascade_payload))
            except CascadeConfigError as error:
                raise wire.ReplicaProtocolError(str(error)) from error
        frontier = ShardFrontier(
            shard_id=self.shard_id,
            index=self.index,
            global_ids=self.members,
            relevant_global=relevant,
            global_engine=self.global_engine,
            theta=theta,
            ladder_index=ladder_index,
            stats=QueryStats(),
            cascade=runtime,
        )
        self.sessions[sid] = _Session(frontier, deadline)
        self.sessions.move_to_end(sid)
        while len(self.sessions) > self.session_cap:
            self.sessions.popitem(last=False)
        return {
            "relevant": int(frontier.relevant_global.size),
            "min_gid": int(frontier.min_gid_bound()),
        }

    def _covered(self, request: dict, session: "_Session") -> np.ndarray:
        universe = session.frontier.universe
        return wire.words_from_wire(request.get("cov"), universe.num_words)

    def _op_begin_round(self, request: dict, session: "_Session") -> dict:
        frontier = session.frontier
        frontier.begin_round(self._covered(request, session))
        return {
            "unc": int(frontier.uncovered_count),
            "root": _bound_to_wire(frontier.root_bound()),
        }

    def _op_open_round(self, request: dict, session: "_Session") -> dict:
        session.round = session.frontier.open_round(
            self._covered(request, session)
        )
        return {"peek": _bound_to_wire(session.round.peek())}

    def _op_next(self, request: dict, session: "_Session") -> dict:
        if session.round is None:
            raise wire.ReplicaProtocolError("next before open_round")
        tie = request.get("tie")
        candidate = session.round.next(
            _bound_from_wire(request.get("mu")),
            None if tie is None else int(tie),
        )
        if candidate is None:
            cand = None
        else:
            gid, gain, nbhd = candidate
            cand = {
                "gid": int(gid),
                "gain": float(gain),
                "nbhd": wire.words_to_wire(nbhd),
            }
        return {
            "cand": cand,
            "peek": _bound_to_wire(session.round.peek()),
            "fe": int(session.frontier.foreign_embeds),
        }

    def _op_pi_hat(self, request: dict, session: "_Session") -> dict:
        count = session.frontier.pi_hat_uncovered(int(request["gid"]))
        return {"count": int(count), "fe": int(session.frontier.foreign_embeds)}

    def _op_nbhd(self, request: dict, session: "_Session") -> dict:
        words = session.frontier.neighborhood_of(int(request["gid"]))
        return {
            "words": wire.words_to_wire(words),
            "fe": int(session.frontier.foreign_embeds),
        }

    def _op_select(self, request: dict, session: "_Session") -> dict:
        session.frontier.select(int(request["gid"]))
        return {}

    def _op_update(self, request: dict, session: "_Session") -> dict:
        delta = wire.delta_from_wire(request)
        session.frontier.apply_update(
            int(request["gid"]), delta, self._covered(request, session)
        )
        return {}

    def _op_close(self, request: dict, session: "_Session") -> dict:
        self.sessions.pop(request.get("sid"), None)
        return {}

    def _op_fetch_shard(self, request: dict, _session) -> dict:
        """Serve a chunk of the shard artifact's *original* bytes.

        The scrubber's self-heal path: when the on-disk artifact rots,
        any live replica can hand back the bytes it verified at startup.
        Chunked (hex over line-JSON) to stay far under the frame cap;
        the crc32 covers the whole artifact so the assembling side can
        verify the reassembly end to end."""
        offset = int(request.get("off", 0))
        if offset < 0:
            raise wire.ReplicaProtocolError("fetch_shard: negative offset")
        length = int(request.get("len", FETCH_CHUNK_BYTES))
        length = max(0, min(length, FETCH_CHUNK_BYTES))
        chunk = self.artifact_bytes[offset:offset + length]
        return {
            "data": chunk.hex(),
            "off": offset,
            "size": len(self.artifact_bytes),
            "crc32": zlib.crc32(self.artifact_bytes),
        }

    _HANDLERS = {
        "hello": _op_hello,
        "ping": _op_ping,
        "open": _op_open,
        "begin_round": _op_begin_round,
        "open_round": _op_open_round,
        "next": _op_next,
        "pi_hat": _op_pi_hat,
        "nbhd": _op_nbhd,
        "select": _op_select,
        "update": _op_update,
        "close": _op_close,
        "fetch_shard": _op_fetch_shard,
    }


class _UnknownSession(KeyError):
    """Internal: op named a sid this replica does not hold."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the text
        return self.args[0] if self.args else "unknown session"


def _error(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


# ---------------------------------------------------------------------------
# Process entry
# ---------------------------------------------------------------------------
def worker_main(
    conn: socket.socket,
    database,
    distance,
    manifest_path,
    shard_id: int,
    replica_index: int,
    engine_workers: int | None = None,
    max_frame: int = wire.MAX_FRAME_BYTES,
) -> None:
    """Forked-process entry: serve frames on ``conn`` until EOF.

    Everything heavy (shard artifact load, engine setup) happens before
    the first response, so the supervisor's ``hello`` handshake doubles
    as a readiness gate.
    """
    worker = ShardWorker(
        database, distance, manifest_path, shard_id, replica_index,
        engine_workers=engine_workers,
    )
    reader = conn.makefile("rb")
    try:
        while True:
            try:
                request = wire.read_frame(reader, max_bytes=max_frame)
            except wire.ReplicaProtocolError as error:
                # A corrupt inbound frame gets a typed reply; the stream
                # is still line-synchronized (readline consumed the line).
                try:
                    conn.sendall(wire.encode_frame(
                        _error("invalid_request", str(error))
                    ))
                    continue
                except OSError:
                    return
            except wire.ReplicaDead:
                return
            if request is None:
                return  # coordinator closed the pair: clean shutdown
            response = worker.handle(request)
            try:
                conn.sendall(wire.encode_frame(response))
            except OSError:
                return  # coordinator went away mid-write
    finally:
        reader.close()
        conn.close()

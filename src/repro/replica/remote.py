"""Coordinator-side remote frontier: the frontier protocol over the wire.

A :class:`RemoteFrontier` is a drop-in participant in
:func:`repro.shard.coordinator.run_greedy` — same methods, same
attributes — whose state lives in a replicated group of worker
processes.  The split between op classes is the heart of the failover
design:

* ``begin_round`` / ``open_round`` / ``select`` / ``update`` are
  **broadcast** through the router to every live replica, so any of them
  can serve the next read.
* ``next`` / ``pi_hat`` / ``nbhd`` are **routed** to the primary with
  failover (and optional hedging).  ``next`` advances the primary's lazy
  walk; a failover lands on a sibling whose walk is *behind*, which can
  re-offer candidates the coordinator already saw.  That is safe: the
  incumbent logic absorbs duplicates (a candidate can never beat itself
  under the (max gain, min id) rule), exact gains are functions of the
  coordinator-supplied covered set, and every bound any replica reports
  is a true upper bound on the gains the coordinator has *not yet
  consumed* — so kills and failovers move work counts, never answer
  bits.

Every op carries the session id; a replica that does not hold the
session (fresh restart, LRU eviction) is repaired by replaying this
frontier's :class:`SessionLog` — the relevance spec, the selections so
far, and the current round — before the op runs.  Selection replay is
the one mandatory piece (a restored replica must never re-offer a chosen
graph); everything else in the log just tightens bounds sooner.
"""

from __future__ import annotations

import numpy as np

from repro.replica import wire
from repro.replica.router import ReplicaRouter
from repro.utils.validation import require

_NEG_INF = float("-inf")


class SessionLog:
    """Everything needed to rebuild one shard's session on a fresh replica."""

    __slots__ = (
        "sid", "open_payload", "selects", "last_cov", "round_cov",
        "round_open", "degradations", "min_gid", "expected_relevant",
    )

    def __init__(self, sid: str, open_payload: dict, expected_relevant: int):
        self.sid = sid
        self.open_payload = dict(open_payload)
        self.selects: list[int] = []
        self.last_cov: str | None = None
        self.round_cov: str | None = None
        self.round_open = False
        #: Worker-reported degradation counts, element-wise max over
        #: replicas (duplicated work must not double-count).
        self.degradations: dict[str, int] = {}
        self.min_gid: int | None = None
        self.expected_relevant = int(expected_relevant)

    @property
    def mid_query(self) -> bool:
        """True once there is query progress worth calling a *restore*."""
        return bool(self.selects) or self.last_cov is not None

    def replay_payloads(self) -> list[dict]:
        steps = [self.open_payload]
        steps.extend(
            {"op": "select", "sid": self.sid, "gid": int(gid)}
            for gid in self.selects
        )
        if self.last_cov is not None:
            steps.append(
                {"op": "begin_round", "sid": self.sid, "cov": self.last_cov}
            )
        if self.round_open and self.round_cov is not None:
            steps.append(
                {"op": "open_round", "sid": self.sid, "cov": self.round_cov}
            )
        return steps

    def note_open_result(self, result: dict) -> None:
        require(
            int(result.get("relevant", -1)) == self.expected_relevant,
            "replica derived a different relevant set than the "
            "coordinator — database mismatch between processes",
        )
        self.min_gid = int(result["min_gid"])

    def note_degradations(self, reported: dict) -> None:
        for kind, count in reported.items():
            if int(count) > self.degradations.get(kind, 0):
                self.degradations[kind] = int(count)


class RemoteFrontier:
    """One replicated shard's frontier, spoken over the router."""

    def __init__(
        self,
        router: ReplicaRouter,
        shard_id: int,
        sid: str,
        *,
        dims,
        threshold: float,
        theta: float,
        relevant_global: np.ndarray,
        universe,
        deadline_state: dict | None = None,
        cascade_wire: dict | None = None,
    ):
        self.router = router
        self.shard_id = int(shard_id)
        self.universe = universe
        #: This shard's relevant members (coordinator-side copy — the
        #: membership split is a pure function of the manifest).
        self.relevant_global = np.asarray(relevant_global, dtype=np.int64)
        open_payload = {
            "op": "open",
            "sid": sid,
            "dims": [int(d) for d in dims],
            "threshold": float(threshold),
            "theta": float(theta),
        }
        if deadline_state is not None:
            open_payload["deadline"] = deadline_state
        if cascade_wire is not None:
            # Only non-default configs ride the wire: default sessions
            # keep their open frames byte-identical to older coordinators.
            open_payload["cascade"] = cascade_wire
        self.session = SessionLog(
            sid, open_payload, self.relevant_global.size
        )
        self.uncovered_count = 0
        self._root = _NEG_INF
        self._fe = 0

    # ------------------------------------------------------------------
    # Frontier protocol (see shard/coordinator.py)
    # ------------------------------------------------------------------
    def begin_round(self, covered: np.ndarray) -> None:
        cov = wire.words_to_wire(covered)
        self.session.last_cov = cov
        self.session.round_open = False
        result = self.router.broadcast(
            self.shard_id,
            {"op": "begin_round", "sid": self.session.sid, "cov": cov},
            self.session,
        )
        self.uncovered_count = int(result["unc"])
        root = result.get("root")
        self._root = _NEG_INF if root is None else float(root)

    def root_bound(self) -> float:
        return self._root

    def min_gid_bound(self) -> int:
        # Set by the first ensured open (begin_round always precedes use).
        return int(self.session.min_gid)

    @property
    def foreign_embeds(self) -> int:
        return self._fe

    def open_round(self, covered: np.ndarray) -> "RemoteRoundSearch":
        cov = wire.words_to_wire(covered)
        self.session.round_cov = cov
        self.session.round_open = True
        result = self.router.broadcast(
            self.shard_id,
            {"op": "open_round", "sid": self.session.sid, "cov": cov},
            self.session,
        )
        peek = result.get("peek")
        return RemoteRoundSearch(
            self, _NEG_INF if peek is None else float(peek)
        )

    def pi_hat_uncovered(self, gid: int) -> int:
        result = self.router.call(
            self.shard_id,
            {"op": "pi_hat", "sid": self.session.sid, "gid": int(gid)},
            self.session,
            hedge=True,
        )
        self._note_fe(result)
        return int(result["count"])

    def neighborhood_of(self, gid: int) -> np.ndarray:
        result = self.router.call(
            self.shard_id,
            {"op": "nbhd", "sid": self.session.sid, "gid": int(gid)},
            self.session,
            hedge=True,
        )
        self._note_fe(result)
        return wire.words_from_wire(
            result.get("words"), self.universe.num_words
        )

    def select(self, gid: int) -> None:
        # Log first: a replica restored *during* this broadcast must
        # replay the selection (select is idempotent worker-side).
        self.session.selects.append(int(gid))
        self.router.broadcast(
            self.shard_id,
            {"op": "select", "sid": self.session.sid, "gid": int(gid)},
            self.session,
        )

    def apply_update(self, selected: int, newly, covered: np.ndarray) -> None:
        payload = {
            "op": "update",
            "sid": self.session.sid,
            "gid": int(selected),
            "cov": wire.words_to_wire(covered),
        }
        payload.update(wire.delta_to_wire(newly))
        self.router.broadcast(self.shard_id, payload, self.session)

    def close(self) -> None:
        self.router.close_session(self.shard_id, self.session)

    def _note_fe(self, result: dict) -> None:
        fe = result.get("fe")
        if isinstance(fe, int) and fe > self._fe:
            self._fe = fe

    def __repr__(self) -> str:
        return (
            f"<RemoteFrontier shard={self.shard_id} "
            f"sid={self.session.sid} relevant={self.relevant_global.size}>"
        )


class RemoteRoundSearch:
    """Round cursor over the replicated frontier (lazy pull protocol).

    ``peek`` is the last bound the serving replica reported.  After a
    failover it may be *stale-low* relative to the new (behind) primary —
    that is still sound: the cached value upper-bounds every candidate
    the coordinator has not consumed, and anything the behind replica
    re-offers above it is a duplicate the incumbent logic discards.
    """

    def __init__(self, frontier: RemoteFrontier, peek: float):
        self.frontier = frontier
        self._peek = peek

    def peek(self) -> float:
        return self._peek

    def next(self, min_useful: float, tie_gid: int | None):
        session = self.frontier.session
        result = self.frontier.router.call(
            self.frontier.shard_id,
            {
                "op": "next",
                "sid": session.sid,
                "mu": None if min_useful == _NEG_INF else float(min_useful),
                "tie": None if tie_gid is None else int(tie_gid),
            },
            session,
            hedge=True,
        )
        peek = result.get("peek")
        self._peek = _NEG_INF if peek is None else float(peek)
        self.frontier._note_fe(result)
        candidate = result.get("cand")
        if candidate is None:
            return None
        neighborhood = wire.words_from_wire(
            candidate.get("nbhd"), self.frontier.universe.num_words
        )
        return int(candidate["gid"]), float(candidate["gain"]), neighborhood

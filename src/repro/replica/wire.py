"""Framing and value codecs for coordinator ↔ shard-worker traffic.

The transport reuses the service's shape — one JSON object per ``\\n``-
terminated line — over a ``socketpair`` shared with each forked worker,
so the protocol composes with every line-JSON tool the repo already has
and a wedged peer can never desynchronize more than one frame.

Safety properties enforced here (both directions):

* **Size cap** — :func:`read_frame` refuses to buffer more than
  ``max_bytes`` of one frame; an oversized peer is a
  :class:`~repro.replica.errors.ReplicaProtocolError` (worker side: a
  typed error response), never an unbounded allocation.
* **Shape check** — a frame must decode to a JSON object; anything else
  (garbage bytes, arrays, bare numbers) is a protocol error.

Bitset payloads cross the boundary as hex-encoded little-endian uint64
word arrays (:func:`words_to_wire` / :func:`words_from_wire`) — the
coordinator's packed coverage currency shipped verbatim, with the word
count validated against the declared universe so a short or bloated
payload cannot smear into downstream kernels.
"""

from __future__ import annotations

import json

import numpy as np

from repro.bitset import BitsetDelta
from repro.replica.errors import ReplicaDead, ReplicaProtocolError

#: Default cap on one frame.  Generous: the largest payload is a dense
#: covered bitset (8 bytes/64 graphs → 2 MiB of hex covers 8M relevant
#: graphs), yet small enough that a corrupt length cannot balloon memory.
MAX_FRAME_BYTES = 4 * 1024 * 1024


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """One JSON object as one line (compact separators)."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def read_frame(reader, *, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from a buffered binary reader.

    Returns the decoded object, ``None`` at clean EOF (peer closed between
    frames), raises :class:`ReplicaDead` on EOF mid-frame and
    :class:`ReplicaProtocolError` on an oversized or malformed frame.
    ``reader`` is anything with ``readline(limit)`` (``socket.makefile`` /
    ``io.BufferedReader``).
    """
    line = reader.readline(max_bytes + 1)
    if not line:
        return None
    if len(line) > max_bytes:
        raise ReplicaProtocolError(
            f"frame exceeds {max_bytes} bytes; peer is corrupt or hostile"
        )
    if not line.endswith(b"\n"):
        raise ReplicaDead("connection closed mid-frame")
    try:
        payload = json.loads(line)
    except ValueError as error:  # JSONDecodeError or undecodable bytes
        raise ReplicaProtocolError(
            f"frame is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise ReplicaProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# ---------------------------------------------------------------------------
# Bitset words
# ---------------------------------------------------------------------------
def words_to_wire(words: np.ndarray) -> str:
    """Packed uint64 word array → hex string (stable across fork peers)."""
    return np.ascontiguousarray(words, dtype="<u8").tobytes().hex()

def words_from_wire(text: str, num_words: int) -> np.ndarray:
    """Hex string → word array, validated against the expected length."""
    if not isinstance(text, str):
        raise ReplicaProtocolError("bitset payload must be a hex string")
    try:
        raw = bytes.fromhex(text)
    except ValueError as error:
        raise ReplicaProtocolError(
            f"bitset payload is not valid hex: {error}"
        ) from error
    if len(raw) != int(num_words) * 8:
        raise ReplicaProtocolError(
            f"bitset payload holds {len(raw) // 8} words, "
            f"expected {num_words}"
        )
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64, copy=True)


# ---------------------------------------------------------------------------
# Sparse deltas
# ---------------------------------------------------------------------------
def delta_to_wire(delta: BitsetDelta) -> dict:
    """Sparse broadcast delta → wire fields (indices + nonzero words)."""
    return {
        "idx": [int(i) for i in delta.indices],
        "vals": words_to_wire(np.asarray(delta.values, dtype=np.uint64)),
        "nbits": int(delta.nbits),
    }


def delta_from_wire(payload: dict) -> BitsetDelta:
    indices = payload.get("idx")
    if not isinstance(indices, list) or not all(
        isinstance(i, int) and not isinstance(i, bool) and i >= 0
        for i in indices
    ):
        raise ReplicaProtocolError(
            "delta 'idx' must be a list of non-negative integers"
        )
    values = words_from_wire(payload.get("vals"), len(indices))
    nbits = payload.get("nbits")
    if isinstance(nbits, bool) or not isinstance(nbits, int) or nbits < 0:
        raise ReplicaProtocolError("delta 'nbits' must be an integer >= 0")
    return BitsetDelta(
        np.asarray(indices, dtype=np.int64), values, nbits
    )

"""Failover routing: which replica answers, and what happens when it dies.

The :class:`ReplicaRouter` is the only code that talks to worker handles
on behalf of a query.  It implements three policies on top of the
supervisor's live view:

* **Routed reads with failover** (:meth:`call`) — the op goes to the
  shard's primary (first live replica); on a transport failure the
  worker is reported dead and the op retries on the next live sibling.
  Duplicated or re-ordered pulls are *safe by construction*: every
  frontier bound is a valid upper bound at any staleness, and exact
  gains are computed against the coordinator-supplied covered set, so a
  behind replica can cost extra pulls but never change the selected
  answer (the submodularity argument of ``shard/coordinator.py``).
* **Broadcast writes** (:meth:`broadcast`) — state-advancing ops
  (``begin_round`` / ``open_round`` / ``select`` / ``update``) go to
  *every* live replica so each one can take over as primary mid-round.
  One success suffices; replicas that miss a broadcast are repaired by
  session restore on their next contact.
* **Hedged reads** (optional) — with ``hedge_ms`` set, a read still
  unanswered after an adaptive delay (per-replica latency EMA plus three
  deviations, floored at ``hedge_ms``) is raced against a sibling; the
  first answer wins.  The loser's response is still fully read under its
  replica's lock, so the stream stays frame-synchronized.

Session state is restored lazily: before any op on a replica process
that has not seen this session (fresh restart, or LRU eviction signalled
by the typed ``unknown_session`` error), the router replays the session
log — open, selections, current round — from
:class:`~repro.replica.remote.SessionLog`.  Restored bounds are coarser
but still upper bounds; answers are unchanged.

When every replica of a shard is gone, :class:`ShardUnavailableError`
surfaces to the query session, which degrades to a flagged partial
answer over the surviving shards.
"""

from __future__ import annotations

import threading

from repro import obs
from repro.replica.errors import (
    ReplicaUnreachable,
    ReplicaWorkerError,
    ShardUnavailableError,
)
from repro.replica.supervisor import Supervisor, WorkerHandle


class ReplicaRouter:
    """Op-level routing over a :class:`Supervisor`'s worker fleet."""

    def __init__(
        self,
        supervisor: Supervisor,
        *,
        op_timeout_s: float = 10.0,
        hedge_ms: float | None = None,
    ):
        self.supervisor = supervisor
        self.op_timeout_s = float(op_timeout_s)
        self.hedge_ms = None if hedge_ms is None else float(hedge_ms)
        #: Hard cap on failover hops for one op — bounds worst-case
        #: latency even if the monitor keeps reviving doomed workers.
        self.max_failovers = 2 * supervisor.replicas + 2

    # ------------------------------------------------------------------
    # Public op surface
    # ------------------------------------------------------------------
    def call(self, shard_id: int, payload: dict, session=None,
             *, hedge: bool = False) -> dict:
        """Route one read op with failover (and optional hedging)."""
        causes: list[str] = []
        for _ in range(self.max_failovers):
            live = self.supervisor.live(shard_id)
            if not live:
                raise ShardUnavailableError(shard_id, causes)
            handle = live[0]
            try:
                if (
                    hedge
                    and self.hedge_ms is not None
                    and len(live) > 1
                ):
                    return self._hedged(handle, live[1], payload, session)
                return self._call_handle(handle, payload, session)
            except ReplicaUnreachable as error:
                causes.append(str(error))
                self.supervisor.report_failure(handle)
                obs.counter("replica.failovers")
        raise ShardUnavailableError(shard_id, causes)

    def broadcast(self, shard_id: int, payload: dict, session=None) -> dict:
        """Send a state-advancing op to every live replica of a shard.

        Returns the first successful result; raises
        :class:`ShardUnavailableError` when no replica accepted it.
        """
        causes: list[str] = []
        first_result: dict | None = None
        for handle in self.supervisor.live(shard_id):
            try:
                result = self._call_handle(handle, payload, session)
            except ReplicaUnreachable as error:
                causes.append(str(error))
                self.supervisor.report_failure(handle)
                obs.counter("replica.failovers")
                continue
            if first_result is None:
                first_result = result
        if first_result is None:
            raise ShardUnavailableError(shard_id, causes)
        return first_result

    def close_session(self, shard_id: int, session) -> None:
        """Best-effort session teardown on every live replica."""
        payload = {"op": "close", "sid": session.sid}
        for handle in self.supervisor.live(shard_id):
            if session.sid not in handle.sessions:
                continue
            try:
                handle.call(payload, self.op_timeout_s,
                            max_frame=self.supervisor.max_frame_bytes)
            except ReplicaUnreachable:
                pass  # it is dying anyway; the monitor will deal with it
            handle.sessions.discard(session.sid)

    # ------------------------------------------------------------------
    # One handle, one op
    # ------------------------------------------------------------------
    def _call_handle(self, handle: WorkerHandle, payload: dict,
                     session) -> dict:
        if session is not None:
            self._ensure_session(handle, session)
        response = handle.call(payload, self.op_timeout_s,
                               max_frame=self.supervisor.max_frame_bytes)
        if not response.get("ok"):
            code = (response.get("error") or {}).get("code")
            if code == "unknown_session" and session is not None:
                # Evicted (LRU) rather than restarted: replay and retry.
                handle.sessions.discard(session.sid)
                self._ensure_session(handle, session)
                response = handle.call(
                    payload, self.op_timeout_s,
                    max_frame=self.supervisor.max_frame_bytes,
                )
        return self._unwrap(response, session)

    def _unwrap(self, response: dict, session) -> dict:
        if response.get("ok"):
            if session is not None and "deg" in response:
                session.note_degradations(response["deg"])
            result = response.get("r")
            if not isinstance(result, dict):
                obs.counter("replica.protocol_errors")
                raise ReplicaUnreachable("response carries no result object")
            return result
        error = response.get("error")
        if not isinstance(error, dict):
            obs.counter("replica.protocol_errors")
            raise ReplicaUnreachable("response carries no error object")
        raise ReplicaWorkerError(
            str(error.get("code", "internal")),
            str(error.get("message", "")),
        )

    def _ensure_session(self, handle: WorkerHandle, session) -> None:
        """Make sure this replica process holds the session (replay log)."""
        if session.sid in handle.sessions:
            return
        if session.mid_query:
            obs.counter("replica.session_restores")
        for step in session.replay_payloads():
            response = handle.call(
                step, self.op_timeout_s,
                max_frame=self.supervisor.max_frame_bytes,
            )
            result = self._unwrap(response, session)
            if step.get("op") == "open":
                session.note_open_result(result)
        handle.sessions.add(session.sid)

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def _hedged(self, primary: WorkerHandle, sibling: WorkerHandle,
                payload: dict, session) -> dict:
        """Race primary vs sibling after an adaptive delay."""
        lock = threading.Condition()
        outcomes: list[tuple[WorkerHandle, str, object]] = []

        def attempt(handle: WorkerHandle) -> None:
            try:
                result = self._call_handle(handle, payload, session)
                entry = (handle, "ok", result)
            except ReplicaUnreachable as error:
                # The loser (or any failed leg) reports itself — the main
                # thread may have returned already.
                self.supervisor.report_failure(handle)
                entry = (handle, "err", error)
            except ReplicaWorkerError as error:
                entry = (handle, "fatal", error)
            with lock:
                outcomes.append(entry)
                lock.notify_all()

        threads = [threading.Thread(
            target=attempt, args=(primary,), daemon=True,
        )]
        threads[0].start()
        delay = max(self.hedge_ms / 1000.0, primary.hedge_latency)
        launched = 1
        with lock:
            lock.wait_for(lambda: outcomes, timeout=delay)
            if not outcomes:
                obs.counter("replica.hedges")
                hedge_thread = threading.Thread(
                    target=attempt, args=(sibling,), daemon=True,
                )
                hedge_thread.start()
                threads.append(hedge_thread)
                launched = 2
            while True:
                for handle, status, value in outcomes:
                    if status == "ok":
                        if handle is sibling:
                            obs.counter("replica.hedge_wins")
                        return value  # type: ignore[return-value]
                    if status == "fatal":
                        raise value  # type: ignore[misc]
                if len(outcomes) >= launched:
                    # every leg failed with a transport error
                    raise outcomes[0][2]  # type: ignore[misc]
                lock.wait()

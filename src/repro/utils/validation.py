"""Argument validation helpers.

The public API validates user input eagerly and raises ``ValueError`` with a
message naming the offending parameter, per the project style of failing
loudly at the boundary instead of deep inside a search loop.
"""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")

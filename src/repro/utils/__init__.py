"""Small shared utilities: deterministic RNG handling, timing, validation."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    require,
    require_positive,
    require_non_negative,
    require_in_range,
)

__all__ = [
    "ensure_rng",
    "Stopwatch",
    "timed",
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
]

"""Wall-clock timing helpers used by the benchmark harness.

``perf_counter`` based, so the numbers are monotonic and high resolution.
These helpers deliberately stay tiny: the benchmark harness composes them
into parameter sweeps.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Supports repeated start/stop cycles and reports the total elapsed time,
    which is what the per-phase instrumentation in the query engine needs
    (e.g. total time spent in edit-distance calls across a whole query).
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @contextmanager
    def measure(self):
        """Context manager form: ``with sw.measure(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


@contextmanager
def timed():
    """Measure a block; read ``.elapsed`` on the yielded stopwatch afterwards.

    >>> with timed() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """
    sw = Stopwatch()
    sw.start()
    try:
        yield sw
    finally:
        if sw.running:
            sw.stop()

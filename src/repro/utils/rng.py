"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (dataset generators, vantage point
selection, pivot selection in the NB-Tree, query sampling in benchmarks)
accepts a ``seed`` argument that may be:

* ``None`` — a fresh, OS-seeded generator (non-reproducible),
* an ``int`` — a fixed seed,
* an existing :class:`numpy.random.Generator` — used as-is, which lets a
  caller thread a single generator through a whole pipeline.

Centralizing the coercion here keeps signatures short and behaviour uniform.
"""

from __future__ import annotations

import warnings

import numpy as np

SeedLike = "int | None | np.random.Generator"


def ensure_rng(seed: "int | None | np.random.Generator") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    >>> rng = ensure_rng(7)
    >>> rng2 = ensure_rng(rng)
    >>> rng is rng2
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def resolve_seed(seed, rng, owner: str) -> np.random.Generator:
    """Coerce the ``seed=`` argument, honouring a deprecated ``rng=`` alias.

    The public API renamed ``rng=`` to ``seed=`` (the argument always
    accepted plain ints and Generators alike, and every other stochastic
    entry point already said ``seed``).  Old callers keep working for one
    release with a :class:`DeprecationWarning`; passing both is an error.
    """
    if rng is not None:
        warnings.warn(
            f"{owner}: the 'rng' argument is deprecated, use 'seed='",
            DeprecationWarning,
            stacklevel=3,
        )
        if seed is not None:
            raise TypeError(
                f"{owner}: pass either 'seed=' or the deprecated 'rng=', not both"
            )
        seed = rng
    return ensure_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so a pipeline seeded once is
    reproducible end-to-end even when sub-components consume randomness in
    different orders across versions.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]

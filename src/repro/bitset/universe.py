"""Id ↔ position mapping for packed bitsets over a fixed id universe.

The greedy engines all operate on subsets of one frozen universe — the
relevant set ``L_q`` — whose member ids are ascending database ids.  A
:class:`BitsetUniverse` pins that ordering once per query (position =
rank of the id within the universe) so every bitset built against it is
layout-compatible: the same ids always occupy the same bits, unions and
popcounts are meaningful across producers (greedy, NB-Index sessions,
shard frontiers), and decoding recovers exactly the original ids.
"""

from __future__ import annotations

import numpy as np

from repro.bitset import kernel
from repro.utils.validation import require


class BitsetUniverse:
    """A frozen ascending id universe and its packed-bitset codec."""

    __slots__ = ("ids", "size", "num_words", "_position")

    def __init__(self, ids):
        self.ids = np.asarray(ids, dtype=np.int64).ravel()
        if self.ids.size > 1:
            require(
                bool(np.all(self.ids[1:] > self.ids[:-1])),
                "universe ids must be strictly ascending",
            )
        self.size = int(self.ids.size)
        self.num_words = kernel.num_words(self.size)
        self._position = {int(g): p for p, g in enumerate(self.ids)}

    # -- membership ----------------------------------------------------
    def __contains__(self, gid) -> bool:
        return int(gid) in self._position

    def position(self, gid) -> int | None:
        """Bit position of one id, or ``None`` for a non-member."""
        return self._position.get(int(gid))

    def positions_of(self, ids) -> np.ndarray:
        """Vectorized id → position lookup (every id must be a member)."""
        ids = np.asarray(ids, dtype=np.int64)
        if not ids.size:
            return np.empty(0, dtype=np.int64)
        positions = np.searchsorted(self.ids, ids)
        require(
            bool(np.all(positions < self.size))
            and bool(np.all(self.ids[positions] == ids)),
            "id outside the bitset universe",
        )
        return positions.astype(np.int64)

    def member_positions(self, ids) -> np.ndarray:
        """Positions of the ids that ARE members; non-members are dropped.

        The vectorized form of ``[position(i) for i in ids if i in self]``
        — one searchsorted over the candidate block, no per-id Python.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if not ids.size or not self.size:
            return np.empty(0, dtype=np.int64)
        clipped = np.minimum(np.searchsorted(self.ids, ids), self.size - 1)
        return clipped[self.ids[clipped] == ids].astype(np.int64)

    # -- constructors --------------------------------------------------
    def empty(self) -> np.ndarray:
        return kernel.zeros(self.size)

    def empty_matrix(self, rows: int) -> np.ndarray:
        return kernel.zeros_matrix(rows, self.size)

    def full(self) -> np.ndarray:
        return kernel.full(self.size)

    def encode_positions(self, positions) -> np.ndarray:
        return kernel.from_positions(positions, self.size)

    def encode_ids(self, ids) -> np.ndarray:
        return kernel.from_positions(self.positions_of(ids), self.size)

    # -- decoding ------------------------------------------------------
    def decode_ids(self, words: np.ndarray) -> np.ndarray:
        """Member ids, ascending."""
        return self.ids[kernel.to_positions(words)]

    def decode_frozenset(self, words: np.ndarray) -> frozenset[int]:
        """Member ids as the frozenset the set-based engines produced."""
        return frozenset(int(g) for g in self.decode_ids(words))

    def min_id(self, words: np.ndarray, default: int) -> int:
        """Smallest member id (tie-break key), or ``default`` when empty."""
        position = kernel.first_set(words)
        return default if position < 0 else int(self.ids[position])

    @property
    def row_bytes(self) -> int:
        """Bytes one packed subset of this universe occupies."""
        return self.num_words * 8

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"<BitsetUniverse size={self.size} words={self.num_words}>"

"""Word-aligned bitset deltas — the coordinator's broadcast currency.

After each greedy selection the coordinator must tell every shard frontier
which relevant graphs just became covered.  Shipping the id list replays
the per-id Python cost on every shard; shipping the full covered bitset
wastes words that did not change.  A :class:`BitsetDelta` is the sparse
middle ground: only the *nonzero words* of the newly-covered set, as
``(word index, word value)`` pairs.  Frontiers consume it directly —
Theorem 7 decrements become a popcount over the delta's words gathered
from the node's relevant bitmap, with no per-id work and no full-width
temporary.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.bitset import kernel


class BitsetDelta:
    """Sparse view of a bitset: its nonzero words only."""

    __slots__ = ("indices", "values", "nbits")

    def __init__(self, indices: np.ndarray, values: np.ndarray, nbits: int):
        self.indices = indices
        self.values = values
        self.nbits = int(nbits)

    @classmethod
    def from_words(cls, words: np.ndarray, nbits: int) -> "BitsetDelta":
        indices = np.flatnonzero(words)
        delta = cls(indices, words[indices], nbits)
        obs.counter("bitset.words", int(indices.size))
        return delta

    @property
    def num_words(self) -> int:
        """Words actually shipped (vs ``ceil(nbits / 64)`` for the dense set)."""
        return int(self.indices.size)

    def intersection_count(self, row: np.ndarray) -> int:
        """``|row ∩ delta|`` touching only the delta's words."""
        if not self.indices.size:
            return 0
        obs.counter("bitset.popcounts")
        return int(kernel._word_counts(row[self.indices] & self.values).sum())

    def test(self, position: int) -> bool:
        """Membership of one universe position in the delta."""
        position = int(position)
        word = np.searchsorted(self.indices, position >> 6)
        if word >= self.indices.size or self.indices[word] != position >> 6:
            return False
        return bool(
            (self.values[word] >> np.uint64(position & 63)) & np.uint64(1)
        )

    def to_words(self) -> np.ndarray:
        """Densify back to a full word array."""
        words = kernel.zeros(self.nbits)
        words[self.indices] = self.values
        return words

    def popcount(self) -> int:
        if not self.values.size:
            return 0
        return int(kernel._word_counts(self.values).sum())

    def __repr__(self) -> str:
        return f"<BitsetDelta words={self.num_words}/{kernel.num_words(self.nbits)}>"

"""repro.bitset — packed uint64 bitset kernel for the coverage hot path.

Three pieces:

* :mod:`repro.bitset.kernel` — word-level set algebra (union, difference,
  vectorized popcounts, batch uncovered counts) over little-endian uint64
  arrays;
* :class:`~repro.bitset.universe.BitsetUniverse` — the frozen id ↔ bit
  position mapping that makes bitsets from different engines
  layout-compatible for one query;
* :class:`~repro.bitset.delta.BitsetDelta` — word-aligned sparse deltas
  used to broadcast newly covered ids to shard frontiers.

The kernel is the storage layer under :mod:`repro.core.greedy`, the
NB-Index :class:`~repro.index.nbindex.QuerySession`, and the sharded
coordinator; all of them remain bit-identical to the per-id set-based
implementations they replaced (see :mod:`repro.core.setgreedy` and the
dual-run gate in ``tests/test_hotpath_identity.py``).
"""

from repro.bitset import kernel
from repro.bitset.delta import BitsetDelta
from repro.bitset.kernel import (
    WORD_BITS,
    andnot,
    equals,
    first_set,
    from_positions,
    full,
    intersection,
    intersection_count,
    num_words,
    popcount,
    popcount_rows,
    set_bit,
    test_bit,
    test_positions,
    to_positions,
    uncovered_count,
    uncovered_counts,
    union_into,
    zeros,
    zeros_matrix,
)
from repro.bitset.universe import BitsetUniverse

__all__ = [
    "WORD_BITS",
    "BitsetDelta",
    "BitsetUniverse",
    "kernel",
    "andnot",
    "equals",
    "first_set",
    "from_positions",
    "full",
    "intersection",
    "intersection_count",
    "num_words",
    "popcount",
    "popcount_rows",
    "set_bit",
    "test_bit",
    "test_positions",
    "to_positions",
    "uncovered_count",
    "uncovered_counts",
    "union_into",
    "zeros",
    "zeros_matrix",
]

"""Packed-bitset primitives: sets of small integers as uint64 word arrays.

A set over a universe of ``n`` positions is stored as ``ceil(n / 64)``
little-endian uint64 words — position ``p`` lives in word ``p >> 6`` at bit
``p & 63``.  Set algebra then becomes word-parallel bitwise arithmetic:
union is ``|``, difference is ``& ~``, and cardinality is a vectorized
popcount.  The coverage bookkeeping of the greedy hot path (marginal gains,
Theorem 6–8 batch decrements, foreign-uncovered counts) reduces to exactly
these operations, so a ``k``-round greedy over ``R`` relevant graphs costs
``O(k · R · R/64)`` word operations in numpy instead of ``O(k · R · |N̂|)``
Python set-element visits — the order-of-magnitude the MSQ-Index line of
work gets from succinct bit-level structures.

Everything here is layout-stable and deterministic: the same member set
always produces the same words, so engines built on this kernel stay
bit-identical to their set-based references (enforced by
``tests/test_bitset.py`` property tests and the dual-run gate in
``tests/test_hotpath_identity.py``).

The batch entry points report ``bitset.words`` (words touched) and
``bitset.popcounts`` (rows counted) through :mod:`repro.obs`; with
observability off these are no-ops.
"""

from __future__ import annotations

import numpy as np

from repro import obs

#: Bits per storage word.
WORD_BITS = 64
_WORD_SHIFT = 6
_WORD_MASK = 63
_ONE = np.uint64(1)
_U64_63 = np.uint64(63)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    _word_counts = np.bitwise_count
else:  # pragma: no cover - exercised only on numpy 1.x
    _BYTE_COUNTS = np.array(
        [bin(b).count("1") for b in range(256)], dtype=np.uint8
    )

    def _word_counts(words: np.ndarray) -> np.ndarray:
        view = words.view(np.uint8)
        return (
            _BYTE_COUNTS[view]
            .reshape(words.shape + (8,))
            .sum(axis=-1, dtype=np.uint64)
        )


def num_words(nbits: int) -> int:
    """Words needed for a universe of ``nbits`` positions."""
    return (int(nbits) + WORD_BITS - 1) >> _WORD_SHIFT


def zeros(nbits: int) -> np.ndarray:
    """The empty set over an ``nbits``-position universe."""
    return np.zeros(num_words(nbits), dtype=np.uint64)


def zeros_matrix(rows: int, nbits: int) -> np.ndarray:
    """``rows`` empty sets as one contiguous ``(rows, words)`` matrix."""
    out = np.zeros((int(rows), num_words(nbits)), dtype=np.uint64)
    obs.counter("bitset.words", out.size)
    return out


def full(nbits: int) -> np.ndarray:
    """The full set: every position below ``nbits``, trailing bits clear."""
    nbits = int(nbits)
    out = np.full(num_words(nbits), np.uint64(0xFFFFFFFFFFFFFFFF))
    tail = nbits & _WORD_MASK
    if out.size and tail:
        out[-1] = (_ONE << np.uint64(tail)) - _ONE
    return out


def from_positions(positions, nbits: int) -> np.ndarray:
    """Pack an iterable/array of positions into words."""
    words = zeros(nbits)
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size:
        bits = _ONE << (positions.astype(np.uint64) & _U64_63)
        np.bitwise_or.at(words, positions >> _WORD_SHIFT, bits)
    return words


def to_positions(words: np.ndarray) -> np.ndarray:
    """Member positions, ascending (inverse of :func:`from_positions`)."""
    if not words.size:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits).astype(np.int64)


def popcount(words: np.ndarray) -> int:
    """``|A|`` — total set bits."""
    obs.counter("bitset.popcounts")
    return int(_word_counts(words).sum())


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row cardinalities of a ``(rows, words)`` matrix."""
    obs.counter("bitset.popcounts", matrix.shape[0])
    obs.counter("bitset.words", matrix.size)
    return _word_counts(matrix).sum(axis=1, dtype=np.int64)


def uncovered_count(words: np.ndarray, covered: np.ndarray) -> int:
    """``|A \\ covered|`` — the marginal-gain primitive, one row."""
    obs.counter("bitset.popcounts")
    return int(_word_counts(words & ~covered).sum())


def uncovered_counts(matrix: np.ndarray, covered: np.ndarray) -> np.ndarray:
    """``|A_r \\ covered|`` for every row at once — the batch marginal-gain
    primitive behind the vectorized greedy argmax."""
    obs.counter("bitset.popcounts", matrix.shape[0])
    obs.counter("bitset.words", matrix.size)
    return _word_counts(matrix & ~covered[None, :]).sum(axis=1, dtype=np.int64)


def union_into(dst: np.ndarray, src: np.ndarray) -> None:
    """``dst |= src`` in place."""
    np.bitwise_or(dst, src, out=dst)


def andnot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``A \\ B`` as a fresh word array."""
    return a & ~b


def intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``A ∩ B`` as a fresh word array."""
    return a & b


def intersection_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|A ∩ B|`` without materializing member lists."""
    obs.counter("bitset.popcounts")
    return int(_word_counts(a & b).sum())


def set_bit(words: np.ndarray, position: int) -> None:
    """Add one position in place."""
    position = int(position)
    words[position >> _WORD_SHIFT] |= _ONE << np.uint64(position & _WORD_MASK)


def test_bit(words: np.ndarray, position: int) -> bool:
    """Membership of one position."""
    position = int(position)
    return bool(
        (words[position >> _WORD_SHIFT] >> np.uint64(position & _WORD_MASK))
        & _ONE
    )


def test_positions(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Vectorized membership mask for an array of positions."""
    positions = np.asarray(positions, dtype=np.int64)
    if not positions.size:
        return np.zeros(0, dtype=bool)
    shifts = positions.astype(np.uint64) & _U64_63
    return ((words[positions >> _WORD_SHIFT] >> shifts) & _ONE).astype(bool)


def first_set(words: np.ndarray) -> int:
    """Smallest member position, or ``-1`` for the empty set."""
    nonzero = np.flatnonzero(words)
    if not nonzero.size:
        return -1
    word_index = int(nonzero[0])
    word = int(words[word_index])
    return (word_index << _WORD_SHIFT) + (word & -word).bit_length() - 1


def equals(a: np.ndarray, b: np.ndarray) -> bool:
    """Set equality (same universe assumed)."""
    return bool(np.array_equal(a, b))

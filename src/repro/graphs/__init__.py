"""Graph data model: labelled graphs, the graph database, relevance functions."""

from repro.graphs.graph import (
    DEFAULT_EDGE_LABEL,
    LabeledGraph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.database import GraphDatabase
from repro.graphs.relevance import (
    And,
    AverageScoreThreshold,
    CallableQuery,
    ExpertiseOverlapQuery,
    Not,
    Or,
    JaccardTopicQuery,
    QueryFunction,
    WeightedScoreThreshold,
    quartile_relevance,
)
from repro.graphs.io import load_database, save_database

__all__ = [
    "DEFAULT_EDGE_LABEL",
    "LabeledGraph",
    "GraphDatabase",
    "QueryFunction",
    "AverageScoreThreshold",
    "WeightedScoreThreshold",
    "JaccardTopicQuery",
    "ExpertiseOverlapQuery",
    "CallableQuery",
    "And",
    "Or",
    "Not",
    "quartile_relevance",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "load_database",
    "save_database",
]

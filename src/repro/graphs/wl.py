"""Weisfeiler–Lehman structural fingerprints.

WL color refinement assigns every vertex a color summarizing its
``h``-hop labelled neighborhood; the sorted multiset of final colors is an
isomorphism-*invariant* fingerprint of the graph (equal for isomorphic
graphs, and distinct for most — though not all — non-isomorphic ones).

Uses in this library:

* fast duplicate detection in generated datasets (exact GED = 0 implies
  equal WL hashes, so hashing buckets candidates before any edit-distance
  work);
* an independent invariance oracle in tests: distances and hashes must be
  unchanged under vertex permutation.

Edge labels participate in the refinement, matching the rest of the
library's labelled-graph model.
"""

from __future__ import annotations

import hashlib
from collections import Counter

from repro.graphs.graph import LabeledGraph
from repro.utils.validation import require


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def wl_node_colors(g: LabeledGraph, iterations: int = 3) -> list[str]:
    """Per-vertex WL colors after ``iterations`` refinement rounds."""
    require(iterations >= 0, f"iterations must be >= 0, got {iterations}")
    colors = [_digest(g.node_label(v)) for v in g.nodes()]
    for _ in range(iterations):
        new_colors = []
        for v in g.nodes():
            neighborhood = sorted(
                (g.edge_label(v, u), colors[u]) for u in g.neighbors(v)
            )
            payload = colors[v] + "|" + ";".join(
                f"{edge}:{color}" for edge, color in neighborhood
            )
            new_colors.append(_digest(payload))
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def wl_hash(g: LabeledGraph, iterations: int = 3) -> str:
    """Isomorphism-invariant graph fingerprint.

    Isomorphic graphs always hash equal; unequal hashes prove
    non-isomorphism.  (Equal hashes do *not* prove isomorphism — WL has
    well-known blind spots such as regular graphs.)
    """
    histogram = Counter(wl_node_colors(g, iterations))
    payload = ";".join(
        f"{color}x{count}" for color, count in sorted(histogram.items())
    )
    return _digest(f"{g.num_nodes}|{g.num_edges}|{payload}")


def deduplicate(graphs, iterations: int = 3) -> dict[str, list[int]]:
    """Bucket graph indices by WL hash.

    Graphs in different buckets are certainly non-isomorphic; within a
    bucket, confirm with exact comparison if needed.
    """
    buckets: dict[str, list[int]] = {}
    for index, g in enumerate(graphs):
        buckets.setdefault(wl_hash(g, iterations), []).append(index)
    return buckets

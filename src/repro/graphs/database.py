"""The graph database: graphs paired with feature vectors.

The paper's data model (Section 2) tags every graph ``g_i`` with a feature
vector characterizing its properties — binding affinities, topic sets,
activity levels — on which the query-time relevance function operates.
:class:`GraphDatabase` stores the graphs and a dense ``(n, m)`` feature
matrix side by side and provides the relevance machinery on top.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.graphs.graph import LabeledGraph
from repro.utils.validation import require


class GraphDatabase:
    """An in-memory graph database ``D = {g_1 … g_n}`` with feature vectors.

    Parameters
    ----------
    graphs:
        The database graphs.  Each graph's ``graph_id`` is overwritten with
        its position so that ids are always dense ``0..n-1`` indices.
    features:
        Array-like of shape ``(n, m)`` — one ``m``-dimensional feature vector
        per graph.  A 1-D array of length ``n`` is accepted and reshaped to
        ``(n, 1)``.
    """

    def __init__(self, graphs: Iterable[LabeledGraph], features):
        self._graphs: list[LabeledGraph] = list(graphs)
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        require(
            matrix.ndim == 2,
            f"features must be 1-D or 2-D, got shape {matrix.shape}",
        )
        require(
            matrix.shape[0] == len(self._graphs),
            f"{len(self._graphs)} graphs but {matrix.shape[0]} feature rows",
        )
        self._features = matrix
        self._features.setflags(write=False)
        for i, g in enumerate(self._graphs):
            g.graph_id = i
        self._deleted: set[int] = set()

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, index: int) -> LabeledGraph:
        return self._graphs[index]

    def __iter__(self) -> Iterator[LabeledGraph]:
        return iter(self._graphs)

    @property
    def graphs(self) -> Sequence[LabeledGraph]:
        return self._graphs

    @property
    def features(self) -> np.ndarray:
        """Read-only ``(n, m)`` feature matrix."""
        return self._features

    @property
    def num_features(self) -> int:
        return self._features.shape[1]

    def feature_vector(self, index: int) -> np.ndarray:
        """Feature vector of graph ``index``."""
        return self._features[index]

    # ------------------------------------------------------------------
    # Relevance
    # ------------------------------------------------------------------
    def relevant_indices(self, query_fn) -> np.ndarray:
        """Indices of relevant graphs ``L_q`` under a query function.

        ``query_fn`` is anything from :mod:`repro.graphs.relevance` (or any
        callable taking a single feature row and returning truthy/falsy).
        Vectorized query functions (exposing ``mask``) are applied in one
        shot; plain callables row by row.
        """
        mask_fn = getattr(query_fn, "mask", None)
        if mask_fn is not None:
            mask = np.asarray(mask_fn(self._features), dtype=bool)
            require(
                mask.shape == (len(self),),
                f"query mask has shape {mask.shape}, expected ({len(self)},)",
            )
        else:
            mask = np.fromiter(
                (bool(query_fn(row)) for row in self._features),
                dtype=bool,
                count=len(self),
            )
        if self._deleted:
            mask = mask.copy()
            mask[sorted(self._deleted)] = False
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    # Soft deletion
    # ------------------------------------------------------------------
    def mark_deleted(self, gid: int) -> None:
        """Soft-delete a graph: it stays addressable (ids remain dense and
        index structures remain valid) but is never relevant again, so no
        engine will return or count it.
        """
        require(0 <= gid < len(self), f"gid {gid} outside 0..{len(self) - 1}")
        self._deleted.add(int(gid))

    def restore(self, gid: int) -> None:
        """Undo a soft deletion."""
        self._deleted.discard(int(gid))

    def is_deleted(self, gid: int) -> bool:
        return int(gid) in self._deleted

    @property
    def deleted(self) -> frozenset[int]:
        return frozenset(self._deleted)

    def subset(self, indices: Sequence[int]) -> "GraphDatabase":
        """A new database restricted to ``indices`` (ids are renumbered).

        Soft-deletion marks are *not* carried over: the subset is a fresh
        database over copies of the selected graphs.
        """
        indices = list(indices)
        graphs = [self._copy_graph(self._graphs[i]) for i in indices]
        return GraphDatabase(graphs, self._features[indices])

    def sample(self, size: int, rng: np.random.Generator) -> "GraphDatabase":
        """A uniform random sample of ``size`` graphs (without replacement)."""
        require(0 < size <= len(self), f"sample size {size} not in 1..{len(self)}")
        indices = rng.choice(len(self), size=size, replace=False)
        return self.subset(sorted(int(i) for i in indices))

    @staticmethod
    def _copy_graph(g: LabeledGraph) -> LabeledGraph:
        return LabeledGraph(g.node_labels, g.edges())

    def append(self, graph: LabeledGraph, feature_row) -> int:
        """Add a graph to the database; returns its new id.

        The feature matrix is rebuilt (O(n) copy) — appends are expected to
        be occasional, e.g. feeding :meth:`repro.index.NBIndex.insert`.
        """
        row = np.asarray(feature_row, dtype=float).reshape(1, -1)
        require(
            row.shape[1] == self.num_features,
            f"feature row has {row.shape[1]} dims, database has "
            f"{self.num_features}",
        )
        new_id = len(self._graphs)
        graph.graph_id = new_id
        self._graphs.append(graph)
        matrix = np.vstack([self._features, row])
        matrix.setflags(write=False)
        self._features = matrix
        return new_id

    # ------------------------------------------------------------------
    # Summary statistics (Table 3 of the paper)
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Dataset statistics in the shape of the paper's Table 3."""
        nodes = [g.num_nodes for g in self._graphs]
        edges = [g.num_edges for g in self._graphs]
        return {
            "num_graphs": len(self._graphs),
            "avg_nodes": float(np.mean(nodes)) if nodes else 0.0,
            "avg_edges": float(np.mean(edges)) if edges else 0.0,
            "num_features": self.num_features,
        }

    def __repr__(self) -> str:
        return (
            f"<GraphDatabase n={len(self)} "
            f"features={self._features.shape[1]}d>"
        )

"""Serialization of graphs and databases.

A :class:`~repro.graphs.database.GraphDatabase` round-trips through a simple
JSON-lines format: the first line is a header with the feature dimensionality,
then one JSON object per graph carrying labels, edges and the feature vector.
The format is intentionally boring — greppable, diffable and stable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import LabeledGraph

FORMAT_VERSION = 1


def graph_to_dict(g: LabeledGraph) -> dict:
    """JSON-serializable dict for one graph (without features)."""
    return {
        "labels": list(g.node_labels),
        "edges": [[u, v, label] for u, v, label in g.edges()],
    }


def graph_from_dict(data: dict, graph_id: int | None = None) -> LabeledGraph:
    """Inverse of :func:`graph_to_dict`."""
    return LabeledGraph(
        data["labels"],
        [(u, v, label) for u, v, label in data["edges"]],
        graph_id=graph_id,
    )


def save_database(database: GraphDatabase, path: str | Path) -> None:
    """Write a database to ``path`` in JSON-lines format.

    The write goes through :func:`~repro.resilience.atomic_write`
    (temp file + fsync + rename), so a crash mid-write leaves any previous
    file at ``path`` intact instead of a truncated dataset.
    """
    from repro.resilience.atomicio import atomic_write

    path = Path(path)
    with atomic_write(path, "w", encoding="utf-8") as fh:
        header = {
            "format": "repro-graphdb",
            "version": FORMAT_VERSION,
            "num_graphs": len(database),
            "num_features": database.num_features,
        }
        deleted = sorted(int(g) for g in database.deleted)
        if deleted:
            # Tombstones round-trip so a mutated database saved to disk
            # stays bit-identical to its live twin (additive key: files
            # without it load exactly as before).
            header["deleted"] = deleted
        fh.write(json.dumps(header) + "\n")
        for i, g in enumerate(database):
            record = graph_to_dict(g)
            record["features"] = [float(x) for x in database.feature_vector(i)]
            fh.write(json.dumps(record) + "\n")


def load_database(path: str | Path) -> GraphDatabase:
    """Read a database written by :func:`save_database`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != "repro-graphdb":
            raise ValueError(f"{path} is not a repro graph database file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported format version {header.get('version')} "
                f"(expected {FORMAT_VERSION})"
            )
        graphs: list[LabeledGraph] = []
        features: list[list[float]] = []
        for line in fh:
            if not line.strip():
                continue
            record = json.loads(line)
            graphs.append(graph_from_dict(record))
            features.append(record["features"])
    if len(graphs) != header["num_graphs"]:
        raise ValueError(
            f"{path} declares {header['num_graphs']} graphs but has {len(graphs)}"
        )
    database = GraphDatabase(graphs, np.asarray(features, dtype=float))
    for gid in header.get("deleted", ()):
        database.mark_deleted(int(gid))
    return database

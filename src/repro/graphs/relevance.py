"""Query-time relevance functions ``q : features → {-1, +1}``.

The paper's model (Definition 1) classifies each graph as relevant or not via
a user-provided function over its feature vector.  Table 1 of the paper lists
four application archetypes; each has a concrete implementation here:

* Example 1 (molecular library): :class:`AverageScoreThreshold` — the mean of
  a chosen subset of affinity dimensions against a threshold.
* Example 2 (information cascades): :class:`JaccardTopicQuery` — Jaccard
  similarity of a binary topic vector against a query topic set.
* Example 3 (bug analysis): :class:`WeightedScoreThreshold` — ``w·g`` against
  a threshold.
* Example 4 (social networks): :class:`ExpertiseOverlapQuery` — size of the
  intersection with a query expertise set.

All implementations expose both a scalar ``__call__(row) → bool`` and a
vectorized ``mask(matrix) → bool array``, plus ``score``/``scores`` so the
traditional top-k baseline (Fig. 7) can rank by the same notion of relevance.

The paper's experiments (Sec. 8.2.1) declare a graph relevant when its
feature-space score falls in the top quartile; :func:`quartile_relevance`
builds exactly that query from a database.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.utils.validation import require


class QueryFunction:
    """Base class for relevance functions.

    Subclasses implement :meth:`scores`; relevance is ``score >= threshold``.
    """

    #: score at or above which a graph is relevant
    threshold: float

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        """Vector of feature-space scores, one per row of ``matrix``."""
        raise NotImplementedError

    def score(self, row: np.ndarray) -> float:
        """Feature-space score of a single feature vector."""
        return float(self.scores(np.atleast_2d(np.asarray(row, dtype=float)))[0])

    def mask(self, matrix: np.ndarray) -> np.ndarray:
        """Boolean relevance mask over all rows of ``matrix``."""
        return self.scores(np.asarray(matrix, dtype=float)) >= self.threshold

    def __call__(self, row) -> bool:
        return bool(self.score(row) >= self.threshold)

    def label(self, row) -> int:
        """The paper's ``{-1, +1}`` convention."""
        return 1 if self(row) else -1


class AverageScoreThreshold(QueryFunction):
    """Example 1 of Table 1: mean of selected dimensions vs a threshold.

    ``q(g) = (1/d) * Σ_{j ∈ dims} g_j ≥ threshold`` — the experimental setup
    of Sec. 8.2.1, where a random subset of ``d`` of DUD's 10 dimensions is
    averaged.
    """

    def __init__(self, dims: Sequence[int], threshold: float):
        self.dims = tuple(int(d) for d in dims)
        require(len(self.dims) > 0, "dims must be non-empty")
        self.threshold = float(threshold)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        return matrix[:, list(self.dims)].mean(axis=1)

    def __repr__(self) -> str:
        return f"AverageScoreThreshold(dims={self.dims}, threshold={self.threshold:g})"


class WeightedScoreThreshold(QueryFunction):
    """Example 3 of Table 1: ``q(g) = wᵀ·g ≥ threshold``."""

    def __init__(self, weights: Sequence[float], threshold: float):
        self.weights = np.asarray(weights, dtype=float)
        require(self.weights.ndim == 1, "weights must be a vector")
        self.threshold = float(threshold)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        require(
            matrix.shape[1] == self.weights.shape[0],
            f"feature dim {matrix.shape[1]} != weight dim {self.weights.shape[0]}",
        )
        return matrix @ self.weights

    def __repr__(self) -> str:
        return f"WeightedScoreThreshold(dim={len(self.weights)}, threshold={self.threshold:g})"


class JaccardTopicQuery(QueryFunction):
    """Example 2 of Table 1: Jaccard similarity against a topic set.

    Feature vectors are interpreted as binary topic-membership indicators;
    ``q(g, T) = |g ∩ T| / |g ∪ T| ≥ threshold``.
    """

    def __init__(self, topics: Sequence[int], num_topics: int, threshold: float):
        self.topics = np.zeros(num_topics, dtype=bool)
        for t in topics:
            require(0 <= t < num_topics, f"topic {t} outside 0..{num_topics - 1}")
            self.topics[t] = True
        require(self.topics.any(), "topic set must be non-empty")
        self.threshold = float(threshold)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        binary = matrix > 0.5
        intersection = (binary & self.topics).sum(axis=1)
        union = (binary | self.topics).sum(axis=1)
        # A graph with no topics and an empty union can't occur (topic set is
        # non-empty), so union >= 1 always.
        return intersection / union

    def __repr__(self) -> str:
        chosen = tuple(int(i) for i in np.flatnonzero(self.topics))
        return f"JaccardTopicQuery(topics={chosen}, threshold={self.threshold:g})"


class ExpertiseOverlapQuery(QueryFunction):
    """Example 4 of Table 1: ``q(g, E) = |g ∩ E| ≥ threshold``."""

    def __init__(self, expertise: Sequence[int], num_areas: int, threshold: float):
        self.expertise = np.zeros(num_areas, dtype=bool)
        for e in expertise:
            require(0 <= e < num_areas, f"area {e} outside 0..{num_areas - 1}")
            self.expertise[e] = True
        self.threshold = float(threshold)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        binary = matrix > 0.5
        return (binary & self.expertise).sum(axis=1).astype(float)

    def __repr__(self) -> str:
        chosen = tuple(int(i) for i in np.flatnonzero(self.expertise))
        return f"ExpertiseOverlapQuery(areas={chosen}, threshold={self.threshold:g})"


class And(QueryFunction):
    """Conjunction of query functions: relevant iff all parts agree.

    Composites expose ``mask`` (not ``scores``) because boolean
    combinations of thresholds have no single scalar score; ``score`` is
    therefore undefined for them and ranking baselines should be given one
    of the parts instead.
    """

    def __init__(self, *parts: QueryFunction):
        require(len(parts) >= 1, "And needs at least one part")
        self.parts = parts
        self.threshold = 0.0

    def mask(self, matrix: np.ndarray) -> np.ndarray:
        result = self.parts[0].mask(matrix)
        for part in self.parts[1:]:
            result = result & part.mask(matrix)
        return result

    def __call__(self, row) -> bool:
        return all(part(row) for part in self.parts)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        raise NotImplementedError("composite queries have no scalar score")

    def __repr__(self) -> str:
        return "And(" + ", ".join(repr(p) for p in self.parts) + ")"


class Or(QueryFunction):
    """Disjunction of query functions: relevant iff any part agrees."""

    def __init__(self, *parts: QueryFunction):
        require(len(parts) >= 1, "Or needs at least one part")
        self.parts = parts
        self.threshold = 0.0

    def mask(self, matrix: np.ndarray) -> np.ndarray:
        result = self.parts[0].mask(matrix)
        for part in self.parts[1:]:
            result = result | part.mask(matrix)
        return result

    def __call__(self, row) -> bool:
        return any(part(row) for part in self.parts)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        raise NotImplementedError("composite queries have no scalar score")

    def __repr__(self) -> str:
        return "Or(" + ", ".join(repr(p) for p in self.parts) + ")"


class Not(QueryFunction):
    """Negation of a query function."""

    def __init__(self, part: QueryFunction):
        self.part = part
        self.threshold = 0.0

    def mask(self, matrix: np.ndarray) -> np.ndarray:
        return ~np.asarray(self.part.mask(matrix), dtype=bool)

    def __call__(self, row) -> bool:
        return not self.part(row)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        raise NotImplementedError("composite queries have no scalar score")

    def __repr__(self) -> str:
        return f"Not({self.part!r})"


class CallableQuery(QueryFunction):
    """Adapter turning an arbitrary scoring callable into a query function."""

    def __init__(self, score_fn: Callable[[np.ndarray], float], threshold: float):
        self._score_fn = score_fn
        self.threshold = float(threshold)

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (float(self._score_fn(row)) for row in matrix),
            dtype=float,
            count=matrix.shape[0],
        )


def quartile_relevance(
    database: GraphDatabase,
    dims: Sequence[int] | None = None,
    quantile: float = 0.75,
) -> AverageScoreThreshold:
    """The paper's experimental relevance rule (Sec. 8.2.1).

    A graph is relevant when its feature-space score (mean over ``dims``,
    defaulting to all dimensions) falls in the top ``1 - quantile`` fraction
    of the database — the "first quartile" rule with the default
    ``quantile=0.75``.
    """
    require(0.0 < quantile < 1.0, f"quantile must be in (0, 1), got {quantile}")
    if dims is None:
        dims = range(database.num_features)
    dims = tuple(int(d) for d in dims)
    scores = database.features[:, list(dims)].mean(axis=1)
    threshold = float(np.quantile(scores, quantile))
    return AverageScoreThreshold(dims, threshold)

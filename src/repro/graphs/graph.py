"""The labelled-graph data model.

The paper's database objects are undirected graphs whose vertices carry labels
(atom symbols in DUD, community ids in DBLP, product categories in Amazon) and
whose edges optionally carry labels (bond types).  :class:`LabeledGraph` is an
immutable value object: build it once, then share it freely between indexes,
caches and answer sets without defensive copies.

Vertices are always the integers ``0 .. n-1``.  This keeps adjacency compact
and lets the edit-distance code address vertices by array index.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

#: Label used for edges when the caller does not supply one.
DEFAULT_EDGE_LABEL = "-"


class LabeledGraph:
    """An immutable undirected graph with node labels and edge labels.

    Parameters
    ----------
    node_labels:
        One label per vertex; vertex ``i`` gets ``node_labels[i]``.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, label)`` tuples with
        ``0 <= u, v < len(node_labels)`` and ``u != v``.  Duplicate edges
        (in either orientation) are rejected.
    graph_id:
        Optional stable identifier (e.g. position in the database); carried
        along for provenance but ignored by equality.
    """

    # __weakref__ lets distance caches hold per-graph data without pinning
    # the graph (StarDistance keys star profiles by id(); a weak reference
    # is what makes stale entries evictable when ids are recycled).
    __slots__ = ("_node_labels", "_adj", "_num_edges", "graph_id", "__weakref__")

    def __init__(
        self,
        node_labels: Iterable[str],
        edges: Iterable[tuple] = (),
        graph_id: int | None = None,
    ):
        self._node_labels: tuple[str, ...] = tuple(str(l) for l in node_labels)
        n = len(self._node_labels)
        adj: list[dict[int, str]] = [{} for _ in range(n)]
        num_edges = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                label = DEFAULT_EDGE_LABEL
            elif len(edge) == 3:
                u, v, label = edge
                label = str(label)
            else:
                raise ValueError(f"edge must be (u, v) or (u, v, label), got {edge!r}")
            u, v = int(u), int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge {edge!r} references a vertex outside 0..{n - 1}")
            if u == v:
                raise ValueError(f"self-loop on vertex {u} is not allowed")
            if v in adj[u]:
                raise ValueError(f"duplicate edge ({u}, {v})")
            adj[u][v] = label
            adj[v][u] = label
            num_edges += 1
        self._adj: tuple[dict[int, str], ...] = tuple(adj)
        self._num_edges = num_edges
        self.graph_id = graph_id

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._node_labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def node_labels(self) -> tuple[str, ...]:
        return self._node_labels

    def node_label(self, v: int) -> str:
        return self._node_labels[v]

    def nodes(self) -> range:
        return range(len(self._node_labels))

    def edges(self) -> Iterator[tuple[int, int, str]]:
        """Yield each undirected edge once as ``(u, v, label)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v, label in nbrs.items():
                if u < v:
                    yield (u, v, label)

    def neighbors(self, v: int) -> Iterable[int]:
        return self._adj[v].keys()

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def edge_label(self, u: int, v: int) -> str:
        """Label of edge ``(u, v)``; raises ``KeyError`` if absent."""
        return self._adj[u][v]

    # ------------------------------------------------------------------
    # Derived summaries (used by edit-distance bounds and closures)
    # ------------------------------------------------------------------
    def label_histogram(self) -> dict[str, int]:
        """Multiset of node labels as a label → count mapping."""
        hist: dict[str, int] = {}
        for label in self._node_labels:
            hist[label] = hist.get(label, 0) + 1
        return hist

    def edge_label_histogram(self) -> dict[str, int]:
        """Multiset of edge labels as a label → count mapping."""
        hist: dict[str, int] = {}
        for _, _, label in self.edges():
            hist[label] = hist.get(label, 0) + 1
        return hist

    def star(self, v: int) -> tuple[str, tuple[tuple[str, str], ...]]:
        """The *star* of vertex ``v``: its label plus the sorted multiset of
        ``(edge label, neighbor label)`` branch tokens.

        Stars are the unit of comparison in the star edit distance of Zeng
        et al. (PVLDB'09), which the paper cites as its edit-distance
        reference [28].
        """
        branches = sorted(
            (label, self._node_labels[u]) for u, label in self._adj[v].items()
        )
        return (self._node_labels[v], tuple(branches))

    def stars(self) -> list[tuple[str, tuple[tuple[str, str], ...]]]:
        """Stars of all vertices, in vertex order."""
        return [self.star(v) for v in self.nodes()]

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` with ``label`` attributes."""
        g = nx.Graph()
        for v, label in enumerate(self._node_labels):
            g.add_node(v, label=label)
        for u, v, label in self.edges():
            g.add_edge(u, v, label=label)
        return g

    @classmethod
    def from_networkx(cls, g: nx.Graph, graph_id: int | None = None) -> "LabeledGraph":
        """Build from a networkx graph.

        Node identities may be arbitrary hashables; they are renumbered to
        ``0..n-1`` in sorted-by-insertion order.  Node/edge ``label``
        attributes default to ``str(node)`` / :data:`DEFAULT_EDGE_LABEL`.
        """
        index = {node: i for i, node in enumerate(g.nodes())}
        labels = [str(g.nodes[node].get("label", node)) for node in g.nodes()]
        edges = [
            (index[u], index[v], str(data.get("label", DEFAULT_EDGE_LABEL)))
            for u, v, data in g.edges(data=True)
        ]
        return cls(labels, edges, graph_id=graph_id)

    def permuted(self, permutation: "Iterable[int]") -> "LabeledGraph":
        """The same graph under a vertex renumbering.

        ``permutation[i]`` is the new id of old vertex ``i``; must be a
        bijection on ``0..n-1``.  The result is isomorphic to ``self`` —
        used to test isomorphism-invariant machinery (WL hashes, GED).
        """
        mapping = [int(p) for p in permutation]
        if sorted(mapping) != list(range(self.num_nodes)):
            raise ValueError("permutation must be a bijection on the vertices")
        labels = [""] * self.num_nodes
        for old, new in enumerate(mapping):
            labels[new] = self._node_labels[old]
        edges = [
            (mapping[u], mapping[v], label) for u, v, label in self.edges()
        ]
        return LabeledGraph(labels, edges)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def canonical_form(self) -> tuple:
        """A representation invariant under the stored vertex order.

        Two graphs with the same labels and edge set (same numbering) compare
        equal.  This is *not* isomorphism-invariant; it exists so tests and
        caches can compare concrete graph objects cheaply.
        """
        edge_set = tuple(sorted(self.edges()))
        return (self._node_labels, edge_set)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self.canonical_form() == other.canonical_form()

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    def __repr__(self) -> str:
        gid = f" id={self.graph_id}" if self.graph_id is not None else ""
        return f"<LabeledGraph{gid} |V|={self.num_nodes} |E|={self.num_edges}>"


def path_graph(labels: Iterable[str], edge_label: str = DEFAULT_EDGE_LABEL) -> LabeledGraph:
    """A path on the given labels — handy in tests and docs."""
    labels = list(labels)
    edges = [(i, i + 1, edge_label) for i in range(len(labels) - 1)]
    return LabeledGraph(labels, edges)


def cycle_graph(labels: Iterable[str], edge_label: str = DEFAULT_EDGE_LABEL) -> LabeledGraph:
    """A cycle on the given labels (requires at least 3 vertices)."""
    labels = list(labels)
    if len(labels) < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % len(labels), edge_label) for i in range(len(labels))]
    return LabeledGraph(labels, edges)


def star_graph(
    center_label: str,
    leaf_labels: Iterable[str],
    edge_label: str = DEFAULT_EDGE_LABEL,
) -> LabeledGraph:
    """A star with the given center and leaves."""
    leaves = list(leaf_labels)
    labels = [center_label] + leaves
    edges = [(0, i + 1, edge_label) for i in range(len(leaves))]
    return LabeledGraph(labels, edges)

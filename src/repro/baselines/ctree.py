"""C-tree style structural index (He & Singh, Closure-tree, ICDE'06 [12]).

The closure-tree groups structurally similar graphs under hierarchical
*closures* — structural summaries that admit edit-distance lower bounds for
pruning.  The original stores wildcard-labelled closure graphs; this
implementation keeps the same architecture with an envelope closure that is
cheap and correct for our metrics:

* per-label node-count *maxima* across the subtree,
* node-count and edge-count ranges.

For a query graph ``g`` and a subtree whose members all satisfy the
envelope, every member ``h`` obeys::

    d(g, h) ≥ max(|V_g|, n_lo) − Σ_label min(count_g, count_hi)    (labels)
            + max(0, |E_g| − e_hi, e_lo − |E_g|)                   (edges)

— the label/size lower bound evaluated against the loosest member the
envelope allows.  The bound is valid for the exact unit-cost GED *and* for
the star edit distance (both dominate the label/size bound; see
``repro.ged.bounds``), so the index serves either metric.

Graphs are clustered by structural similarity using the same
farthest-first partitioning as the other trees, but pruning is purely
structural — no metric balls — which is the characteristic C-tree
behaviour the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.graphs.graph import LabeledGraph
from repro.utils.rng import resolve_seed
from repro.utils.validation import require

_EPS = 1e-9


@dataclass
class Closure:
    """Structural envelope of a set of graphs."""

    label_max: dict[str, int]
    nodes_lo: int
    nodes_hi: int
    edges_lo: int
    edges_hi: int

    @classmethod
    def of_graph(cls, g: LabeledGraph) -> "Closure":
        return cls(
            label_max=g.label_histogram(),
            nodes_lo=g.num_nodes,
            nodes_hi=g.num_nodes,
            edges_lo=g.num_edges,
            edges_hi=g.num_edges,
        )

    @classmethod
    def union(cls, closures) -> "Closure":
        closures = list(closures)
        require(len(closures) > 0, "union of zero closures")
        label_max: dict[str, int] = {}
        for closure in closures:
            for label, count in closure.label_max.items():
                if count > label_max.get(label, 0):
                    label_max[label] = count
        return cls(
            label_max=label_max,
            nodes_lo=min(c.nodes_lo for c in closures),
            nodes_hi=max(c.nodes_hi for c in closures),
            edges_lo=min(c.edges_lo for c in closures),
            edges_hi=max(c.edges_hi for c in closures),
        )

    def distance_lower_bound(self, g: LabeledGraph) -> float:
        """Lower bound on ``d(g, h)`` for every graph ``h`` in the envelope."""
        g_hist = g.label_histogram()
        common_max = sum(
            min(count, self.label_max.get(label, 0))
            for label, count in g_hist.items()
        )
        label_bound = max(g.num_nodes, self.nodes_lo) - common_max
        edge_bound = max(0, g.num_edges - self.edges_hi, self.edges_lo - g.num_edges)
        return float(max(0, label_bound) + edge_bound)


@dataclass
class CTreeNode:
    closure: Closure
    children: list["CTreeNode"] = field(default_factory=list)
    bucket: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class CTree:
    """Closure-tree over a graph collection, supporting range queries.

    Pass an ``engine`` (:class:`~repro.engine.DistanceEngine`) to run the
    bulk-load's per-pivot member scans as batches; the tree and the
    ``distance_calls`` accounting are identical.
    """

    def __init__(
        self,
        graphs,
        distance: GraphDistanceFn,
        *,
        capacity: int = 16,
        seed=None,
        engine=None,
        workers: int | None = None,
        rng=None,
    ):
        require(capacity >= 2, f"capacity must be >= 2, got {capacity}")
        require(len(graphs) > 0, "cannot index an empty collection")
        if engine is None and workers is not None:
            from repro.engine import DistanceEngine

            engine = DistanceEngine(distance, workers=workers, graphs=graphs)
        self._graphs = graphs
        self._distance = distance
        self._engine = engine
        self.capacity = capacity
        self.distance_calls = 0
        rng = resolve_seed(seed, rng, "CTree")
        self.root = self._build(list(range(len(graphs))), rng)

    def stats(self) -> dict:
        """Statable protocol: build-work accounting."""
        return {"distance_calls": self.distance_calls, "capacity": self.capacity}

    def _d(self, g: LabeledGraph, j: int) -> float:
        self.distance_calls += 1
        if self._engine is not None:
            return float(self._engine(g, self._graphs[j]))
        return float(self._distance(g, self._graphs[j]))

    def _scan(self, source: int, members: list[int]) -> np.ndarray:
        """``d(source, m)`` per member, 0.0 at ``source`` itself."""
        source_graph = self._graphs[source]
        if self._engine is None:
            return np.array(
                [0.0 if m == source else self._d(source_graph, m)
                 for m in members]
            )
        others = [m for m in members if m != source]
        self.distance_calls += len(others)
        values = iter(
            self._engine.one_to_many(
                source_graph, [self._graphs[m] for m in others]
            )
        )
        return np.array(
            [0.0 if m == source else float(next(values)) for m in members]
        )

    def _build(self, members: list[int], rng) -> CTreeNode:
        if len(members) <= self.capacity:
            closure = Closure.union(
                Closure.of_graph(self._graphs[m]) for m in members
            )
            return CTreeNode(closure=closure, bucket=list(members))
        first = members[int(rng.integers(len(members)))]
        pivots = [first]
        min_dist = self._scan(first, members)
        while len(pivots) < self.capacity and min_dist.max() > 0.0:
            farthest = members[int(np.argmax(min_dist))]
            if farthest in pivots:
                break
            pivots.append(farthest)
            np.minimum(min_dist, self._scan(farthest, members), out=min_dist)
        # min() over pivots == argmin over the pivot-order distance rows
        # (both resolve ties to the first minimal pivot).
        pivot_rows = np.stack([self._scan(p, members) for p in pivots])
        assignment: dict[int, list[int]] = {p: [] for p in pivots}
        for column, m in enumerate(members):
            assignment[pivots[int(np.argmin(pivot_rows[:, column]))]].append(m)
        children = []
        for pivot in pivots:
            group = assignment[pivot]
            if not group:
                continue
            if len(group) == len(members):
                closure = Closure.union(
                    Closure.of_graph(self._graphs[m]) for m in group
                )
                children.append(CTreeNode(closure=closure, bucket=group))
            else:
                children.append(self._build(group, rng))
        return CTreeNode(
            closure=Closure.union(child.closure for child in children),
            children=children,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query_index: int, theta: float) -> list[int]:
        """All indexed graphs within θ of the graph at ``query_index``."""
        return self.range_query_graph(self._graphs[query_index], theta)

    def range_query_graph(self, query_graph: LabeledGraph, theta: float) -> list[int]:
        """All indexed graphs within θ of an arbitrary graph."""
        results: list[int] = []

        def visit(node: CTreeNode):
            if node.closure.distance_lower_bound(query_graph) > theta + _EPS:
                return
            if node.is_leaf:
                for member in node.bucket:
                    if self._d(query_graph, member) <= theta + _EPS:
                        results.append(member)
                return
            for child in node.children:
                visit(child)

        visit(self.root)
        return results

    def __repr__(self) -> str:
        return f"<CTree n={len(self._graphs)} capacity={self.capacity}>"

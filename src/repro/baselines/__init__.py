"""Competing algorithms and indexes the paper evaluates against."""

from repro.baselines.disc import disc_greedy, is_valid_disc_answer
from repro.baselines.div import div_topk
from repro.baselines.ctree import Closure, CTree
from repro.baselines.mtree import MTree
from repro.baselines.distmatrix import DistanceMatrixOracle
from repro.baselines.topk import answer_set_redundancy, traditional_top_k

__all__ = [
    "disc_greedy",
    "is_valid_disc_answer",
    "div_topk",
    "CTree",
    "Closure",
    "MTree",
    "DistanceMatrixOracle",
    "traditional_top_k",
    "answer_set_redundancy",
]

"""DisC diversity baseline (Drosou & Pitoura, PVLDB'12 [9]).

DisC computes a *covering, θ-independent* answer set: every relevant
object lies within θ of some answer, and answers are pairwise more than θ
apart.  Unlike REP, there is no budget — the answer grows with the data
(the paper's Fig. 2(a) shows near-linear growth and a compression ratio of
only ≈ 3 on DUD).

This is the Greedy-DisC algorithm: repeatedly select the still-uncovered
("white") object covering the most uncovered objects.  Selecting only
uncovered objects guarantees θ-independence (anything within θ of a chosen
object is immediately covered) and the loop runs until full coverage, so
both DisC invariants hold by construction — the test suite asserts them.

The "(Pruned)" aspect of the paper's comparison — avoiding the full O(n²)
neighborhood computation — is supported through the ``range_query``
backend (M-tree, the index DisC adapts).  ``stop_at_k`` truncates the run
for the wall-clock comparisons where the paper "stop[s] the computation as
soon as it attains a size of k" (Sec. 8.2).
"""

from __future__ import annotations

import time

from repro.core.representative import RangeQueryFn, all_theta_neighborhoods
from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require_positive


def disc_greedy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    range_query: RangeQueryFn | None = None,
    stop_at_k: int | None = None,
) -> QueryResult:
    """Run Greedy-DisC; the answer covers all relevant objects unless
    truncated by ``stop_at_k``."""
    require_positive(theta, "theta")
    stats = QueryStats()
    counting = CountingDistance(distance)

    started = time.perf_counter()
    relevant = [int(i) for i in database.relevant_indices(query_fn)]
    neighborhoods = all_theta_neighborhoods(
        database, counting, relevant, theta, range_query=range_query
    )
    stats.init_seconds = time.perf_counter() - started

    started = time.perf_counter()
    answer: list[int] = []
    gains: list[int] = []
    covered: set[int] = set()
    white = set(relevant)
    while white:
        if stop_at_k is not None and len(answer) >= stop_at_k:
            break
        best = None
        best_gain = -1
        for gid in sorted(white):
            gain = len(neighborhoods[gid] & white)
            if gain > best_gain:
                best_gain = gain
                best = gid
        answer.append(best)
        gains.append(len(neighborhoods[best] - covered))
        covered |= neighborhoods[best]
        white -= neighborhoods[best]
    stats.search_seconds = time.perf_counter() - started
    stats.distance_calls = counting.calls

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )


def is_valid_disc_answer(
    answer,
    neighborhoods,
    relevant,
) -> bool:
    """Check the two DisC invariants: full coverage and θ-independence.

    ``neighborhoods`` must be the θ-neighborhood map the answer was
    computed from.  An object ``a`` is within θ of ``b`` iff
    ``a ∈ neighborhoods[b]`` (symmetric for a metric).
    """
    answer = [int(a) for a in answer]
    covered: set[int] = set()
    for gid in answer:
        covered |= neighborhoods[gid]
    if covered != set(int(r) for r in relevant):
        return False
    for position, a in enumerate(answer):
        for b in answer[position + 1:]:
            if b in neighborhoods[a]:
                return False
    return True

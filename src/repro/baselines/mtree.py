"""M-tree style metric index (Zezula et al. [29]) — DisC's index structure.

A ball tree over the metric space: every node holds a routing object and a
covering radius bounding the distance from the routing object to anything
in its subtree.  Range queries ``{g : d(q, g) ≤ θ}`` descend the tree and
prune a subtree whenever ``d(q, routing) − radius > θ`` (triangle
inequality), evaluating real distances only at surviving leaves.

This implementation bulk-loads the tree top-down with farthest-first
routing-object selection rather than performing the original incremental
split-on-overflow inserts; the query-time pruning logic — the part the
paper's comparisons exercise — is the standard M-tree rule, including the
parent-distance filter that skips child distance evaluations when
``|d(q, parent) − d(parent, child_routing)| − child_radius > θ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.utils.rng import resolve_seed
from repro.utils.validation import require

_EPS = 1e-9


@dataclass
class MTreeNode:
    """Ball-tree node: routing object, covering radius, children/bucket."""

    routing: int
    radius: float
    #: distance from this node's routing object to its parent's (root: 0)
    parent_distance: float
    children: list["MTreeNode"] = field(default_factory=list)
    bucket: list[int] = field(default_factory=list)
    #: distances from the routing object to each bucket entry
    bucket_distances: list[float] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class MTree:
    """Bulk-loaded metric tree with M-tree range-query pruning.

    Parameters
    ----------
    graphs:
        Objects to index, addressed by position.
    distance:
        The metric.
    capacity:
        Leaf bucket size and internal fan-out.
    engine:
        Optional :class:`~repro.engine.DistanceEngine`; the bulk-load's
        per-pivot member scans then run as batches.  The tree and
        ``distance_calls`` accounting are identical.
    """

    def __init__(
        self,
        graphs,
        distance: GraphDistanceFn,
        *,
        capacity: int = 16,
        seed=None,
        engine=None,
        workers: int | None = None,
        rng=None,
    ):
        require(capacity >= 2, f"capacity must be >= 2, got {capacity}")
        require(len(graphs) > 0, "cannot index an empty collection")
        if engine is None and workers is not None:
            from repro.engine import DistanceEngine

            engine = DistanceEngine(distance, workers=workers, graphs=graphs)
        self._graphs = graphs
        self._distance = distance
        self._engine = engine
        self.capacity = capacity
        self.distance_calls = 0
        rng = resolve_seed(seed, rng, "MTree")
        self.root = self._build(list(range(len(graphs))), rng, parent=None)

    def stats(self) -> dict:
        """Statable protocol: build-work accounting."""
        return {"distance_calls": self.distance_calls, "capacity": self.capacity}

    def _d(self, i: int, j: int) -> float:
        self.distance_calls += 1
        if self._engine is not None:
            return float(self._engine(self._graphs[i], self._graphs[j]))
        return float(self._distance(self._graphs[i], self._graphs[j]))

    def _scan(self, source: int, members: list[int]) -> np.ndarray:
        """``d(source, m)`` per member, 0.0 at ``source`` itself.

        Through the engine this is one batch; ``distance_calls`` advances
        by the same per-pair count as the serial scan.
        """
        if self._engine is None:
            return np.array(
                [0.0 if m == source else self._d(source, m) for m in members]
            )
        others = [m for m in members if m != source]
        self.distance_calls += len(others)
        values = iter(
            self._engine.one_to_many(
                self._graphs[source], [self._graphs[m] for m in others]
            )
        )
        return np.array(
            [0.0 if m == source else float(next(values)) for m in members]
        )

    def _build(self, members: list[int], rng, parent: int | None) -> MTreeNode:
        routing = members[int(rng.integers(len(members)))]
        parent_distance = self._d(routing, parent) if parent is not None else 0.0
        if len(members) <= self.capacity:
            bucket_distances = [float(d) for d in self._scan(routing, members)]
            return MTreeNode(
                routing=routing,
                radius=max(bucket_distances),
                parent_distance=parent_distance,
                bucket=list(members),
                bucket_distances=bucket_distances,
            )
        # Farthest-first routing objects for the children.
        pivots = [routing]
        min_dist = self._scan(routing, members)
        while len(pivots) < self.capacity and min_dist.max() > 0.0:
            farthest = members[int(np.argmax(min_dist))]
            if farthest in pivots:
                break
            pivots.append(farthest)
            np.minimum(min_dist, self._scan(farthest, members), out=min_dist)

        # min() over pivots == argmin over the pivot-order distance rows
        # (both resolve ties to the first minimal pivot).
        pivot_rows = np.stack([self._scan(p, members) for p in pivots])
        assignment: dict[int, list[int]] = {p: [] for p in pivots}
        for column, m in enumerate(members):
            assignment[pivots[int(np.argmin(pivot_rows[:, column]))]].append(m)

        children = []
        for pivot in pivots:
            group = assignment[pivot]
            if not group:
                continue
            if len(group) == len(members):
                # Degenerate split (identical objects): stop recursing.
                bucket_distances = [float(d) for d in self._scan(pivot, group)]
                children.append(
                    MTreeNode(
                        routing=pivot,
                        radius=max(bucket_distances),
                        parent_distance=self._d(pivot, routing),
                        bucket=group,
                        bucket_distances=bucket_distances,
                    )
                )
            else:
                children.append(self._build(group, rng, parent=routing))

        radius = 0.0
        for child in children:
            radius = max(radius, child.parent_distance + child.radius)
        return MTreeNode(
            routing=routing,
            radius=radius,
            parent_distance=parent_distance,
            children=children,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query_index: int, theta: float) -> list[int]:
        """All indexed objects within θ of the object at ``query_index``."""
        return self.range_query_graph(self._graphs[query_index], theta)

    def range_query_graph(self, query_graph, theta: float) -> list[int]:
        """All indexed objects within θ of an arbitrary graph."""

        def d_to(i: int) -> float:
            self.distance_calls += 1
            return float(self._distance(query_graph, self._graphs[i]))

        results: list[int] = []

        def visit(node: MTreeNode, parent_query_distance: float | None):
            # Parent-distance filter before paying for d(q, routing).
            if parent_query_distance is not None:
                if (
                    abs(parent_query_distance - node.parent_distance)
                    - node.radius
                    > theta + _EPS
                ):
                    return
            query_distance = d_to(node.routing)
            if query_distance - node.radius > theta + _EPS:
                return
            if node.is_leaf:
                for member, member_distance in zip(
                    node.bucket, node.bucket_distances
                ):
                    if member == node.routing:
                        if query_distance <= theta + _EPS:
                            results.append(member)
                        continue
                    # Triangle filters around the routing object.
                    if abs(query_distance - member_distance) > theta + _EPS:
                        continue
                    if query_distance + member_distance <= theta + _EPS:
                        results.append(member)
                        continue
                    if d_to(member) <= theta + _EPS:
                        results.append(member)
                return
            for child in node.children:
                visit(child, query_distance)

        visit(self.root, None)
        return results

    def __repr__(self) -> str:
        return f"<MTree n={len(self._graphs)} capacity={self.capacity}>"

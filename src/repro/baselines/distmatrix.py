"""Precomputed distance-matrix oracle — the best-case runtime comparator.

The inset of the paper's Fig. 5(i) benchmarks the NB-Index against an
engine with the *entire pairwise distance matrix precomputed*: query-time
work is pure array scanning, at the price of O(n²) construction time and
O(n²) memory — infeasible at scale, but the fastest any index-free engine
can possibly be.  :class:`DistanceMatrixOracle` provides that engine:
range queries are row scans and the greedy loop never touches a real edit
distance.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import GraphDistanceFn, pairwise_matrix
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require_positive

_EPS = 1e-9


class DistanceMatrixOracle:
    """Fully materialized pairwise distances over a database.

    Pass an ``engine`` (:class:`~repro.engine.DistanceEngine`) to compute
    the O(n²) matrix in batches; the entries are identical.
    """

    def __init__(
        self,
        database: GraphDatabase,
        distance: GraphDistanceFn,
        engine=None,
    ):
        self.database = database
        started = time.perf_counter()
        self.matrix = pairwise_matrix(database.graphs, distance, engine=engine)
        self.build_seconds = time.perf_counter() - started

    def distance(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def range_query(self, gid: int, theta: float) -> np.ndarray:
        """Row scan: every database id within θ of ``gid``."""
        return np.flatnonzero(self.matrix[gid] <= theta + _EPS)

    def memory_bytes(self) -> int:
        return int(self.matrix.nbytes)

    def greedy(self, query_fn, theta: float, k: int) -> QueryResult:
        """Algorithm 1 running entirely on the matrix."""
        require_positive(theta, "theta")
        require_positive(k, "k")
        stats = QueryStats()
        started = time.perf_counter()
        relevant = np.asarray(self.database.relevant_indices(query_fn))
        relevant_set = set(int(i) for i in relevant)
        sub = self.matrix[np.ix_(relevant, relevant)]
        within = sub <= theta + _EPS
        neighborhoods = {
            int(gid): frozenset(
                int(relevant[j]) for j in np.flatnonzero(within[pos])
            )
            for pos, gid in enumerate(relevant)
        }
        stats.init_seconds = time.perf_counter() - started

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        covered: set[int] = set()
        remaining = set(relevant_set)
        for _ in range(min(k, len(relevant_set))):
            best = None
            best_gain = -1
            for gid in sorted(remaining):
                gain = len(neighborhoods[gid] - covered)
                if gain > best_gain:
                    best_gain = gain
                    best = gid
            if best is None:
                break
            answer.append(best)
            gains.append(best_gain)
            covered |= neighborhoods[best]
            remaining.discard(best)
        stats.search_seconds = time.perf_counter() - started

        return QueryResult(
            answer=answer,
            gains=gains,
            covered=frozenset(covered),
            num_relevant=len(relevant_set),
            theta=theta,
            stats=stats,
        )

    def __repr__(self) -> str:
        return f"<DistanceMatrixOracle n={len(self.database)}>"

"""Traditional top-k: rank by relevance score, ignore structure.

The qualitative comparison of the paper's Sec. 8.4 / Fig. 7 contrasts the
classic top-k answer (five near-identical molecules sharing a scaffold)
with the representative answer (five distinct structural families).  This
module supplies the classic side, plus a redundancy diagnostic that
quantifies "how structurally similar is this answer set to itself".
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require_positive


def traditional_top_k(database: GraphDatabase, query_fn, k: int) -> list[int]:
    """The k highest-scoring graphs (ties broken by smaller id).

    ``query_fn`` must expose ``scores`` (every query function in
    :mod:`repro.graphs.relevance` does).
    """
    require_positive(k, "k")
    scores = np.asarray(query_fn.scores(database.features), dtype=float)
    # argsort on (-score, id): stable sort over ids after negating scores.
    order = np.argsort(-scores, kind="stable")
    return [int(i) for i in order[:k]]


def answer_set_redundancy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    answer,
) -> dict:
    """Pairwise-distance diagnostics of an answer set.

    Returns mean/min/max pairwise distance — the paper's Fig. 7 point is
    that traditional top-k answers have tiny pairwise distances (one
    scaffold) while representative answers are spread out.
    """
    answer = [int(a) for a in answer]
    if len(answer) < 2:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "pairs": 0}
    values = [
        float(distance(database[a], database[b]))
        for a, b in itertools.combinations(answer, 2)
    ]
    return {
        "mean": float(np.mean(values)),
        "min": float(np.min(values)),
        "max": float(np.max(values)),
        "pairs": len(values),
    }

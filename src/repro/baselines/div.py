"""DIV baseline: diversified top-k (Qin, Yu & Chang, PVLDB'12 [19]).

DIV maximizes the *sum of static scores* of a size-k answer set subject to
pairwise separation ``d(g_i, g_j) > sep``.  To point it at our problem the
score of a graph is its standalone representative power
``score(g) = |N_θ(g)|`` (Sec. 3.2 of the REP paper) — but the scores stay
mutually independent, which is exactly the modelling gap the paper
demonstrates: π(S) ≠ Σ score(g).

Two separation settings are evaluated in Table 4:

* ``DIV(θ)`` — the original constraint ``d > θ``;
* ``DIV(2θ)`` — the stricter ``d > 2θ`` that would make scores genuinely
  independent (disjoint neighborhoods, Theorem 3), at the cost of ruling
  out many representative graphs.

Following the div-cut architecture, the *diversity graph* (edges between
objects within the separation) is built first — via an index range-query
backend when provided, mirroring how the paper feeds DIV with C-tree —
then a greedy max-score independent set is extracted per connected
component (components are independent subproblems; tiny ones are solved
exactly by enumeration, the spirit of div-cut's cut-point decomposition).
"""

from __future__ import annotations

import itertools
import time

import networkx as nx

from repro.core.representative import RangeQueryFn, all_theta_neighborhoods
from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require, require_positive

#: Components up to this size are solved exactly by enumeration.
_EXACT_COMPONENT_LIMIT = 12


def div_topk(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    separation_factor: float = 1.0,
    range_query: RangeQueryFn | None = None,
) -> QueryResult:
    """Run DIV with separation ``sep = separation_factor · θ``.

    ``separation_factor=1`` is DIV(θ); ``2`` is DIV(2θ).  The reported
    ``covered``/π always use θ-neighborhoods so quality is comparable with
    REP (Table 4's metric).
    """
    require_positive(theta, "theta")
    require_positive(k, "k")
    require(separation_factor >= 1.0, "separation_factor must be >= 1")
    stats = QueryStats()
    counting = CountingDistance(distance)
    separation = separation_factor * theta

    started = time.perf_counter()
    relevant = [int(i) for i in database.relevant_indices(query_fn)]
    # θ-neighborhoods give the static scores and the final quality metric.
    neighborhoods = all_theta_neighborhoods(
        database, counting, relevant, theta, range_query=range_query
    )
    scores = {gid: len(neighborhoods[gid]) for gid in relevant}
    # Diversity graph at the separation radius.
    if separation_factor == 1.0:
        conflict_sets = {
            gid: set(neighborhoods[gid]) - {gid} for gid in relevant
        }
    else:
        conflicts = all_theta_neighborhoods(
            database, counting, relevant, separation, range_query=range_query
        )
        conflict_sets = {gid: set(conflicts[gid]) - {gid} for gid in relevant}
    stats.init_seconds = time.perf_counter() - started

    started = time.perf_counter()
    answer = _max_score_independent_set(relevant, scores, conflict_sets, k)
    stats.search_seconds = time.perf_counter() - started
    stats.distance_calls = counting.calls

    covered: set[int] = set()
    gains: list[int] = []
    for gid in answer:
        newly = neighborhoods[gid] - covered
        gains.append(len(newly))
        covered |= newly
    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )


def _max_score_independent_set(
    relevant,
    scores: dict[int, int],
    conflict_sets: dict[int, set[int]],
    k: int,
) -> list[int]:
    """Budget-k max-score independent set, component by component.

    Components of the diversity graph are independent subproblems (div-cut's
    decomposition); small ones are enumerated exactly, large ones solved by
    the classic greedy (highest score first, skip conflicts).  Candidate
    picks from all components are then merged best-score-first under the
    global budget.
    """
    diversity = nx.Graph()
    diversity.add_nodes_from(relevant)
    for gid, conflicts in conflict_sets.items():
        for other in conflicts:
            diversity.add_edge(gid, other)

    chosen: list[int] = []
    for component in nx.connected_components(diversity):
        component = sorted(component)
        if len(component) <= _EXACT_COMPONENT_LIMIT:
            chosen.extend(
                _exact_component(component, scores, conflict_sets, k)
            )
        else:
            chosen.extend(
                _greedy_component(component, scores, conflict_sets)
            )
    # Global budget: keep the k best-scoring picks (ties: smallest id).
    chosen.sort(key=lambda gid: (-scores[gid], gid))
    return chosen[:k]


def _greedy_component(component, scores, conflict_sets) -> list[int]:
    picked: list[int] = []
    blocked: set[int] = set()
    for gid in sorted(component, key=lambda g: (-scores[g], g)):
        if gid in blocked:
            continue
        picked.append(gid)
        blocked.add(gid)
        blocked |= conflict_sets[gid]
    return picked


def _exact_component(component, scores, conflict_sets, k) -> list[int]:
    """Best independent set of size ≤ k within a small component."""
    best: list[int] = []
    best_score = -1
    limit = min(k, len(component))
    for size in range(1, limit + 1):
        for subset in itertools.combinations(component, size):
            if any(
                b in conflict_sets[a]
                for a, b in itertools.combinations(subset, 2)
            ):
                continue
            total = sum(scores[g] for g in subset)
            if total > best_score:
                best_score = total
                best = list(subset)
    return best

"""Distance-function ablation: how good a GED surrogate is the star
distance?

DESIGN.md §3.2 substitutes the polynomial star edit distance for exact GED
at benchmark scale.  This driver quantifies the substitution on molecule
graphs small enough for exact A*: rank correlation with exact GED, bound
tightness, metric validity, and cost per call — the evidence behind "the
substitution preserves the relevant behaviour" (neighborhood structure
depends on distance *ranking*, which is what the correlation captures).
"""

from __future__ import annotations

import time

import numpy as np
from scipy.stats import spearmanr

from repro.bench.harness import ExperimentResult
from repro.datasets import dud_like
from repro.ged import (
    BeamGED,
    BipartiteGED,
    ExactGED,
    StarDistance,
    check_metric_axioms,
)
from repro.graphs import GraphDatabase
from repro.utils.rng import ensure_rng


def _small_molecule_database(num_graphs: int, seed) -> GraphDatabase:
    """Molecule-like graphs truncated to exact-GED-friendly sizes."""
    from repro.graphs.graph import LabeledGraph

    source = dud_like(num_graphs=num_graphs * 3, seed=seed)
    graphs = [g for g in source if g.num_nodes <= 9][:num_graphs]
    if len(graphs) < num_graphs:
        # Fall back to truncating larger molecules to their first atoms.
        for g in source:
            if len(graphs) >= num_graphs:
                break
            if g.num_nodes > 9:
                keep = set(range(9))
                labels = [g.node_label(v) for v in sorted(keep)]
                edges = [
                    (u, v, label) for u, v, label in g.edges()
                    if u in keep and v in keep
                ]
                graphs.append(LabeledGraph(labels, edges))
    return GraphDatabase(graphs, np.ones((len(graphs), 1)))


def ablation_distance_quality(
    num_graphs: int = 20,
    num_pairs: int = 60,
    seed: int = 7,
) -> ExperimentResult:
    """Compare every distance in the library against exact GED."""
    rng = ensure_rng(seed)
    database = _small_molecule_database(num_graphs, seed)
    n = len(database)
    pairs = []
    while len(pairs) < num_pairs:
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i != j:
            pairs.append((i, j))

    candidates = {
        "exact_astar": ExactGED(),
        "star_metric": StarDistance(),
        "bipartite_ub": BipartiteGED(),
        "beam8_ub": BeamGED(beam_width=8),
    }
    values: dict[str, list[float]] = {name: [] for name in candidates}
    seconds: dict[str, float] = {}
    for name, distance in candidates.items():
        started = time.perf_counter()
        for i, j in pairs:
            values[name].append(float(distance(database[i], database[j])))
        seconds[name] = time.perf_counter() - started

    exact_values = np.asarray(values["exact_astar"])
    sample = list(database)[:6]
    rows = []
    for name in candidates:
        observed = np.asarray(values[name])
        correlation = float(spearmanr(exact_values, observed).statistic)
        is_upper = bool((observed >= exact_values - 1e-9).all())
        is_metric = not check_metric_axioms(sample, candidates[name])
        rows.append({
            "distance": name,
            "spearman_vs_exact": correlation,
            "mean_value": float(observed.mean()),
            "always_upper_bound": is_upper,
            "metric_on_sample": is_metric,
            "ms_per_call": seconds[name] / len(pairs) * 1000,
        })
    return ExperimentResult(
        name="ablation_distance_quality",
        columns=["distance", "spearman_vs_exact", "mean_value",
                 "always_upper_bound", "metric_on_sample", "ms_per_call"],
        rows=rows,
        notes=(
            "Justifies DESIGN.md's star-distance substitution: high rank "
            "correlation with exact GED at a tiny fraction of the cost, "
            "with metric axioms intact (unlike the upper-bound estimators)."
        ),
    )

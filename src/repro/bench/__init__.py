"""Benchmark harness: per-table/figure experiment drivers and printers."""

from repro.bench.harness import (
    SCALES,
    BenchContext,
    ExperimentResult,
    bench_scale,
    dataset_size,
    sweep_sizes,
    timed_call,
    write_result,
)
from repro.bench.printers import format_table, print_and_save
from repro.bench import experiments, hotpath, scaling

__all__ = [
    "BenchContext",
    "ExperimentResult",
    "SCALES",
    "bench_scale",
    "dataset_size",
    "sweep_sizes",
    "timed_call",
    "write_result",
    "format_table",
    "print_and_save",
    "experiments",
    "hotpath",
    "scaling",
]

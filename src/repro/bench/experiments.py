"""Experiment drivers: quality, distributions, FPR, and the qualitative
comparison — Figs. 2(a), 5(a–h), 7 and Table 4.

Each driver regenerates one table or figure of the paper as structured
rows (see DESIGN.md §4 for the full experiment index).  Scalability and
ablation drivers live in :mod:`repro.bench.scaling`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distances import sample_distances
from repro.analysis.metrics import evaluate_answers
from repro.baselines.disc import disc_greedy
from repro.baselines.div import div_topk
from repro.baselines.topk import answer_set_redundancy, traditional_top_k
from repro.bench.harness import BenchContext, ExperimentResult
from repro.core.greedy import baseline_greedy
from repro.datasets import dud_like
from repro.datasets.registry import calibrate_theta
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index.fpr import empirical_fpr, fpr_upper_bound_gaussian


def fig2a_disc_growth(
    ctx: BenchContext,
    relevant_quantiles=(0.9, 0.75, 0.5, 0.25),
) -> ExperimentResult:
    """Fig. 2(a): DisC answer-set size vs number of relevant objects.

    The paper's point: growth is near-linear and the compression ratio
    hovers around 3 — no budget control.
    """
    rows = []
    for quantile in relevant_quantiles:
        q = ctx.relevance(quantile=quantile)
        result = disc_greedy(ctx.database, ctx.distance, q, ctx.theta)
        rows.append({
            "relevant": result.num_relevant,
            "answer_size": len(result.answer),
            "compression_ratio": result.compression_ratio,
        })
    rows.sort(key=lambda r: r["relevant"])
    return ExperimentResult(
        name=f"fig2a_disc_growth_{ctx.name}",
        columns=["relevant", "answer_size", "compression_ratio"],
        rows=rows,
        notes=(
            "Paper: DisC answer grows ~linearly with |L_q|; average CR ≈ 3 "
            f"on DUD. Dataset: {ctx.name}, theta={ctx.theta:.1f}."
        ),
    )


def table4_quality(
    contexts: list[BenchContext],
    ks=(10, 25, 50, 100),
) -> ExperimentResult:
    """Table 4: CR and π(A) for REP vs DIV(θ) vs DIV(2θ) per k, plus the
    DisC row (full covering answer)."""
    rows = []
    for ctx in contexts:
        q = ctx.relevance()
        theta = ctx.theta
        for k in ks:
            rep = baseline_greedy(ctx.database, ctx.distance, q, theta, k)
            div1 = div_topk(ctx.database, ctx.distance, q, theta, k, 1.0)
            div2 = div_topk(ctx.database, ctx.distance, q, theta, k, 2.0)
            rows.append({
                "dataset": ctx.name,
                "k": k,
                "REP_CR": rep.compression_ratio,
                "REP_pi": rep.pi,
                "DIV(t)_CR": div1.compression_ratio,
                "DIV(t)_pi": div1.pi,
                "DIV(2t)_CR": div2.compression_ratio,
                "DIV(2t)_pi": div2.pi,
            })
        disc = disc_greedy(ctx.database, ctx.distance, q, theta)
        rows.append({
            "dataset": ctx.name,
            "k": f"DisC({len(disc.answer)})",
            "REP_CR": None, "REP_pi": None,
            "DIV(t)_CR": None, "DIV(t)_pi": None,
            "DIV(2t)_CR": disc.compression_ratio,
            "DIV(2t)_pi": disc.pi,
        })
    return ExperimentResult(
        name="table4_quality",
        columns=["dataset", "k", "REP_CR", "REP_pi", "DIV(t)_CR", "DIV(t)_pi",
                 "DIV(2t)_CR", "DIV(2t)_pi"],
        rows=rows,
        notes=(
            "Paper Table 4: REP dominates DIV(θ) which dominates DIV(2θ) in "
            "both CR and π; DisC CR ≈ 2.8/1.8/2.5 (its row shows CR and π "
            "in the DIV(2t) columns, answer size in parentheses)."
        ),
    )


def fig5ab_distance_cdf(
    contexts: list[BenchContext],
    num_points: int = 12,
    num_pairs: int = 1500,
) -> ExperimentResult:
    """Figs. 5(a–b): cumulative pairwise-distance distributions, the basis
    for θ calibration and ladder placement."""
    rows = []
    for ctx in contexts:
        distribution = sample_distances(
            ctx.database, ctx.distance, num_pairs=num_pairs, rng=ctx.seed
        )
        thetas = np.linspace(0, distribution.diameter_estimate, num_points)
        cdf = distribution.cdf(thetas)
        for theta, value in zip(thetas, cdf):
            rows.append({
                "dataset": ctx.name,
                "theta": float(theta),
                "cdf": float(value),
            })
    return ExperimentResult(
        name="fig5ab_distance_cdf",
        columns=["dataset", "theta", "cdf"],
        rows=rows,
        notes=(
            "Paper Figs. 5(a-b): DUD/DBLP CDFs climb early (theta=10 zone); "
            "Amazon's is stretched (theta=75). Our analogs reproduce the "
            "relative placement (see calibrated thetas)."
        ),
    )


def fig5ce_distance_hist(
    contexts: list[BenchContext],
    bins: int = 12,
    num_pairs: int = 1500,
) -> ExperimentResult:
    """Figs. 5(c–e): distance histograms plus the Gaussian moments used by
    the FPR bound (Eq. 11)."""
    rows = []
    for ctx in contexts:
        distribution = sample_distances(
            ctx.database, ctx.distance, num_pairs=num_pairs, rng=ctx.seed
        )
        centers, densities = distribution.histogram(bins=bins)
        for center, density in zip(centers, densities):
            rows.append({
                "dataset": ctx.name,
                "distance": float(center),
                "density": float(density),
                "mu": distribution.mean,
                "sigma": distribution.std,
            })
    return ExperimentResult(
        name="fig5ce_distance_hist",
        columns=["dataset", "distance", "density", "mu", "sigma"],
        rows=rows,
        notes=(
            "Paper Figs. 5(c-e): roughly unimodal distributions approximated "
            "as Gaussians of their (mu, sigma) for VP sizing."
        ),
    )


def fig5fh_fpr(
    ctx: BenchContext,
    theta_factors=(0.6, 0.8, 1.0, 1.3, 1.7),
    num_pairs: int = 1200,
) -> ExperimentResult:
    """Figs. 5(f–h): observed FPR vs the Eq. 11 upper bound across θ.

    Uses the NB-Index's own vantage embedding, so the measured numbers are
    exactly what the query engine experiences.
    """
    embedding = ctx.nbindex.embedding
    distribution = sample_distances(
        ctx.database, ctx.distance, num_pairs=num_pairs, rng=ctx.seed
    )
    rows = []
    for factor in theta_factors:
        theta = ctx.theta * factor
        observed = empirical_fpr(
            embedding, ctx.distance, ctx.database.graphs, theta,
            num_pairs=num_pairs, rng=ctx.seed + 1,
        )
        bound = fpr_upper_bound_gaussian(
            theta, distribution.mean, distribution.std,
            embedding.num_vantage_points,
        )
        rows.append({
            "theta": theta,
            "observed_fpr": observed,
            "fpr_upper_bound": bound,
            "num_vps": embedding.num_vantage_points,
        })
    return ExperimentResult(
        name=f"fig5fh_fpr_{ctx.name}",
        columns=["theta", "observed_fpr", "fpr_upper_bound", "num_vps"],
        rows=rows,
        notes=(
            "Paper Figs. 5(f-h): FPR small in the realistic theta zone; the "
            "Gaussian bound tracks it except where the true distribution "
            "deviates from normality. Highest FPR on the most tightly "
            "clustered dataset."
        ),
    )


def fig7_qualitative(
    num_graphs: int = 200,
    seed: int = 9,
    k: int = 5,
    target_dim: int = 0,
) -> ExperimentResult:
    """Fig. 7 / Sec. 8.4: traditional top-k vs top-k representative answers
    under a single-target (AChE-style) affinity query.

    The paper's finding: the traditional answer set shares one scaffold
    (tiny pairwise distances), the representative answer set spans distinct
    structural families and covers far more of the relevant set.
    """
    distance = StarDistance()
    database = dud_like(num_graphs=num_graphs, seed=seed, outlier_fraction=0.0)
    theta = calibrate_theta(database, distance, quantile=0.05, rng=seed)
    q = quartile_relevance(database, dims=[target_dim])

    top = traditional_top_k(database, q, k)
    rep = baseline_greedy(database, distance, q, theta, k)
    evaluated = evaluate_answers(
        database, distance, q, theta, {"topk": top, "rep": rep.answer}
    )
    rows = []
    for engine, answer in (("traditional_topk", top), ("representative", rep.answer)):
        spread = answer_set_redundancy(database, distance, answer)
        rows.append({
            "engine": engine,
            "answer_ids": ",".join(str(a) for a in answer),
            "mean_pairwise_dist": spread["mean"],
            "min_pairwise_dist": spread["min"],
            "pi": evaluated["topk" if engine.startswith("trad") else "rep"]["pi"],
            "CR": evaluated["topk" if engine.startswith("trad") else "rep"][
                "compression_ratio"
            ],
        })
    return ExperimentResult(
        name="fig7_qualitative",
        columns=["engine", "answer_ids", "mean_pairwise_dist",
                 "min_pairwise_dist", "pi", "CR"],
        rows=rows,
        notes=(
            "Paper Fig. 7: traditional top-5 molecules share a core scaffold "
            "(low pairwise distance, low coverage); the representative top-5 "
            "spans five families (high pairwise distance, higher pi/CR)."
        ),
    )

"""ASCII line charts for figure-type experiment results.

The paper's evaluation is mostly figures; the harness's tables carry the
numbers, and this module adds a quick visual: a monospace chart of one or
more y-series against a shared x column, embedded in the ``results/``
artifacts.  Log-scale is supported because most of the paper's runtime
figures span orders of magnitude.
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentResult
from repro.utils.validation import require

#: Glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def ascii_chart(
    result: ExperimentResult,
    x: str,
    ys: list[str],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str | None = None,
) -> str:
    """Render ``ys`` against ``x`` from an experiment's rows.

    Rows with missing values in any requested column are skipped.  Returns
    a multi-line string: title, plot grid, x-range line and a legend.
    """
    require(len(ys) >= 1, "need at least one y series")
    require(len(ys) <= len(_MARKERS), f"at most {len(_MARKERS)} series")
    points: dict[str, list[tuple[float, float]]] = {y: [] for y in ys}
    for row in result.rows:
        if row.get(x) is None:
            continue
        for y in ys:
            value = row.get(y)
            if value is None:
                continue
            points[y].append((float(row[x]), float(value)))
    all_xy = [p for series in points.values() for p in series]
    require(len(all_xy) > 0, "no plottable points")

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-12))
        return value

    xs = [p[0] for p in all_xy]
    ys_values = [transform(p[1]) for p in all_xy]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys_values), max(ys_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, y_name in zip(_MARKERS, ys):
        for x_value, y_value in points[y_name]:
            col = int((x_value - x_lo) / x_span * (width - 1))
            row_pos = int((transform(y_value) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row_pos][col] = marker

    def y_label(level: float) -> str:
        value = 10**level if log_y else level
        return f"{value:10.3g}"

    lines = []
    if title:
        lines.append(title)
    for i, row_chars in enumerate(grid):
        level = y_hi - (y_hi - y_lo) * i / (height - 1)
        prefix = y_label(level) if i % 4 == 0 else " " * 10
        lines.append(f"{prefix} |{''.join(row_chars)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x}: {x_lo:g} .. {x_hi:g}"
        + ("   (log y)" if log_y else "")
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, ys)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines) + "\n"

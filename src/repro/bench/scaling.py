"""Scalability experiment drivers — Figs. 2(b), 5(i–l), 6(a–l) — and the
design-choice ablations DESIGN.md calls out.

Query-time comparisons follow the paper's setup (Sec. 8.2): the engines
are NB-Index, Algorithm 1 over a C-tree, Greedy-DisC over an M-tree
(stopped at size k), DIV's div-cut fed by C-tree range queries, and —
for the Fig. 5(i) inset — greedy over a fully precomputed distance matrix.
Index construction happens offline and is excluded from query timings,
exactly as in the paper.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.disc import disc_greedy
from repro.baselines.div import div_topk
from repro.bench.harness import BenchContext, ExperimentResult, timed_call
from repro.core.greedy import baseline_greedy
from repro.ged.metric import pairwise_matrix
from repro.index import NBIndex, ThresholdLadder
from repro.index.fpr import empirical_fpr

DEFAULT_K = 10


# ---------------------------------------------------------------------------
# Engine runners: one timed top-k query each, on prebuilt indexes.
# ---------------------------------------------------------------------------
def run_nbindex(ctx: BenchContext, q, theta: float, k: int) -> float:
    index = ctx.nbindex  # built offline
    _, seconds = timed_call(index.query, q, theta, k)
    return seconds


def run_ctree_greedy(ctx: BenchContext, q, theta: float, k: int) -> float:
    tree = ctx.ctree
    _, seconds = timed_call(
        baseline_greedy, ctx.database, ctx.distance, q, theta, k,
        range_query=tree.range_query,
    )
    return seconds


def run_disc(ctx: BenchContext, q, theta: float, k: int) -> float:
    tree = ctx.mtree
    _, seconds = timed_call(
        disc_greedy, ctx.database, ctx.distance, q, theta,
        range_query=tree.range_query, stop_at_k=k,
    )
    return seconds


def run_div(ctx: BenchContext, q, theta: float, k: int) -> float:
    tree = ctx.ctree
    _, seconds = timed_call(
        div_topk, ctx.database, ctx.distance, q, theta, k,
        range_query=tree.range_query,
    )
    return seconds


def run_matrix(ctx: BenchContext, q, theta: float, k: int) -> float:
    oracle = ctx.matrix
    _, seconds = timed_call(oracle.greedy, q, theta, k)
    return seconds


ENGINES = {
    "nbindex": run_nbindex,
    "ctree_greedy": run_ctree_greedy,
    "disc": run_disc,
    "div": run_div,
}


# ---------------------------------------------------------------------------
# Fig. 2(b): the unindexed/NN-indexed baseline does not scale.
# ---------------------------------------------------------------------------
def fig2b_baseline_scaling(
    dataset: str = "dud",
    sizes=(100, 200, 300),
    k: int = DEFAULT_K,
    seed: int = 7,
) -> ExperimentResult:
    rows = []
    for size in sizes:
        ctx = BenchContext.create(dataset, num_graphs=size, seed=seed)
        q = ctx.relevance()
        rows.append({
            "size": size,
            "ctree_greedy_s": run_ctree_greedy(ctx, q, ctx.theta, k),
            "mtree_greedy_s": timed_call(
                baseline_greedy, ctx.database, ctx.distance, q, ctx.theta, k,
                range_query=ctx.mtree.range_query,
            )[1],
            "plain_greedy_s": timed_call(
                baseline_greedy, ctx.database, ctx.distance, q, ctx.theta, k,
            )[1],
        })
    return ExperimentResult(
        name=f"fig2b_baseline_scaling_{dataset}",
        columns=["size", "plain_greedy_s", "ctree_greedy_s", "mtree_greedy_s"],
        rows=rows,
        notes=(
            "Paper Fig. 2(b): Algorithm 1 over NN-indexes (C-tree, DisC's "
            "M-tree) grows superlinearly — >35 min at 5K graphs in the "
            "paper's setting; the shape, not the absolute scale, is the "
            "reproduced claim."
        ),
    )


# ---------------------------------------------------------------------------
# Figs. 5(i-k): query time vs theta, per dataset; dist-matrix inset.
# ---------------------------------------------------------------------------
def fig5ik_time_vs_theta(
    ctx: BenchContext,
    theta_factors=(0.6, 1.0, 1.5, 2.2),
    k: int = DEFAULT_K,
    include_matrix: bool = True,
) -> ExperimentResult:
    q = ctx.relevance()
    # Force offline builds before timing.
    ctx.nbindex, ctx.ctree, ctx.mtree
    if include_matrix:
        ctx.matrix
    rows = []
    for factor in theta_factors:
        theta = ctx.theta * factor
        row = {"theta": theta}
        for name, runner in ENGINES.items():
            row[f"{name}_s"] = runner(ctx, q, theta, k)
        if include_matrix:
            row["distmatrix_s"] = run_matrix(ctx, q, theta, k)
        rows.append(row)
    columns = ["theta"] + [f"{n}_s" for n in ENGINES]
    if include_matrix:
        columns.append("distmatrix_s")
    return ExperimentResult(
        name=f"fig5ik_time_vs_theta_{ctx.name}",
        columns=columns,
        rows=rows,
        notes=(
            "Paper Figs. 5(i-k): NB-Index up to 2 orders of magnitude "
            "faster than DisC/C-tree/DIV; bell-shaped NB curve (Theorem 6 "
            "rules small theta, Theorems 7-8 large theta); the distance "
            "matrix inset is the best-case query-time comparator."
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 5(l) / 6(a): sensitivity to the gap between theta and the ladder.
# ---------------------------------------------------------------------------
def fig5l6a_threshold_gap(
    ctx: BenchContext,
    gap_factors=(0.0, 0.25, 0.5, 1.0, 2.0),
    k: int = DEFAULT_K,
) -> ExperimentResult:
    q = ctx.relevance()
    theta = ctx.theta
    rows = []
    for factor in gap_factors:
        gap = theta * factor
        ladder = ThresholdLadder([theta + gap])
        index = NBIndex.build(
            ctx.database, ctx.distance,
            num_vantage_points=ctx.num_vantage_points,
            branching=ctx.branching, thresholds=ladder, seed=ctx.seed,
        )
        _, seconds = timed_call(index.query, q, theta, k)
        rows.append({
            "indexed_theta_gap": gap,
            "query_s": seconds,
        })
    return ExperimentResult(
        name=f"fig5l6a_threshold_gap_{ctx.name}",
        columns=["indexed_theta_gap", "query_s"],
        rows=rows,
        notes=(
            "Paper Figs. 5(l)/6(a): looser pi-hat upper bounds (larger gap "
            "between theta and the covering indexed threshold) cost only "
            "modest extra time thanks to VOs and Theorems 7-8."
        ),
    )


# ---------------------------------------------------------------------------
# Figs. 6(b-d): query time vs dataset size.
# ---------------------------------------------------------------------------
def fig6bd_time_vs_size(
    dataset: str,
    sizes=(100, 200, 300),
    k: int = DEFAULT_K,
    seed: int = 7,
) -> ExperimentResult:
    rows = []
    for size in sizes:
        ctx = BenchContext.create(dataset, num_graphs=size, seed=seed)
        q = ctx.relevance()
        row = {"size": size}
        for name, runner in ENGINES.items():
            row[f"{name}_s"] = runner(ctx, q, ctx.theta, k)
        rows.append(row)
    return ExperimentResult(
        name=f"fig6bd_time_vs_size_{dataset}",
        columns=["size"] + [f"{n}_s" for n in ENGINES],
        rows=rows,
        notes=(
            "Paper Figs. 6(b-d): NB-Index more than an order of magnitude "
            "faster and with a flatter growth rate than DisC/C-tree/DIV."
        ),
    )


# ---------------------------------------------------------------------------
# Figs. 6(e-g): query time vs k.
# ---------------------------------------------------------------------------
def fig6eg_time_vs_k(
    ctx: BenchContext,
    ks=(5, 10, 25, 50),
    ) -> ExperimentResult:
    q = ctx.relevance()
    ctx.nbindex, ctx.ctree, ctx.mtree
    rows = []
    for k in ks:
        row = {"k": k}
        for name, runner in ENGINES.items():
            row[f"{name}_s"] = runner(ctx, q, ctx.theta, k)
        rows.append(row)
    return ExperimentResult(
        name=f"fig6eg_time_vs_k_{ctx.name}",
        columns=["k"] + [f"{n}_s" for n in ENGINES],
        rows=rows,
        notes=(
            "Paper Figs. 6(e-g): NB-Index grows slowly with k; DIV is "
            "nearly flat (its per-k work is feature-space only after the "
            "diversity graph is built)."
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 6(h): query time vs feature dimensionality (DUD).
# ---------------------------------------------------------------------------
def fig6h_time_vs_dims(
    ctx: BenchContext,
    dims_list=(1, 3, 5, 10),
    k: int = DEFAULT_K,
) -> ExperimentResult:
    rng = np.random.default_rng(ctx.seed)
    ctx.nbindex, ctx.ctree
    rows = []
    for d in dims_list:
        dims = sorted(
            int(i) for i in rng.choice(ctx.database.num_features, size=d,
                                       replace=False)
        )
        q = ctx.relevance(dims=dims)
        rows.append({
            "dims": d,
            "nbindex_s": run_nbindex(ctx, q, ctx.theta, k),
            "ctree_greedy_s": run_ctree_greedy(ctx, q, ctx.theta, k),
        })
    return ExperimentResult(
        name=f"fig6h_time_vs_dims_{ctx.name}",
        columns=["dims", "nbindex_s", "ctree_greedy_s"],
        rows=rows,
        notes=(
            "Paper Fig. 6(h): nearly flat — feature-space work is "
            "negligible next to structural distance computation; variation "
            "tracks feature/structure correlation."
        ),
    )


# ---------------------------------------------------------------------------
# Figs. 6(i-j): interactive zoom (theta refinement).
# ---------------------------------------------------------------------------
def fig6i_zoom(
    contexts: list[BenchContext],
    k: int = DEFAULT_K,
    rounds: int = 6,
) -> ExperimentResult:
    """±10% θ refinements: NB session reuse vs recomputation from scratch
    (the DisC/C-tree behaviour the paper contrasts against)."""
    rows = []
    for ctx in contexts:
        q = ctx.relevance()
        session = ctx.nbindex.session(q)
        session.query(ctx.theta, k)  # initial query, not counted
        rng = np.random.default_rng(ctx.seed)
        theta = ctx.theta
        nb_times = []
        fresh_times = []
        for _ in range(rounds):
            theta *= 1.1 if rng.random() < 0.5 else 0.9
            _, seconds = timed_call(session.query, theta, k)
            nb_times.append(seconds)
            fresh_times.append(run_ctree_greedy(ctx, q, theta, k))
        rows.append({
            "dataset": ctx.name,
            "nb_refine_avg_s": float(np.mean(nb_times)),
            "ctree_recompute_avg_s": float(np.mean(fresh_times)),
        })
    return ExperimentResult(
        name="fig6i_zoom",
        columns=["dataset", "nb_refine_avg_s", "ctree_recompute_avg_s"],
        rows=rows,
        notes=(
            "Paper Fig. 6(i): NB-Index handles ±10% theta refinements in "
            "seconds (initialization phase is reused); DisC/C-tree must "
            "recompute neighborhoods from scratch (up to 160s in the paper)."
        ),
    )


def fig6j_zoom_scaling(
    dataset: str = "dud",
    sizes=(100, 200, 300),
    k: int = DEFAULT_K,
    rounds: int = 4,
    seed: int = 7,
) -> ExperimentResult:
    rows = []
    for size in sizes:
        ctx = BenchContext.create(dataset, num_graphs=size, seed=seed)
        q = ctx.relevance()
        session = ctx.nbindex.session(q)
        session.query(ctx.theta, k)
        rng = np.random.default_rng(seed)
        theta = ctx.theta
        nb_times, fresh_times = [], []
        for _ in range(rounds):
            theta *= 1.1 if rng.random() < 0.5 else 0.9
            _, seconds = timed_call(session.query, theta, k)
            nb_times.append(seconds)
            fresh_times.append(run_ctree_greedy(ctx, q, theta, k))
        rows.append({
            "size": size,
            "nb_refine_avg_s": float(np.mean(nb_times)),
            "ctree_recompute_avg_s": float(np.mean(fresh_times)),
        })
    return ExperimentResult(
        name=f"fig6j_zoom_scaling_{dataset}",
        columns=["size", "nb_refine_avg_s", "ctree_recompute_avg_s"],
        rows=rows,
        notes="Paper Fig. 6(j): refinement time grows much slower for NB-Index.",
    )


# ---------------------------------------------------------------------------
# Figs. 6(k-l): index construction cost and memory.
# ---------------------------------------------------------------------------
def fig6k_index_build(
    dataset: str = "dud",
    sizes=(100, 200, 300),
    seed: int = 7,
) -> ExperimentResult:
    rows = []
    for size in sizes:
        ctx = BenchContext.create(dataset, num_graphs=size, seed=seed)
        index = ctx.nbindex
        build_calls = index.stats()["distance_calls"]
        matrix_started = time.perf_counter()
        pairwise_matrix(ctx.database.graphs, ctx.distance)
        matrix_seconds = time.perf_counter() - matrix_started
        all_pairs = size * (size - 1) // 2
        rows.append({
            "size": size,
            "nb_build_s": index.build_seconds,
            "nb_distance_calls": build_calls,
            "matrix_build_s": matrix_seconds,
            "matrix_distance_calls": all_pairs,
            "calls_fraction": build_calls / all_pairs,
        })
    return ExperimentResult(
        name=f"fig6k_index_build_{dataset}",
        columns=["size", "nb_build_s", "nb_distance_calls", "matrix_build_s",
                 "matrix_distance_calls", "calls_fraction"],
        rows=rows,
        notes=(
            "Paper Fig. 6(k): NB-Index builds orders of magnitude faster "
            "than the full distance matrix; VP pruning leaves only a small "
            "fraction of candidate pairs needing exact distances."
        ),
    )


def fig6l_index_memory(
    dataset: str = "dud",
    sizes=(100, 200, 300),
    seed: int = 7,
) -> ExperimentResult:
    rows = []
    for size in sizes:
        ctx = BenchContext.create(dataset, num_graphs=size, seed=seed)
        stats = ctx.nbindex.stats()
        rows.append({
            "size": size,
            "nb_index_bytes": stats["memory_bytes"],
            "coverage_bytes": stats["coverage_bytes"],
            "matrix_bytes": size * size * 8,
        })
    return ExperimentResult(
        name=f"fig6l_index_memory_{dataset}",
        columns=["size", "nb_index_bytes", "coverage_bytes", "matrix_bytes"],
        rows=rows,
        notes=(
            "Paper Fig. 6(l): NB-Index memory grows linearly (<300MB for "
            "all of DUD); the distance matrix grows quadratically. "
            "coverage_bytes is the worst-case per-node bitset coverage a "
            "query session materializes — linear in n like the index."
        ),
    )


# ---------------------------------------------------------------------------
# Ablations (beyond the paper; design choices from DESIGN.md §4).
# ---------------------------------------------------------------------------
def ablation_vp_count(
    ctx: BenchContext,
    vp_counts=(2, 5, 10, 20, 40),
    k: int = DEFAULT_K,
    num_pairs: int = 800,
) -> ExperimentResult:
    """FPR and query time as |V| grows — the Sec. 6.2.1 trade-off."""
    q = ctx.relevance()
    rows = []
    for count in vp_counts:
        count = min(count, len(ctx.database))
        index = NBIndex.build(
            ctx.database, ctx.distance, num_vantage_points=count,
            branching=ctx.branching, thresholds=ctx.ladder, seed=ctx.seed,
        )
        fpr = empirical_fpr(
            index.embedding, ctx.distance, ctx.database.graphs, ctx.theta,
            num_pairs=num_pairs, rng=ctx.seed,
        )
        _, seconds = timed_call(index.query, q, ctx.theta, k)
        rows.append({
            "num_vps": count,
            "observed_fpr": fpr,
            "query_s": seconds,
            "build_s": index.build_seconds,
        })
    return ExperimentResult(
        name=f"ablation_vp_count_{ctx.name}",
        columns=["num_vps", "observed_fpr", "query_s", "build_s"],
        rows=rows,
        notes="More VPs: lower FPR, higher embedding cost — elbow expected.",
    )


def ablation_branching(
    ctx: BenchContext,
    branchings=(3, 8, 20, 40),
    k: int = DEFAULT_K,
) -> ExperimentResult:
    q = ctx.relevance()
    rows = []
    for b in branchings:
        index = NBIndex.build(
            ctx.database, ctx.distance,
            num_vantage_points=ctx.num_vantage_points, branching=b,
            thresholds=ctx.ladder, seed=ctx.seed,
        )
        _, seconds = timed_call(index.query, q, ctx.theta, k)
        rows.append({
            "branching": b,
            "build_s": index.build_seconds,
            "query_s": seconds,
            "tree_nodes": index.tree.num_nodes,
            "tree_height": index.tree.height(),
        })
    return ExperimentResult(
        name=f"ablation_branching_{ctx.name}",
        columns=["branching", "build_s", "query_s", "tree_nodes", "tree_height"],
        rows=rows,
        notes=(
            "Paper Sec. 6.4: small b suits memory-resident use (deeper tree, "
            "finer clusters); b=40 matches the paper's on-disk default."
        ),
    )


def ablation_ladder_density(
    ctx: BenchContext,
    ladder_sizes=(1, 3, 10, 20),
    k: int = DEFAULT_K,
) -> ExperimentResult:
    from repro.index.pivec import choose_thresholds

    q = ctx.relevance()
    rows = []
    for count in ladder_sizes:
        ladder = choose_thresholds(
            ctx.database.graphs, ctx.distance, count=count,
            num_pairs=600, rng=ctx.seed,
        )
        index = NBIndex.build(
            ctx.database, ctx.distance,
            num_vantage_points=ctx.num_vantage_points,
            branching=ctx.branching, thresholds=ladder, seed=ctx.seed,
        )
        _, seconds = timed_call(index.query, q, ctx.theta, k)
        gap = ladder.gap(ctx.theta)
        rows.append({
            "ladder_size": len(ladder),
            "gap_at_theta": gap if gap is not None else -1.0,
            "query_s": seconds,
        })
    return ExperimentResult(
        name=f"ablation_pivec_ladder_{ctx.name}",
        columns=["ladder_size", "gap_at_theta", "query_s"],
        rows=rows,
        notes="Denser ladders tighten pi-hat bounds; gap -1 means theta above ladder.",
    )


def ablation_insert_degradation(
    dataset: str = "dud",
    base_size: int = 200,
    num_inserts: int = 50,
    k: int = DEFAULT_K,
    seed: int = 7,
) -> ExperimentResult:
    """Incremental insertion vs full rebuild.

    Builds an index on ``base_size`` graphs, inserts ``num_inserts`` more
    one at a time, and compares query time and work against an index
    rebuilt from scratch over the same ``base_size + num_inserts`` graphs.
    Quantifies the conservative-geometry cost of :meth:`NBIndex.insert`.
    """
    from repro.datasets import GENERATORS
    from repro.graphs.database import GraphDatabase

    generator = GENERATORS[dataset]
    # The generators draw graphs sequentially from one stream, so the
    # larger database has the smaller one as a prefix.
    full = generator(num_graphs=base_size + num_inserts, seed=seed)
    base = full.subset(range(base_size))
    ctx = BenchContext.create(dataset, num_graphs=base_size, seed=seed)

    incremental = NBIndex.build(
        base, ctx.distance, num_vantage_points=ctx.num_vantage_points,
        branching=ctx.branching, seed=seed,
    )
    insert_started = time.perf_counter()
    for position in range(base_size, base_size + num_inserts):
        clone = GraphDatabase._copy_graph(full[position])
        incremental.insert(clone, full.feature_vector(position))
    insert_seconds = time.perf_counter() - insert_started

    rebuilt = NBIndex.build(
        full, ctx.distance, num_vantage_points=ctx.num_vantage_points,
        branching=ctx.branching, seed=seed,
    )

    from repro.graphs import quartile_relevance

    rows = []
    for name, index in (("incremental", incremental), ("rebuilt", rebuilt)):
        q = quartile_relevance(index.database)
        result, seconds = timed_call(index.query, q, ctx.theta, k)
        rows.append({
            "index": name,
            "query_s": seconds,
            "pi": result.pi,
            "distance_calls": result.stats.distance_calls,
            "maintenance_s": insert_seconds if name == "incremental"
            else rebuilt.build_seconds,
        })
    return ExperimentResult(
        name=f"ablation_insert_{dataset}",
        columns=["index", "query_s", "pi", "distance_calls", "maintenance_s"],
        rows=rows,
        notes=(
            f"{num_inserts} inserts into a {base_size}-graph index vs full "
            "rebuild: answers stay exact (equal pi), inserts are cheaper "
            "than rebuilding, queries pay for the conservative radii."
        ),
    )


def ablation_bounds(
    ctx: BenchContext,
    k: int = DEFAULT_K,
) -> ExperimentResult:
    """Bound components: full engine vs no Theorem 6-8 updates vs trivial
    pi-hat (VO candidates only).

    Each variant runs on a freshly built index so none benefits from a
    distance cache warmed by an earlier variant.
    """
    q = ctx.relevance()

    def fresh_index(ladder):
        return NBIndex.build(
            ctx.database, ctx.distance,
            num_vantage_points=ctx.num_vantage_points,
            branching=ctx.branching, thresholds=ladder, seed=ctx.seed,
        )

    # A rung far above every distance makes π̂ = |L_q| for all graphs — the
    # trivial bound — while keeping θ on the ladder (off-ladder θ raises).
    trivial_ladder = ThresholdLadder([1e18])
    variants = [
        ("full", ctx.ladder, True),
        ("no_updates", ctx.ladder, False),
        ("vo_only", trivial_ladder, False),
    ]
    rows = []
    for name, ladder, updates in variants:
        index = fresh_index(ladder)
        result, seconds = timed_call(
            lambda: index.session(q).query(
                ctx.theta, k, enable_updates=updates
            )
        )
        rows.append({
            "variant": name,
            "query_s": seconds,
            "exact_neighborhoods": result.stats.exact_neighborhoods,
            "distance_calls": result.stats.distance_calls,
            "pi": result.pi,
        })
    return ExperimentResult(
        name=f"ablation_bounds_{ctx.name}",
        columns=["variant", "query_s", "exact_neighborhoods",
                 "distance_calls", "pi"],
        rows=rows,
        notes=(
            "All variants return equal-quality greedy answers; the bounds "
            "only change how much work finds them."
        ),
    )

"""Hot-path benchmark driver: packed-bitset coverage vs set-based reference.

Measures what the :mod:`repro.bitset` kernel actually buys on the greedy
coverage hot path, in three layers:

* **end-to-end** — Algorithm 1 over a synthetic vector-metric database
  where θ-neighborhoods come from one vectorized range query, so the
  timed difference is coverage bookkeeping (the paper's per-round argmax
  over marginal gains), not distance evaluation.  The pre-change set
  implementation (:mod:`repro.core.setgreedy`) is run against the bitset
  engine on identical inputs; answers must match bit-for-bit.
* **engine identity** — the NB-Index session (S=1) and the sharded
  coordinator (S=4) answer the same (θ, k) query; each row records
  whether ids, gains, order and coverage equal the reference.  A row with
  ``identical: false`` is a correctness bug, not a slow run.
* **per-kernel microbenchmarks** — median latency of the individual
  bitset primitives at the benchmark's largest universe, the baselines
  ``scripts/check_bench_delta.py`` guards against regressions.

Shared by ``benchmarks/bench_bitset_hotpath.py`` (full sweep, writes
``BENCH_bitset_hotpath.json``) and the ``repro bench-hotpath`` CLI
subcommand (small-n correctness smoke in CI, timing-free).
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bitset import BitsetDelta, kernel
from repro.core import baseline_greedy, baseline_greedy_sets
from repro.graphs.relevance import quartile_relevance
from repro.index.nbindex import NBIndex
from repro.index.pivec import ThresholdLadder
from repro.metricspace import vector_database

_EPS = 1e-9

#: Ladder rung (as a quantile of sampled pairwise distances) used as θ.
_THETA_QUANTILE = 0.2
#: All rungs of the shared ladder, as distance quantiles.
_LADDER_QUANTILES = (0.02, 0.05, 0.08, 0.12, 0.2, 0.35, 0.5)


def make_instance(n: int, dims: int = 6, seed: int = 7):
    """One synthetic hot-path instance: vector database, relevance rule,
    shared threshold ladder and the benchmark θ (a ladder rung).

    The metric is Euclidean over random normal points, evaluated through
    the same ``PayloadDistance`` adapter every engine uses; the range
    query below reproduces it with identical float arithmetic, so all
    engines see literally the same neighborhoods.
    """
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dims))
    db, dist = vector_database(points)
    query_fn = quartile_relevance(db, quantile=0.5)

    pairs = rng.integers(0, n, size=(min(4000, n * 4), 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    sample = (
        ((points[pairs[:, 0]] - points[pairs[:, 1]]) ** 2).sum(axis=1)
        ** (1.0 / 2.0)
    )
    rungs = sorted(float(np.quantile(sample, q)) for q in _LADDER_QUANTILES)
    ladder = ThresholdLadder(rungs)
    theta = float(np.quantile(sample, _THETA_QUANTILE))
    theta = min(ladder.values, key=lambda v: abs(v - theta))

    def range_query(gid: int, radius: float):
        # Same formula and reduction order as MinkowskiMetric(p=2) on one
        # pair, so membership at the theta+eps boundary agrees bitwise
        # with the engines' per-pair verification.
        distances = (
            ((points - points[int(gid)]) ** 2).sum(axis=1) ** (1.0 / 2.0)
        )
        return np.flatnonzero(distances <= radius + _EPS)

    return db, dist, query_fn, ladder, theta, range_query


def _identical(got, want) -> bool:
    return (
        got.answer == want.answer
        and got.gains == want.gains
        and got.covered == want.covered
    )


def _best_of(repeats: int, fn):
    """Min-of-repeats wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def kernel_microbench(nbits: int, rows: int = 1024, repeats: int = 7, seed: int = 3):
    """Median latency (ms) of each bitset primitive at this universe size."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((rows, kernel.num_words(nbits)), dtype=np.uint64)
    for r in range(rows):
        positions = rng.choice(nbits, size=max(1, nbits // 20), replace=False)
        matrix[r] = kernel.from_positions(positions, nbits)
    covered = kernel.from_positions(
        rng.choice(nbits, size=nbits // 3, replace=False), nbits
    )
    row = matrix[0].copy()
    positions = np.sort(rng.choice(nbits, size=nbits // 10, replace=False))
    delta = BitsetDelta.from_words(kernel.andnot(matrix[1], covered), nbits)

    cases = {
        "popcount_rows": lambda: kernel.popcount_rows(matrix),
        "uncovered_counts": lambda: kernel.uncovered_counts(matrix, covered),
        "uncovered_count": lambda: kernel.uncovered_count(row, covered),
        "union_into": lambda: kernel.union_into(row.copy(), covered),
        "andnot": lambda: kernel.andnot(row, covered),
        "from_positions": lambda: kernel.from_positions(positions, nbits),
        "to_positions": lambda: kernel.to_positions(covered),
        "test_positions": lambda: kernel.test_positions(covered, positions),
        "delta_intersection_count": lambda: delta.intersection_count(row),
    }
    out = {}
    for name, fn in cases.items():
        samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - started) * 1e3)
        out[name] = round(statistics.median(samples), 6)
    out["nbits"] = nbits
    out["rows"] = rows
    return out


def run_hotpath(
    sizes=(1000, 2500, 5000, 8000),
    k: int = 48,
    seed: int = 7,
    repeats: int = 3,
    shard_count: int = 4,
    include_engines: bool = True,
    index_build=None,
) -> dict:
    """Run the sweep; returns the benchmark document (no file I/O here)."""
    if index_build is None:
        index_build = dict(num_vantage_points=8, branching=16)
    rows = []
    for n in sizes:
        db, dist, query_fn, ladder, theta, range_query = make_instance(
            n, seed=seed
        )
        set_s, reference = _best_of(
            repeats,
            lambda: baseline_greedy_sets(
                db, dist, query_fn, theta, k, range_query=range_query
            ),
        )
        bitset_s, got = _best_of(
            repeats,
            lambda: baseline_greedy(
                db, dist, query_fn, theta, k, range_query=range_query
            ),
        )
        row = {
            "n": int(n),
            "num_relevant": reference.num_relevant,
            "theta": round(theta, 4),
            "k": k,
            "answer_size": len(reference.answer),
            "set_query_s": round(set_s, 4),
            "bitset_query_s": round(bitset_s, 4),
            "speedup": round(set_s / max(bitset_s, 1e-9), 2),
            "identical": _identical(got, reference),
        }
        if include_engines:
            row["engines"] = _engine_rows(
                db, dist, query_fn, ladder, theta, k, reference,
                shard_count, seed, repeats, index_build,
            )
        rows.append(row)

    largest = max(int(r["num_relevant"]) for r in rows)
    return {
        "benchmark": "bitset_hotpath",
        "dataset": f"gaussian vectors, sizes={list(int(s) for s in sizes)} seed={seed}",
        "k": k,
        "shard_count": shard_count,
        "rows": rows,
        "kernels": kernel_microbench(max(largest, 64)),
    }


def _engine_rows(
    db, dist, query_fn, ladder, theta, k, reference,
    shard_count, seed, repeats, index_build,
):
    """NB-Index (S=1) and sharded (S=S) identity + latency rows."""
    from repro.shard import ShardedIndex, build_shards

    index = NBIndex.build(db, dist, thresholds=ladder, seed=seed, **index_build)
    session = index.session(query_fn)
    single_s, single = _best_of(repeats, lambda: session.query(theta, k))
    engines = [{
        "shards": 1,
        "query_s": round(single_s, 4),
        "identical": _identical(single, reference),
    }]

    with tempfile.TemporaryDirectory() as out_dir:
        manifest = build_shards(
            db, dist, num_shards=shard_count, out_dir=out_dir,
            thresholds=ladder, seed=seed, **index_build,
        )
        sharded = ShardedIndex.load(manifest, db, dist)
        sharded_s, got = _best_of(
            repeats, lambda: sharded.query(query_fn, theta, k)
        )
        engines.append({
            "shards": shard_count,
            "query_s": round(sharded_s, 4),
            "identical": _identical(got, reference),
            "broadcast_words": got.stats.coordinator["broadcast_words"],
        })
        sharded.invalidate_pools()
    return engines


def check_document(document: dict) -> list[str]:
    """Identity violations in a benchmark document (empty = all good)."""
    problems = []
    for row in document["rows"]:
        if not row["identical"]:
            problems.append(f"n={row['n']}: bitset greedy diverged")
        for engine in row.get("engines", ()):
            if not engine["identical"]:
                problems.append(
                    f"n={row['n']} S={engine['shards']}: engine diverged"
                )
    return problems


def write_document(document: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_summary(document: dict) -> str:
    lines = [
        f"{'n':>6}{'|L_q|':>7}{'set s':>9}{'bitset s':>10}"
        f"{'speedup':>9}{'ok':>4}  engines"
    ]
    for row in document["rows"]:
        engines = " ".join(
            f"S={e['shards']}:{e['query_s']:.3f}s"
            f"{'✓' if e['identical'] else '✗'}"
            for e in row.get("engines", ())
        )
        lines.append(
            f"{row['n']:>6}{row['num_relevant']:>7}{row['set_query_s']:>9.3f}"
            f"{row['bitset_query_s']:>10.3f}{row['speedup']:>8.1f}x"
            f"{'y' if row['identical'] else 'N':>4}  {engines}"
        )
    kernels = document.get("kernels", {})
    lines.append(
        "kernels (median ms @ nbits=%s): " % kernels.get("nbits")
        + ", ".join(
            f"{name}={value}"
            for name, value in kernels.items()
            if name not in ("nbits", "rows")
        )
    )
    return "\n".join(lines)

"""Benchmark harness plumbing: scales, contexts, result containers.

Every experiment driver in :mod:`repro.bench.experiments` consumes a
:class:`BenchContext` — a dataset plus lazily built engines (NB-Index,
C-tree, M-tree, distance matrix) over a shared metric — and returns an
:class:`ExperimentResult` of printable rows.  Scales are centralized here
so ``pytest benchmarks/`` stays minutes-fast while the same drivers can be
run standalone at larger sizes (``REPRO_BENCH_SCALE=medium|large``).

The paper ran a Java implementation on datasets up to 128K graphs; pure
Python is orders of magnitude slower per edit distance, so the default
scale trades absolute size for preserved *shape* (see DESIGN.md §3.3).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.ctree import CTree
from repro.baselines.distmatrix import DistanceMatrixOracle
from repro.baselines.mtree import MTree
from repro.datasets import load as load_dataset
from repro.ged.star import StarDistance
from repro.graphs import quartile_relevance
from repro.index import NBIndex

#: Per-scale default database sizes for the three datasets.
SCALES = {
    "small": {"dud": 300, "dblp": 160, "amazon": 220, "sweep": (100, 200, 300)},
    "medium": {"dud": 800, "dblp": 400, "amazon": 500, "sweep": (200, 400, 800)},
    "large": {"dud": 2000, "dblp": 1000, "amazon": 1200, "sweep": (500, 1000, 2000)},
}

#: Directory where experiment tables are written.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"


def bench_scale() -> str:
    """Active scale name (``REPRO_BENCH_SCALE``, default ``small``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return scale


def dataset_size(name: str) -> int:
    return SCALES[bench_scale()][name]


def sweep_sizes() -> tuple[int, ...]:
    return SCALES[bench_scale()]["sweep"]


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    name: str
    columns: list[str]
    rows: list[dict]
    notes: str = ""

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]


@dataclass
class BenchContext:
    """A dataset with lazily built engines sharing one star-distance cache.

    The star-profile cache (per-graph preprocessing) is shared across
    engines — it is input parsing, not pair-distance work — while each
    engine manages its own pair-distance accounting.
    """

    name: str
    database: object
    distance: StarDistance
    theta: float
    ladder: object
    seed: int = 7
    num_vantage_points: int = 12
    branching: int = 8
    _nbindex: NBIndex | None = field(default=None, repr=False)
    _ctree: CTree | None = field(default=None, repr=False)
    _mtree: MTree | None = field(default=None, repr=False)
    _matrix: DistanceMatrixOracle | None = field(default=None, repr=False)

    @classmethod
    def create(cls, dataset: str, num_graphs: int | None = None, seed: int = 7,
               **kwargs) -> "BenchContext":
        distance = StarDistance()
        spec = load_dataset(
            dataset, distance,
            num_graphs=num_graphs or dataset_size(dataset), seed=seed,
        )
        return cls(
            name=dataset, database=spec.database, distance=distance,
            theta=spec.theta, ladder=spec.ladder, seed=seed, **kwargs,
        )

    def relevance(self, quantile: float = 0.75, dims=None):
        return quartile_relevance(self.database, dims=dims, quantile=quantile)

    @property
    def nbindex(self) -> NBIndex:
        if self._nbindex is None:
            self._nbindex = NBIndex.build(
                self.database, self.distance,
                num_vantage_points=self.num_vantage_points,
                branching=self.branching, thresholds=self.ladder,
                seed=self.seed,
            )
        return self._nbindex

    @property
    def ctree(self) -> CTree:
        if self._ctree is None:
            self._ctree = CTree(
                self.database.graphs, self.distance, capacity=16, seed=self.seed
            )
        return self._ctree

    @property
    def mtree(self) -> MTree:
        if self._mtree is None:
            self._mtree = MTree(
                self.database.graphs, self.distance, capacity=16, seed=self.seed
            )
        return self._mtree

    @property
    def matrix(self) -> DistanceMatrixOracle:
        if self._matrix is None:
            self._matrix = DistanceMatrixOracle(self.database, self.distance)
        return self._matrix


def timed_call(fn, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` once; return (result, wall seconds)."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def write_result(result: ExperimentResult, formatted: str) -> Path:
    """Persist a formatted experiment table under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.name}.txt"
    path.write_text(formatted)
    return path

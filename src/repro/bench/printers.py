"""Plain-text table rendering for experiment results.

The paper reports tables and figure series; the harness renders both as
aligned monospace tables, printed to stdout and persisted under
``results/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an ExperimentResult as an aligned text table."""
    columns = result.columns
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c)) for c in columns] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = [f"== {result.name} =="]
    if result.notes:
        lines.append(result.notes)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


#: Chart specs per experiment-name prefix: (x, ys, log_y).  Applied
#: automatically by :func:`print_and_save` when the columns are present —
#: the results/ artifact then carries a figure-like view of the series.
CHART_SPECS: dict[str, tuple[str, list[str], bool]] = {
    "fig2a_disc_growth": ("relevant", ["answer_size"], False),
    "fig2b_baseline_scaling": (
        "size", ["plain_greedy_s", "ctree_greedy_s", "mtree_greedy_s"], True),
    "fig5fh_fpr": ("theta", ["observed_fpr", "fpr_upper_bound"], True),
    "fig5ik_time_vs_theta": (
        "theta", ["nbindex_s", "ctree_greedy_s", "disc_s", "div_s"], True),
    "fig5l6a_threshold_gap": ("indexed_theta_gap", ["query_s"], False),
    "fig6bd_time_vs_size": (
        "size", ["nbindex_s", "ctree_greedy_s", "disc_s", "div_s"], True),
    "fig6eg_time_vs_k": (
        "k", ["nbindex_s", "ctree_greedy_s", "disc_s", "div_s"], True),
    "fig6h_time_vs_dims": ("dims", ["nbindex_s", "ctree_greedy_s"], True),
    "fig6j_zoom_scaling": (
        "size", ["nb_refine_avg_s", "ctree_recompute_avg_s"], True),
    "fig6k_index_build": ("size", ["nb_build_s", "matrix_build_s"], True),
    "fig6l_index_memory": ("size", ["nb_index_bytes", "matrix_bytes"], True),
    "ablation_vp_count": ("num_vps", ["observed_fpr"], True),
}


def chart_for(result: ExperimentResult) -> str | None:
    """The ASCII chart registered for this experiment, if any."""
    from repro.bench.ascii_plot import ascii_chart

    for prefix, (x, ys, log_y) in CHART_SPECS.items():
        if result.name.startswith(prefix):
            usable = [y for y in ys if any(r.get(y) is not None
                                           for r in result.rows)]
            if not usable:
                return None
            try:
                return ascii_chart(result, x, usable, log_y=log_y,
                                   title=f"[{result.name}]")
            except ValueError:
                return None
    return None


def print_and_save(result: ExperimentResult) -> str:
    """Format (table + optional chart), print, persist under results/.

    When observability is on (``REPRO_OBS=1`` or an active
    ``repro.observe()``), a ``results/<name>.metrics.json`` sidecar with
    the run's counters/timers/spans is written next to the table.
    """
    from repro import obs
    from repro.bench.harness import write_result

    formatted = format_table(result)
    chart = chart_for(result)
    if chart:
        formatted = formatted + "\n" + chart
    print(formatted)
    path = write_result(result, formatted)
    if obs.enabled():
        sidecar = path.with_name(f"{result.name}.metrics.json")
        obs.write_metrics(sidecar)
        print(f"[obs] wrote {sidecar}")
    return formatted

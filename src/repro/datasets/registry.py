"""Dataset registry: named access plus per-dataset θ calibration.

The paper calibrates θ per dataset from the cumulative distance
distribution (Figs. 5(a–b)): "realistic yet posing a significant
scalability challenge" — a low quantile of the pairwise distances, where
neighborhoods are non-trivial but far from all-encompassing.
:func:`calibrate_theta` reproduces that procedure; :func:`load` bundles a
generated database with its calibrated θ and π̂ ladder so every benchmark
configures datasets identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.amazon import amazon_like
from repro.datasets.callgraphs import callgraphs_like
from repro.datasets.cascades import cascades_like
from repro.datasets.dblp import dblp_like
from repro.datasets.dud import dud_like
from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.index.pivec import ThresholdLadder
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

GENERATORS = {
    "dud": dud_like,
    "dblp": dblp_like,
    "amazon": amazon_like,
    "cascades": cascades_like,
    "callgraphs": callgraphs_like,
}


def calibrate_theta(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    quantile: float = 0.05,
    num_pairs: int = 1500,
    rng=None,
) -> float:
    """θ at the given quantile of sampled pairwise distances.

    The paper's procedure: inspect the distance CDF and pick a θ where a
    meaningful minority of pairs are neighbors (θ=10 sits low on the
    DUD/DBLP CDFs, θ=75 on Amazon's stretched one).
    """
    require(0.0 < quantile < 1.0, f"quantile must be in (0, 1), got {quantile}")
    rng = ensure_rng(rng)
    n = len(database)
    require(n >= 2, "need at least two graphs")
    samples = np.empty(num_pairs)
    for t in range(num_pairs):
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        while j == i:
            j = int(rng.integers(n))
        samples[t] = distance(database[i], database[j])
    return float(np.quantile(samples, quantile))


def ladder_for(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    count: int = 10,
    rng=None,
) -> ThresholdLadder:
    """Slope-proportional π̂ ladder, as in Sec. 8.2.2 item 1."""
    from repro.index.pivec import choose_thresholds

    return choose_thresholds(
        database.graphs, distance, count=count,
        num_pairs=min(1000, len(database) * 4), rng=rng,
    )


@dataclass
class DatasetSpec:
    """A dataset instance with its calibrated query parameters."""

    name: str
    database: GraphDatabase
    theta: float
    ladder: ThresholdLadder

    def summary(self) -> dict:
        info = self.database.summary()
        info["name"] = self.name
        info["theta"] = self.theta
        return info


def load(
    name: str,
    distance: GraphDistanceFn,
    num_graphs: int = 500,
    seed: int = 7,
    theta_quantile: float = 0.05,
    **generator_kwargs,
) -> DatasetSpec:
    """Generate a named dataset and calibrate its θ and ladder."""
    require(name in GENERATORS, f"unknown dataset {name!r}; one of {sorted(GENERATORS)}")
    database = GENERATORS[name](num_graphs=num_graphs, seed=seed, **generator_kwargs)
    rng = ensure_rng(seed + 1)
    theta = calibrate_theta(database, distance, quantile=theta_quantile, rng=rng)
    ladder = ladder_for(database, distance, rng=rng)
    return DatasetSpec(name=name, database=database, theta=theta, ladder=ladder)

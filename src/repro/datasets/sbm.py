"""Stochastic block model and neighborhood extraction — the shared
substrate for the DBLP- and Amazon-analog datasets.

Both SNAP datasets in the paper are large networks with ground-truth
communities (DBLP authors, Amazon product categories); the paper's graph
databases are the *2-hop neighborhood subgraphs* around nodes, with node
labels replaced by the community/category.  We rebuild the pipeline:
generate a community-structured network from a block model, then extract
capped 2-hop ego networks.

The block model sampler is written from scratch (no networkx generator):
for each block pair, the number of edges is drawn binomially and the edges
are placed uniformly — O(expected edges), not O(n²).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import LabeledGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


class CommunityNetwork:
    """A sampled block-model network with community memberships."""

    def __init__(self, num_nodes: int, community: np.ndarray, adjacency: list[set[int]]):
        self.num_nodes = num_nodes
        self.community = community
        self.adjacency = adjacency

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    @property
    def num_edges(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency) // 2


def sample_block_model(
    community_sizes,
    p_intra: float,
    p_inter: float,
    rng=None,
) -> CommunityNetwork:
    """Sample an undirected SBM with the given community sizes.

    Edge probability is ``p_intra`` within a community and ``p_inter``
    across.  Sampling draws the edge *count* per block pair binomially and
    places that many distinct edges uniformly, so cost scales with the
    expected number of edges.
    """
    require(0.0 <= p_inter <= p_intra <= 1.0, "need 0 <= p_inter <= p_intra <= 1")
    rng = ensure_rng(rng)
    sizes = [int(s) for s in community_sizes]
    require(all(s >= 1 for s in sizes), "community sizes must be positive")
    offsets = np.cumsum([0] + sizes)
    num_nodes = int(offsets[-1])
    community = np.empty(num_nodes, dtype=int)
    for block, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
        community[start:stop] = block

    adjacency: list[set[int]] = [set() for _ in range(num_nodes)]

    def add_block_edges(start_a, stop_a, start_b, stop_b, probability, same):
        size_a = stop_a - start_a
        size_b = stop_b - start_b
        possible = size_a * (size_a - 1) // 2 if same else size_a * size_b
        if possible == 0 or probability <= 0.0:
            return
        count = int(rng.binomial(possible, probability))
        placed = 0
        attempts = 0
        while placed < count and attempts < 20 * count + 50:
            attempts += 1
            u = int(rng.integers(start_a, stop_a))
            v = int(rng.integers(start_b, stop_b))
            if u == v or v in adjacency[u]:
                continue
            adjacency[u].add(v)
            adjacency[v].add(u)
            placed += 1

    num_blocks = len(sizes)
    for a in range(num_blocks):
        add_block_edges(offsets[a], offsets[a + 1], offsets[a], offsets[a + 1],
                        p_intra, same=True)
        for b in range(a + 1, num_blocks):
            add_block_edges(offsets[a], offsets[a + 1], offsets[b], offsets[b + 1],
                            p_inter, same=False)
    return CommunityNetwork(num_nodes, community, adjacency)


def extract_two_hop(
    network: CommunityNetwork,
    center: int,
    max_nodes: int,
    label_prefix: str,
    rng=None,
) -> LabeledGraph:
    """The 2-hop ego network around ``center``, labelled by community.

    When the 2-hop ball exceeds ``max_nodes``, 1-hop neighbors are all kept
    and 2-hop nodes are uniformly subsampled — keeping extraction bounded
    the way any practical pipeline over SNAP-scale data must.
    """
    rng = ensure_rng(rng)
    one_hop = sorted(network.adjacency[center])
    two_hop: set[int] = set()
    for neighbor in one_hop:
        two_hop.update(network.adjacency[neighbor])
    two_hop -= set(one_hop)
    two_hop.discard(center)

    kept = [center] + one_hop
    budget = max_nodes - len(kept)
    two_hop_sorted = sorted(two_hop)
    if budget > 0 and two_hop_sorted:
        if len(two_hop_sorted) > budget:
            chosen = rng.choice(len(two_hop_sorted), size=budget, replace=False)
            kept.extend(two_hop_sorted[int(i)] for i in sorted(chosen))
        else:
            kept.extend(two_hop_sorted)

    index = {node: i for i, node in enumerate(kept)}
    labels = [f"{label_prefix}{network.community[node]}" for node in kept]
    edges = []
    for node in kept:
        for neighbor in network.adjacency[node]:
            if neighbor in index and node < neighbor:
                edges.append((index[node], index[neighbor]))
    return LabeledGraph(labels, edges)

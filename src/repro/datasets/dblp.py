"""Synthetic DBLP-like collaboration dataset.

Paper pipeline (Sec. 8.1): in the SNAP DBLP co-authorship network, node
labels are replaced by the author's community, the complete 2-hop
neighborhood around each node becomes a database graph (avg 55 nodes / 263
edges — dense), and a 1-dimensional feature vector records the group's
combined activity level.  The evaluation asks whether the most active
collaboration groups stay within one community or span several.

This generator rebuilds that pipeline over a from-scratch stochastic block
model: moderately sized communities with strong intra-community density
yield dense, community-dominated ego networks whose pairwise distances are
tightly distributed (paper Fig. 5(d)) — the geometry the θ=10 setting is
calibrated against.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sbm import extract_two_hop, sample_block_model
from repro.graphs.database import GraphDatabase
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


def dblp_like(
    num_graphs: int = 500,
    num_communities: int = 10,
    community_size: int = 45,
    p_intra: float = 0.25,
    p_inter: float = 0.002,
    max_nodes: int = 55,
    seed=None,
) -> GraphDatabase:
    """Generate a DBLP-analog database of 2-hop collaboration neighborhoods.

    The 1-D feature is the group's activity level: its collaboration-edge
    count scaled by a per-center productivity factor plus noise, so dense
    central groups score high — mirroring "combined activity level of each
    collaboration group".
    """
    require(num_graphs >= 1, "num_graphs must be >= 1")
    rng = ensure_rng(seed)
    network = sample_block_model(
        [community_size] * num_communities, p_intra, p_inter, rng
    )
    eligible = [
        node for node in range(network.num_nodes) if network.degree(node) >= 2
    ]
    require(len(eligible) > 0, "network too sparse; raise p_intra")

    graphs = []
    activity = np.empty(num_graphs)
    for i in range(num_graphs):
        center = int(eligible[int(rng.integers(len(eligible)))])
        graph = extract_two_hop(network, center, max_nodes, "c", rng)
        graphs.append(graph)
        productivity = 0.7 + 0.6 * rng.random()
        activity[i] = graph.num_edges * productivity + rng.normal(0.0, 2.0)
    return GraphDatabase(graphs, activity.reshape(-1, 1))

"""Synthetic information-cascade dataset — Table 1, Example 2.

The paper's second motivating application: a database of information
cascade structures, each tagged with the set of topics it covers; the
query function is Jaccard similarity against a user-provided topic set.
A traditional top-k query "is prone to identifying cascades from a single
community of highly active users … cascades arising out of populous
countries are likely to eclipse remaining communities", which the
representative model corrects.

The generator reproduces that imbalance:

* communities ("countries") have Zipf-distributed sizes, and cascades
  originate from a community with probability proportional to its size —
  so the biggest community floods the database;
* a cascade is a propagation tree whose nodes are labelled with their
  community (mostly the origin's, with occasional cross-community spread);
  bigger communities also produce bigger cascades ("highly active users");
* each community has preferred topics; a cascade's binary topic vector
  follows its origin's preferences — so a topic query matches cascades
  from several communities, but the populous ones dominate any
  score-ranked list.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import LabeledGraph
from repro.graphs.relevance import JaccardTopicQuery
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

NUM_TOPICS = 12


def _grow_cascade(
    origin_community: int,
    num_communities: int,
    size: int,
    cross_probability: float,
    rng,
) -> LabeledGraph:
    """A propagation tree: each new node attaches to a random earlier one."""
    communities = [origin_community]
    edges = []
    for node in range(1, size):
        parent = int(rng.integers(node))
        edges.append((parent, node))
        if rng.random() < cross_probability:
            community = int(rng.integers(num_communities))
        else:
            community = communities[parent]
        communities.append(community)
    labels = [f"u{c}" for c in communities]
    return LabeledGraph(labels, edges)


def cascades_like(
    num_graphs: int = 500,
    num_communities: int = 8,
    cross_probability: float = 0.12,
    seed=None,
) -> GraphDatabase:
    """Generate a cascade database with binary topic feature vectors."""
    require(num_graphs >= 1, "num_graphs must be >= 1")
    require(num_communities >= 2, "need at least two communities")
    rng = ensure_rng(seed)

    # Zipf community weights: community 0 is the "populous country".
    weights = 1.0 / np.arange(1, num_communities + 1) ** 1.2
    weights /= weights.sum()

    # Per-community topic preferences: 3 favoured topics each, overlapping.
    preferences = np.zeros((num_communities, NUM_TOPICS))
    for community in range(num_communities):
        favoured = (community * 2 + np.arange(3)) % NUM_TOPICS
        preferences[community, favoured] = 0.75
    preferences += 0.05

    graphs: list[LabeledGraph] = []
    topics = np.zeros((num_graphs, NUM_TOPICS))
    for i in range(num_graphs):
        origin = int(rng.choice(num_communities, p=weights))
        # Populous communities host bigger cascades.
        base_size = 6 + int(24 * weights[origin] / weights[0])
        size = max(3, base_size + int(rng.integers(-3, 4)))
        graphs.append(
            _grow_cascade(origin, num_communities, size, cross_probability, rng)
        )
        topics[i] = (rng.random(NUM_TOPICS) < preferences[origin]).astype(float)
        if not topics[i].any():
            topics[i, int(rng.integers(NUM_TOPICS))] = 1.0
    return GraphDatabase(graphs, topics)


def topic_query(topics, threshold: float = 0.25) -> JaccardTopicQuery:
    """The paper's Example-2 query: Jaccard(topics(g), T) ≥ threshold."""
    return JaccardTopicQuery(topics, NUM_TOPICS, threshold)


def origin_community(graph: LabeledGraph) -> str:
    """The community label of a cascade's root node (node 0)."""
    return graph.node_label(0)

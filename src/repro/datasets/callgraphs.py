"""Synthetic function-call-graph dataset — Table 1, Example 3.

The paper's bug-analysis application: database graphs are function call
graphs from crash reports, feature vectors are occurrence frequencies over
``m`` days, and the query scores ``q(g⃗) = wᵀg⃗`` (e.g. recency-weighted
frequency).  A traditional top-k "is likely to identify function call
graphs that share the same core bug-inducing subgraph"; the representative
query "identif[ies] the entire spectrum of subgraphs that induce bugs".

The generator reproduces that structure:

* a fixed library of *bug cores* — small characteristic call patterns
  (each a distinct subgraph over distinct function names);
* every crash graph embeds exactly one bug core, surrounded by randomized
  benign scaffolding (wrapper/util calls), so graphs sharing a core are
  structurally close and graphs with different cores are far apart;
* bug frequency over the ``m`` days is driven by the core: one "hot" bug
  dominates recent days — so recency-weighted top-k returns clones of the
  hot bug's call graph while REP surfaces one exemplar per bug.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import LabeledGraph
from repro.graphs.relevance import WeightedScoreThreshold
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

NUM_DAYS = 7

#: Bug cores: (name, function labels, call edges) — hand-built distinct
#: call patterns, each the "core bug-inducing subgraph" of one bug class.
BUG_CORES = (
    ("null_deref", ["main", "parse", "lookup", "deref"],
     [(0, 1), (1, 2), (2, 3)]),
    ("double_free", ["main", "alloc", "free", "cleanup", "free2"],
     [(0, 1), (1, 2), (0, 3), (3, 4), (2, 4)]),
    ("race", ["main", "spawn", "lock", "worker", "unlock"],
     [(0, 1), (1, 3), (3, 2), (3, 4)]),
    ("overflow", ["main", "read", "copy", "buffer"],
     [(0, 1), (1, 2), (2, 3), (1, 3)]),
    ("leak", ["main", "open", "handler", "retain", "grow"],
     [(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]),
    ("stack_smash", ["main", "recurse", "format", "write"],
     [(0, 1), (1, 2), (2, 3), (0, 3)]),
)

_UTIL_FUNCTIONS = ("log", "assert", "metrics", "config", "io", "str", "mem")


def _make_crash_graph(bug_index: int, rng) -> LabeledGraph:
    """One crash's call graph: the bug core plus benign scaffolding."""
    _, core_labels, core_edges = BUG_CORES[bug_index % len(BUG_CORES)]
    labels = list(core_labels)
    edges = [(u, v, "call") for u, v in core_edges]
    # Benign wrappers: util functions hanging off random core functions —
    # few enough that the bug core dominates the structure.
    num_wrappers = int(rng.integers(2, 6))
    for _ in range(num_wrappers):
        anchor = int(rng.integers(len(core_labels)))
        util = _UTIL_FUNCTIONS[int(rng.integers(len(_UTIL_FUNCTIONS)))]
        new_index = len(labels)
        labels.append(util)
        edges.append((anchor, new_index, "call"))
        if rng.random() < 0.3 and new_index > len(core_labels):
            other = len(core_labels) + int(
                rng.integers(new_index - len(core_labels))
            )
            pair = (min(new_index, other), max(new_index, other))
            if other != new_index and (pair[0], pair[1], "call") not in edges:
                edges.append((pair[0], pair[1], "call"))
    return LabeledGraph(labels, edges)


def callgraphs_like(
    num_graphs: int = 400,
    hot_bug: int = 0,
    hot_share: float = 0.2,
    seed=None,
) -> GraphDatabase:
    """Generate a crash-report database with per-day frequency features.

    ``hot_bug`` dominates recent days; ``hot_share`` keeps its crash count
    *below* the relevant quartile so the hot crashes fill the very top of
    the ranking while every other class still reaches the quartile — the
    configuration the paper's Example-3 story assumes.
    """
    require(num_graphs >= 1, "num_graphs must be >= 1")
    require(0.0 < hot_share < 1.0, "hot_share must be in (0, 1)")
    rng = ensure_rng(seed)
    num_bugs = len(BUG_CORES)

    # Per-bug day profiles: the hot bug ramps hardest and toward the most
    # recent days, the others ramp moderately over earlier windows.  Hot
    # crashes therefore occupy the very top of the recency-weighted ranking
    # (traditional top-k returns its clones), while the hot class is small
    # enough that the relevant quartile still includes every other class —
    # the spectrum a representative query should surface.  The mild
    # per-crash intensity adds realistic within-class score spread.
    ramps = np.zeros((num_bugs, NUM_DAYS))
    for bug in range(num_bugs):
        if bug == hot_bug:
            ramps[bug] = np.linspace(0, 8, NUM_DAYS)
        else:
            start = int(rng.integers(NUM_DAYS - 3))
            ramps[bug, start:start + 3] = 4.0

    graphs: list[LabeledGraph] = []
    frequencies = np.zeros((num_graphs, NUM_DAYS))
    for i in range(num_graphs):
        if rng.random() < hot_share:
            bug = hot_bug
        else:
            bug = 1 + int(rng.integers(num_bugs - 1))
            bug = (hot_bug + bug) % num_bugs
        graphs.append(_make_crash_graph(bug, rng))
        intensity = float(rng.lognormal(0.0, 0.25))
        frequencies[i] = intensity * (
            rng.poisson(2, NUM_DAYS).astype(float) + ramps[bug]
        )
    return GraphDatabase(graphs, np.clip(frequencies, 0.0, None))


def recency_query(threshold_quantile: float = 0.75, database=None):
    """The Example-3 query: recency-weighted frequency ``wᵀ·g⃗``.

    Weights grow linearly toward the most recent day.  When ``database``
    is given, the threshold is calibrated so the top
    ``1 − threshold_quantile`` fraction is relevant.
    """
    weights = np.linspace(0.2, 1.0, NUM_DAYS)
    if database is None:
        return WeightedScoreThreshold(weights, threshold=0.0)
    scores = database.features @ weights
    threshold = float(np.quantile(scores, threshold_quantile))
    return WeightedScoreThreshold(weights, threshold=threshold)


def bug_class(graph: LabeledGraph) -> str:
    """Recover which bug core a crash graph embeds (by core signature)."""
    labels = set(graph.node_labels)
    best_name, best_overlap = "unknown", 0
    for name, core_labels, _ in BUG_CORES:
        overlap = len(labels & set(core_labels))
        if overlap > best_overlap:
            best_name, best_overlap = name, overlap
    return best_name

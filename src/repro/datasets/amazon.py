"""Synthetic Amazon-like co-purchase dataset.

Paper pipeline (Sec. 8.1): in the SNAP Amazon co-purchase network, node
labels become the item category, 2-hop neighborhoods around items form the
database graphs (avg 29 nodes / 189 edges), and a 1-D popularity feature
characterizes each co-purchase graph.  The evaluation probes cross-category
coupling among popular items.

The distinguishing geometry of Amazon in the paper is that inter-graph
distances are *much larger and more spread out* than in DUD/DBLP (Fig.
5(b)/(e)) — the paper consequently sets θ=75 there versus 10 elsewhere.
We reproduce that by making ego networks strongly heterogeneous: item
popularity follows a heavy-tailed hub structure (a fraction of items get
many extra co-purchase links), so 2-hop neighborhoods range from tiny star
shops to large category-spanning hubs, stretching the distance spectrum.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sbm import extract_two_hop, sample_block_model
from repro.graphs.database import GraphDatabase
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


def amazon_like(
    num_graphs: int = 500,
    num_categories: int = 15,
    category_size: int = 40,
    p_intra: float = 0.05,
    p_inter: float = 0.002,
    hub_fraction: float = 0.02,
    hub_links: int = 20,
    max_nodes: int = 80,
    seed=None,
) -> GraphDatabase:
    """Generate an Amazon-analog database of 2-hop co-purchase neighborhoods.

    ``hub_fraction`` of items become cross-category hubs with ``hub_links``
    extra uniformly random links — the heavy tail that both spreads the
    distance distribution and creates the cross-category coupling the
    original analysis looks for.  The 1-D feature is the item's popularity:
    its degree plus noise.
    """
    require(num_graphs >= 1, "num_graphs must be >= 1")
    rng = ensure_rng(seed)
    network = sample_block_model(
        [category_size] * num_categories, p_intra, p_inter, rng
    )
    # Promote hubs with extra cross-category links.
    num_nodes = network.num_nodes
    num_hubs = max(1, int(hub_fraction * num_nodes))
    hubs = rng.choice(num_nodes, size=num_hubs, replace=False)
    for hub in hubs:
        hub = int(hub)
        for _ in range(hub_links):
            other = int(rng.integers(num_nodes))
            if other != hub:
                network.adjacency[hub].add(other)
                network.adjacency[other].add(hub)

    eligible = [
        node for node in range(num_nodes) if network.degree(node) >= 2
    ]
    require(len(eligible) > 0, "network too sparse; raise p_intra")

    graphs = []
    popularity = np.empty(num_graphs)
    for i in range(num_graphs):
        center = int(eligible[int(rng.integers(len(eligible)))])
        graph = extract_two_hop(network, center, max_nodes, "cat", rng)
        graphs.append(graph)
        popularity[i] = network.degree(center) + rng.normal(0.0, 1.0)
    return GraphDatabase(graphs, popularity.reshape(-1, 1))

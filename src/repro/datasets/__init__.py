"""Deterministic synthetic analogs of the paper's datasets (DESIGN.md §3)."""

from repro.datasets.dud import dud_like
from repro.datasets.dblp import dblp_like
from repro.datasets.amazon import amazon_like
from repro.datasets.callgraphs import bug_class, callgraphs_like, recency_query
from repro.datasets.cascades import cascades_like, origin_community, topic_query
from repro.datasets.sbm import CommunityNetwork, extract_two_hop, sample_block_model
from repro.datasets.registry import (
    GENERATORS,
    DatasetSpec,
    calibrate_theta,
    ladder_for,
    load,
)

__all__ = [
    "dud_like",
    "dblp_like",
    "amazon_like",
    "cascades_like",
    "callgraphs_like",
    "recency_query",
    "bug_class",
    "topic_query",
    "origin_community",
    "sample_block_model",
    "extract_two_hop",
    "CommunityNetwork",
    "GENERATORS",
    "DatasetSpec",
    "calibrate_theta",
    "ladder_for",
    "load",
]

"""Synthetic DUD-like molecular dataset.

The paper's primary dataset is DUD (dud.docking.org): 128,332 molecules,
each tagged with a 10-dimensional binding-affinity vector against 10
protein targets; average 26 atoms / 28 bonds.  DUD is not redistributable
here, so this generator reproduces the statistics the REP/NB-Index
algorithms are actually sensitive to (see DESIGN.md §3):

* **Clustered structure space** — molecules come in scaffold families
  (ring systems with varying substituents), so edit distances are small
  within a family and large across families; the global distance
  distribution is tight and unimodal (paper Fig. 5(c): low σ, which drives
  DUD's comparatively high vantage FPR).
* **Feature/structure correlation** — each scaffold family has a
  characteristic 10-dimensional affinity profile; a molecule's feature
  vector is its family profile plus noise.  Relevance defined on features
  therefore selects structurally coherent groups, as in real DUD.
* **Relevant outliers** — a small fraction of molecules are structural
  one-offs with high affinity, the objects that dilute DisC's compression
  ratio in the paper's Fig. 2(a) argument.

Graphs use atom symbols as node labels and bond orders (``-``/``=``) as
edge labels; sizes target the 15–35 atom range around DUD's mean of 26.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import LabeledGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

NUM_TARGETS = 10

#: Substituents attachable to scaffold carbons: halogens, small groups.
_SUBSTITUENTS = ("F", "Cl", "Br", "I", "O", "N", "C", "S")


def _ring(labels, bond="-"):
    """Labels + edges of a simple ring."""
    n = len(labels)
    edges = [(i, (i + 1) % n, bond) for i in range(n)]
    return list(labels), edges


def _fused_rings():
    """A naphthalene-like fused pair of 6-rings (10 atoms)."""
    labels = ["C"] * 10
    edges = [
        (0, 1, "-"), (1, 2, "="), (2, 3, "-"), (3, 4, "="), (4, 5, "-"),
        (5, 0, "="),
        (4, 6, "-"), (6, 7, "="), (7, 8, "-"), (8, 9, "="), (9, 5, "-"),
    ]
    return labels, edges


#: Scaffold templates: (name, builder) — each returns (labels, edges).
SCAFFOLDS = (
    ("benzene", lambda: _ring(["C"] * 6, "=")),
    ("pyridine", lambda: _ring(["C", "C", "C", "C", "C", "N"], "=")),
    ("pyrimidine", lambda: _ring(["C", "N", "C", "N", "C", "C"], "=")),
    ("furan", lambda: _ring(["C", "C", "C", "C", "O"], "-")),
    ("thiophene", lambda: _ring(["C", "C", "C", "C", "S"], "-")),
    ("pyrrole", lambda: _ring(["C", "C", "C", "C", "N"], "-")),
    ("cyclohexane", lambda: _ring(["C"] * 6, "-")),
    ("naphthalene", _fused_rings),
    ("piperazine", lambda: _ring(["C", "C", "N", "C", "C", "N"], "-")),
    ("oxazole", lambda: _ring(["C", "O", "C", "N", "C"], "-")),
)


def _attach_chain(labels, edges, anchor, length, symbol="C"):
    """Grow a short aliphatic chain from ``anchor``; returns last atom."""
    current = anchor
    for _ in range(length):
        new_index = len(labels)
        labels.append(symbol)
        edges.append((current, new_index, "-"))
        current = new_index
    return current


def _make_molecule(family: int, rng, extra_decoration: float = 1.0) -> LabeledGraph:
    """One molecule of the given scaffold family.

    The molecule is the family scaffold, a second (family-determined)
    auxiliary ring linked by a chain, and randomized substituents — so
    family members share a large common core but differ in decoration.
    """
    name, builder = SCAFFOLDS[family % len(SCAFFOLDS)]
    labels, edges = builder()
    # Auxiliary ring and linker: deterministic per family, so every family
    # member shares a large identical core and within-family distances stay
    # well below cross-family ones.
    aux_family = (family * 7 + 3) % len(SCAFFOLDS)
    aux_labels, aux_edges = SCAFFOLDS[aux_family][1]()
    offset = len(labels)
    linker_length = 1 + family % 3
    labels.extend(aux_labels)
    edges.extend((u + offset, v + offset, b) for u, v, b in aux_edges)
    linker_end = _attach_chain(labels, edges, 0, linker_length)
    edges.append((linker_end, offset, "-"))
    core_size = len(labels)

    # Deterministic family side-chain (more shared core mass).
    _attach_chain(labels, edges, offset + 1, 2 + family % 2)

    # Random substituents on core atoms — the chlorine-vs-bromine variation
    # of the paper's Fig. 1(a): small decorations that keep family members
    # within a tight edit-distance ball of each other.
    num_substituents = max(1, int(rng.integers(2, int(3 * extra_decoration) + 2)))
    for _ in range(num_substituents):
        anchor = int(rng.integers(core_size))
        symbol = _SUBSTITUENTS[int(rng.integers(len(_SUBSTITUENTS)))]
        new_index = len(labels)
        labels.append(symbol)
        edges.append((anchor, new_index, "-"))
    return LabeledGraph(labels, edges)


def _make_outlier(rng) -> LabeledGraph:
    """A structural one-off: a random tree-ish molecule unlike any family."""
    size = int(rng.integers(12, 30))
    symbols = ("C", "N", "O", "S", "P", "F", "Cl", "B")
    labels = [symbols[int(rng.integers(len(symbols)))] for _ in range(size)]
    edges = []
    for i in range(1, size):
        j = int(rng.integers(i))
        edges.append((i, j, "-" if rng.random() < 0.8 else "="))
    existing = set((min(u, v), max(u, v)) for u, v, _ in edges)
    for _ in range(int(rng.integers(0, 4))):
        u, v = int(rng.integers(size)), int(rng.integers(size))
        if u != v and (min(u, v), max(u, v)) not in existing:
            edges.append((u, v, "-"))
            existing.add((min(u, v), max(u, v)))
    return LabeledGraph(labels, edges)


def dud_like(
    num_graphs: int = 500,
    num_families: int = 10,
    outlier_fraction: float = 0.04,
    feature_noise: float = 0.08,
    seed=None,
) -> GraphDatabase:
    """Generate a DUD-analog database.

    Parameters
    ----------
    num_graphs:
        Database size.
    num_families:
        Number of scaffold families (≤ available scaffolds recommended;
        larger values reuse scaffolds with different auxiliary rings).
    outlier_fraction:
        Fraction of structural one-offs.  Outliers receive *high* affinity
        on a random target so some of them land in the relevant set — the
        relevant-outlier phenomenon of Fig. 1(b)/2(a).
    feature_noise:
        Standard deviation of per-molecule affinity noise around the family
        profile (controls feature/structure correlation strength).
    seed:
        Anything accepted by :func:`repro.utils.rng.ensure_rng`.
    """
    require(num_graphs >= 1, "num_graphs must be >= 1")
    require(num_families >= 1, "num_families must be >= 1")
    require(0.0 <= outlier_fraction < 1.0, "outlier_fraction must be in [0, 1)")
    rng = ensure_rng(seed)

    # Family affinity profiles over the 10 targets: each family binds well
    # to a couple of targets and weakly to the rest.
    profiles = rng.random((num_families, NUM_TARGETS)) * 0.35
    for family in range(num_families):
        strong = rng.choice(NUM_TARGETS, size=2, replace=False)
        profiles[family, strong] += 0.55

    # Zipf-ish family weights: some scaffolds are far more common, as in
    # real libraries.
    weights = 1.0 / np.arange(1, num_families + 1)
    weights /= weights.sum()

    graphs: list[LabeledGraph] = []
    features = np.empty((num_graphs, NUM_TARGETS))
    for i in range(num_graphs):
        if rng.random() < outlier_fraction:
            graphs.append(_make_outlier(rng))
            feature = rng.random(NUM_TARGETS) * 0.3
            feature[int(rng.integers(NUM_TARGETS))] = 0.75 + 0.2 * rng.random()
            features[i] = feature
        else:
            family = int(rng.choice(num_families, p=weights))
            graphs.append(_make_molecule(family, rng))
            features[i] = np.clip(
                profiles[family] + rng.normal(0.0, feature_noise, NUM_TARGETS),
                0.0,
                1.0,
            )
    return GraphDatabase(graphs, features)

"""Result and statistics types shared by every query engine.

The NB-Index, the baseline greedy, and all competing algorithms report
their answers through the same :class:`QueryResult`, so the benchmark
harness and the quality metrics (π(A), compression ratio) treat engines
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Work accounting for one top-k query.

    Engines fill only the fields that apply to them: the NB-Index reports
    tree-search counters (``nodes_popped``, ``pruned_subtrees``, ...), the
    greedy baselines gain-evaluation counters (``gain_evaluations``,
    ``reheap_count``); everything else stays at zero.
    """

    distance_calls: int = 0
    candidate_verifications: int = 0
    candidates_generated: int = 0
    exact_neighborhoods: int = 0
    nodes_popped: int = 0
    leaves_evaluated: int = 0
    pruned_subtrees: int = 0
    batch_decrements: int = 0
    gain_evaluations: int = 0
    reheap_count: int = 0
    init_seconds: float = 0.0
    search_seconds: float = 0.0
    update_seconds: float = 0.0
    #: True when a Deadline budget forced approximate (upper-bound) edit
    #: distances into this query — the answer is valid but not exact.
    degraded: bool = False
    degradation_events: int = 0
    degradations: dict = field(default_factory=dict)
    #: Sharded-query accounting (scatter-gather coordinator only): pull /
    #: resolve / broadcast counts plus the per-shard work split.  Empty for
    #: single-index engines.
    coordinator: dict = field(default_factory=dict)
    #: True when one or more whole replica groups were unavailable and the
    #: answer covers only the surviving shards (replicated serving only).
    partial: bool = False
    #: Shard ids whose replica groups were down for this query.
    unavailable_shards: list = field(default_factory=list)
    #: True when the query ran in the ε-relaxed approximate mode
    #: (``epsilon > 0``): neighborhoods satisfy ``N_{(1−ε)θ} ⊆ N' ⊆ N_θ``
    #: and greedy keeps the (1 − 1/e − ε) guarantee.
    approximate: bool = False
    #: The configured relaxation factor (0.0 for exact queries).
    epsilon: float = 0.0
    #: Per-stage filter-cascade counters (``{stage: {evals, prunes,
    #: accepts, seconds}}``); empty when the implicit default cascade ran.
    cascade: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.search_seconds + self.update_seconds

    def stats(self) -> dict:
        """Statable protocol: every counter/timer as a plain dict."""
        from dataclasses import asdict

        out = asdict(self)
        out["total_seconds"] = self.total_seconds
        return out


@dataclass
class QueryResult:
    """Answer of a top-k representative query.

    ``answer`` holds database graph ids in selection order; ``gains`` the
    exact marginal gain (count of newly covered relevant graphs) of each
    selection; ``covered`` the union of the answer's θ-neighborhoods over
    the relevant set.
    """

    answer: list[int]
    gains: list[int]
    covered: frozenset[int]
    num_relevant: int
    theta: float
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def pi(self) -> float:
        """Representative power π(A) ∈ [0, 1] (Eq. 3)."""
        if self.num_relevant == 0:
            return 0.0
        return len(self.covered) / self.num_relevant

    @property
    def compression_ratio(self) -> float:
        """``|N_θ(A)| / |A|`` — average relevant graphs per exemplar
        (Table 4's CR)."""
        if not self.answer:
            return 0.0
        return len(self.covered) / len(self.answer)

    def __repr__(self) -> str:
        return (
            f"QueryResult(k={len(self.answer)}, pi={self.pi:.3f}, "
            f"CR={self.compression_ratio:.1f}, theta={self.theta:g})"
        )

"""Exhaustive optimal answers for tiny instances.

Top-k representative queries are NP-hard (Theorem 1), so the optimum is
only computable by enumeration.  This module exists for validation: the
test suite checks the greedy engines against the true optimum on small
random instances, confirming the (1 − 1/e) guarantee of Theorem 2 end to
end.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from repro.core.representative import coverage
from repro.utils.validation import require


def optimal_answer(
    neighborhoods: Mapping[int, frozenset[int]],
    relevant: Sequence[int],
    k: int,
    max_candidates: int = 25,
) -> tuple[tuple[int, ...], int]:
    """The coverage-optimal size-≤k subset by exhaustive enumeration.

    Returns ``(subset, covered_count)``.  Guarded by ``max_candidates``
    because the search is ``C(|L_q|, k)`` — raise it knowingly.
    """
    relevant = [int(i) for i in relevant]
    require(
        len(relevant) <= max_candidates,
        f"{len(relevant)} candidates exceed max_candidates={max_candidates}; "
        "exhaustive search would blow up",
    )
    best_subset: tuple[int, ...] = ()
    best_covered = 0
    limit = min(k, len(relevant))
    for subset in itertools.combinations(relevant, limit):
        covered = len(coverage(neighborhoods, subset))
        if covered > best_covered:
            best_covered = covered
            best_subset = subset
    return best_subset, best_covered


def greedy_guarantee_holds(
    greedy_covered: int,
    optimal_covered: int,
) -> bool:
    """``π(A_greedy) ≥ (1 − 1/e) · π(A*)`` (Eq. 7), in covered counts."""
    if optimal_covered == 0:
        return greedy_covered == 0
    return greedy_covered >= (1.0 - 1.0 / 2.718281828459045) * optimal_covered - 1e-9

"""Reference set-based greedy — the pre-bitset coverage hot path.

These are the per-id Python ``set`` implementations of Algorithm 1 that
:mod:`repro.core.greedy` used before the packed-bitset kernel rewrite,
preserved verbatim for two consumers:

* the **dual-run equivalence gate** (``tests/test_hotpath_identity.py``
  and ``repro bench-hotpath``), which runs both implementations on the
  same inputs and asserts bit-identical answers, gains, ordering and
  coverage; and
* the **hot-path benchmark** (``benchmarks/bench_bitset_hotpath.py``),
  which reports the end-to-end speedup of the bitset engines against
  exactly this code.

They are *not* deprecated aliases — they intentionally keep the
O(k · |L_q| · |N̂|) per-element set arithmetic so the comparison stays
honest.  Production callers should use :func:`repro.core.baseline_greedy`
and :func:`repro.core.lazy_greedy`.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.representative import (
    RangeQueryFn,
    all_theta_neighborhoods,
)
from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require_positive


def _maybe_engine(engine, workers, distance, database):
    """Build a :class:`DistanceEngine` when ``workers`` is given without one."""
    if engine is not None or workers is None:
        return engine
    from repro.engine import DistanceEngine

    return DistanceEngine(distance, workers=workers, graphs=database.graphs)


def baseline_greedy_sets(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    *,
    range_query: RangeQueryFn | None = None,
    stop_on_zero_gain: bool = False,
    engine=None,
    workers: int | None = None,
) -> QueryResult:
    """Algorithm 1 with Python-set coverage bookkeeping (reference)."""
    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    engine = _maybe_engine(engine, workers, distance, database)
    counting = engine if engine is not None else CountingDistance(distance)
    calls_before = counting.calls

    with obs.span("greedy.run", kind="baseline-sets", theta=theta, k=k):
        started = time.perf_counter()
        relevant = [int(i) for i in database.relevant_indices(query_fn)]
        neighborhoods = all_theta_neighborhoods(
            database, counting, relevant, theta, range_query=range_query,
            engine=engine,
        )
        stats.init_seconds = time.perf_counter() - started
        stats.exact_neighborhoods = len(neighborhoods)

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        covered: set[int] = set()
        remaining = set(relevant)
        for _ in range(min(k, len(relevant))):
            best = None
            best_gain = -1
            # Iterate in id order so equal gains resolve to the smallest id.
            for gid in sorted(remaining):
                stats.gain_evaluations += 1
                gain = len(neighborhoods[gid] - covered)
                if gain > best_gain:
                    best_gain = gain
                    best = gid
            if best is None:
                break
            if best_gain == 0 and stop_on_zero_gain:
                break
            answer.append(best)
            gains.append(best_gain)
            covered |= neighborhoods[best]
            remaining.discard(best)
        stats.search_seconds = time.perf_counter() - started
        stats.distance_calls = counting.calls - calls_before
        obs.counter("greedy.gain_evaluations", stats.gain_evaluations)
        obs.counter("greedy.runs")

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )


def lazy_greedy_sets(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    *,
    range_query: RangeQueryFn | None = None,
    stop_on_zero_gain: bool = False,
    engine=None,
    workers: int | None = None,
) -> QueryResult:
    """Lazy greedy with Python-set coverage bookkeeping (reference)."""
    import heapq

    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    engine = _maybe_engine(engine, workers, distance, database)
    counting = engine if engine is not None else CountingDistance(distance)
    calls_before = counting.calls

    with obs.span("greedy.run", kind="lazy-sets", theta=theta, k=k):
        started = time.perf_counter()
        relevant = [int(i) for i in database.relevant_indices(query_fn)]
        neighborhoods = all_theta_neighborhoods(
            database, counting, relevant, theta, range_query=range_query,
            engine=engine,
        )
        stats.init_seconds = time.perf_counter() - started

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        covered: set[int] = set()
        # Heap of (-gain, gid, generation); a stale generation triggers
        # re-evaluation.  gid ascending gives smallest-id tie-breaking.
        heap = [(-len(neighborhoods[gid]), gid, 0) for gid in sorted(relevant)]
        heapq.heapify(heap)
        stats.gain_evaluations = len(heap)
        generation = 0
        while heap and len(answer) < min(k, len(relevant)):
            neg_gain, gid, entry_generation = heapq.heappop(heap)
            if entry_generation != generation:
                stats.gain_evaluations += 1
                stats.reheap_count += 1
                fresh = len(neighborhoods[gid] - covered)
                heapq.heappush(heap, (-fresh, gid, generation))
                continue
            gain = -neg_gain
            if gain == 0 and stop_on_zero_gain:
                break
            answer.append(gid)
            gains.append(gain)
            covered |= neighborhoods[gid]
            generation += 1
        stats.search_seconds = time.perf_counter() - started
        stats.distance_calls = counting.calls - calls_before
        obs.counter("greedy.gain_evaluations", stats.gain_evaluations)
        obs.counter("greedy.lazy.reheap", stats.reheap_count)
        obs.counter("greedy.runs")

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )

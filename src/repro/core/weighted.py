"""Weighted representative power — an extension beyond the paper.

The paper's π counts every relevant graph equally.  In practice some
relevant objects matter more (higher-affinity molecules, more active
groups); weighting coverage by a non-negative importance keeps the
objective a *weighted* coverage function:

``π_w(S) = Σ_{g' ∈ ⋃_{g∈S} N(g)} w(g') / Σ_{g' ∈ L_q} w(g')``

which is still monotone submodular — the greedy (1 − 1/e) guarantee of
Theorem 2 carries over verbatim (weighted coverage is a non-negative
linear combination of coverage indicators).  The test suite verifies the
guarantee against weighted brute-force optima.

This module provides the weighted greedy; the unweighted engines are the
special case ``w ≡ 1``.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from repro.core.representative import RangeQueryFn, all_theta_neighborhoods
from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require, require_positive


def weighted_coverage(
    neighborhoods: Mapping[int, frozenset[int]],
    subset,
    weights: Mapping[int, float],
) -> float:
    """Total weight of the relevant graphs covered by ``subset``."""
    covered: set[int] = set()
    for gid in subset:
        covered |= neighborhoods[int(gid)]
    return float(sum(weights[g] for g in covered))


def weighted_greedy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    weights: Sequence[float] | Mapping[int, float] | None = None,
    range_query: RangeQueryFn | None = None,
) -> QueryResult:
    """Greedy maximization of weighted representative power.

    Parameters
    ----------
    weights:
        Non-negative importance per *database id* — a full-length sequence
        or an id → weight mapping (missing ids default to 1).  ``None``
        reduces to the unweighted Algorithm 1.

    Returns a :class:`QueryResult` whose ``gains`` hold the *weighted*
    marginal gains (floats); ``covered``/``pi`` keep their unweighted set
    semantics for comparability across engines.  The weighted objective
    value of the answer is ``weighted_coverage(neighborhoods, answer,
    weights)`` — or simply ``sum(result.gains)``.
    """
    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    counting = CountingDistance(distance)

    started = time.perf_counter()
    relevant = [int(i) for i in database.relevant_indices(query_fn)]
    weight_of = _normalize_weights(weights, relevant, len(database))
    neighborhoods = all_theta_neighborhoods(
        database, counting, relevant, theta, range_query=range_query
    )
    stats.init_seconds = time.perf_counter() - started

    started = time.perf_counter()
    answer: list[int] = []
    gains: list[float] = []
    covered: set[int] = set()
    remaining = set(relevant)
    for _ in range(min(k, len(relevant))):
        best = None
        best_gain = -1.0
        for gid in sorted(remaining):
            gain = sum(weight_of[g] for g in neighborhoods[gid] - covered)
            if gain > best_gain:
                best_gain = gain
                best = gid
        if best is None:
            break
        answer.append(best)
        gains.append(float(best_gain))
        covered |= neighborhoods[best]
        remaining.discard(best)
    stats.search_seconds = time.perf_counter() - started
    stats.distance_calls = counting.calls

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )


def weighted_optimal(
    neighborhoods: Mapping[int, frozenset[int]],
    relevant: Sequence[int],
    weights: Mapping[int, float],
    k: int,
    max_candidates: int = 20,
) -> tuple[tuple[int, ...], float]:
    """Exhaustive weighted-coverage optimum for tiny instances (tests)."""
    import itertools

    relevant = [int(i) for i in relevant]
    require(
        len(relevant) <= max_candidates,
        f"{len(relevant)} candidates exceed max_candidates={max_candidates}",
    )
    best_subset: tuple[int, ...] = ()
    best_value = 0.0
    for subset in itertools.combinations(relevant, min(k, len(relevant))):
        value = weighted_coverage(neighborhoods, subset, weights)
        if value > best_value:
            best_value = value
            best_subset = subset
    return best_subset, best_value


def _normalize_weights(weights, relevant, database_size) -> dict[int, float]:
    if weights is None:
        return {gid: 1.0 for gid in relevant}
    if isinstance(weights, Mapping):
        table = {gid: float(weights.get(gid, 1.0)) for gid in relevant}
    else:
        weights = np.asarray(weights, dtype=float)
        require(
            weights.shape == (database_size,),
            f"weights must have length {database_size}, got {weights.shape}",
        )
        table = {gid: float(weights[gid]) for gid in relevant}
    for gid, value in table.items():
        require(value >= 0.0, f"weight of graph {gid} is negative ({value})")
    return table

"""Interactive θ refinement — the paper's "zoom level" workflow (Sec. 7).

Domain scientists rarely know the right θ up front; they home in on it by
re-running the query at nearby thresholds, like adjusting the zoom level of
a map.  The NB-Index was designed so refinements reuse the initialization
phase; :class:`RefinementSession` packages that pattern: it keeps the
underlying :class:`~repro.index.nbindex.QuerySession` alive, records the
trajectory of (θ, result) pairs, and offers relative zoom steps (the ±10%
moves benchmarked in Fig. 6(i)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import QueryResult
from repro.index.nbindex import NBIndex
from repro.utils.validation import require_positive


@dataclass
class RefinementStep:
    """One point on the refinement trajectory."""

    theta: float
    result: QueryResult
    seconds: float


class RefinementSession:
    """Stateful θ-refinement over a fixed relevance function."""

    def __init__(self, index: NBIndex, query_fn, k: int):
        require_positive(k, "k")
        self.k = k
        self._session = index.session(query_fn)
        self.history: list[RefinementStep] = []

    @property
    def current_theta(self) -> float | None:
        return self.history[-1].theta if self.history else None

    @property
    def current_result(self) -> QueryResult | None:
        return self.history[-1].result if self.history else None

    def query(self, theta: float) -> QueryResult:
        """Run (or re-run) the query at an explicit θ."""
        import time

        require_positive(theta, "theta")
        started = time.perf_counter()
        result = self._session.query(theta, self.k)
        elapsed = time.perf_counter() - started
        self.history.append(RefinementStep(theta, result, elapsed))
        return result

    def zoom_in(self, fraction: float = 0.1) -> QueryResult:
        """Shrink θ by ``fraction`` (tighter neighborhoods, finer clusters)."""
        return self._zoom(1.0 - fraction)

    def zoom_out(self, fraction: float = 0.1) -> QueryResult:
        """Grow θ by ``fraction`` (coarser view, broader representatives)."""
        return self._zoom(1.0 + fraction)

    def _zoom(self, factor: float) -> QueryResult:
        if self.current_theta is None:
            raise RuntimeError("no previous query to zoom from; call query() first")
        return self.query(self.current_theta * factor)

    def __repr__(self) -> str:
        return (
            f"<RefinementSession k={self.k} steps={len(self.history)} "
            f"theta={self.current_theta}>"
        )

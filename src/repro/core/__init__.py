"""Core REP model: greedy engines, representative power, the public facade."""

from repro.core.results import QueryResult, QueryStats
from repro.core.representative import (
    all_theta_neighborhoods,
    coverage,
    marginal_gain,
    representative_power,
    theta_neighborhood,
    verify_submodularity,
)
from repro.core.greedy import baseline_greedy, lazy_greedy
from repro.core.setgreedy import baseline_greedy_sets, lazy_greedy_sets
from repro.core.bruteforce import greedy_guarantee_holds, optimal_answer
from repro.core.reduction import (
    LookupDistance,
    ReducedInstance,
    SetCoverInstance,
    reduce_set_cover,
)
from repro.core.weighted import weighted_coverage, weighted_greedy, weighted_optimal
from repro.core.query import TopKRepresentativeQuery
from repro.core.refinement import RefinementSession, RefinementStep

__all__ = [
    "QueryResult",
    "QueryStats",
    "theta_neighborhood",
    "all_theta_neighborhoods",
    "coverage",
    "representative_power",
    "marginal_gain",
    "verify_submodularity",
    "baseline_greedy",
    "lazy_greedy",
    "baseline_greedy_sets",
    "lazy_greedy_sets",
    "optimal_answer",
    "greedy_guarantee_holds",
    "SetCoverInstance",
    "reduce_set_cover",
    "ReducedInstance",
    "LookupDistance",
    "TopKRepresentativeQuery",
    "weighted_greedy",
    "weighted_coverage",
    "weighted_optimal",
    "RefinementSession",
    "RefinementStep",
]

"""Baseline greedy for top-k representative queries (Algorithm 1).

The (1 − 1/e)-approximate greedy of Section 5: materialize every relevant
graph's θ-neighborhood, then repeatedly add the graph with the largest
marginal coverage.  The neighborhood materialization costs O(|L_q|²) edit
distances — exactly the bottleneck the NB-Index removes — which is why this
implementation also accepts a range-query backend (C-tree, M-tree, distance
matrix) for the scalability comparisons of Figs. 2(b), 5(i–k) and 6(b–g).

Coverage bookkeeping runs on the packed-bitset kernel
(:mod:`repro.bitset`): neighborhoods are rows of one ``(|L_q|, words)``
uint64 matrix, the covered set is a word array, and every marginal gain is
a vectorized ``popcount(row & ~covered)`` — the whole argmax scan of one
greedy round is a single batch :func:`~repro.bitset.uncovered_counts`
call.  Answers are bit-identical to the retained set-based reference
(:mod:`repro.core.setgreedy`); the dual-run gate in
``tests/test_hotpath_identity.py`` enforces it.

Tie-breaking is deterministic: among graphs of equal marginal gain the one
with the smallest database id wins, making the trajectory reproducible and
directly comparable across engines.  (Bitset rows are ordered by ascending
id, so ``argmax`` lands on exactly that winner.)
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.bitset import BitsetUniverse, kernel
from repro.core.representative import (
    RangeQueryFn,
    all_theta_neighborhoods,
)
from repro.core.results import QueryResult, QueryStats
from repro.core.setgreedy import _maybe_engine
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require_positive


class CoverageState:
    """Packed coverage state shared by both greedy variants.

    One instance per query: the relevant-id universe, the θ-neighborhoods
    packed as a ``(|L_q|, words)`` uint64 matrix (row order = ascending
    id), and the running covered bitset.  Both :func:`baseline_greedy` and
    :func:`lazy_greedy` select through :meth:`take` — the single
    implementation of the selection/coverage-update step their loop bodies
    used to duplicate.
    """

    def __init__(self, relevant, neighborhoods):
        self.universe = BitsetUniverse(relevant)
        self.matrix = self.universe.empty_matrix(self.universe.size)
        for position, gid in enumerate(self.universe.ids):
            members = np.fromiter(
                neighborhoods[int(gid)], dtype=np.int64,
                count=len(neighborhoods[int(gid)]),
            )
            self.matrix[position] = self.universe.encode_ids(members)
        self.covered = self.universe.empty()

    @classmethod
    def from_range_query(cls, relevant, range_query, theta):
        """Build coverage straight from a range-query backend.

        Each row is the backend's candidate block intersected with the
        universe and packed in one vectorized pass — no per-id frozenset
        materialization.  Membership matches
        :func:`~repro.core.representative.all_theta_neighborhoods` with
        the same backend: candidates restricted to the relevant set, plus
        the graph itself.
        """
        self = cls.__new__(cls)
        self.universe = BitsetUniverse(relevant)
        self.matrix = self.universe.empty_matrix(self.universe.size)
        for position, gid in enumerate(self.universe.ids):
            positions = self.universe.member_positions(
                np.asarray(range_query(int(gid), theta), dtype=np.int64)
            )
            row = kernel.from_positions(positions, self.universe.size)
            kernel.set_bit(row, position)
            self.matrix[position] = row
        self.covered = self.universe.empty()
        return self

    def sizes(self) -> np.ndarray:
        """``|N_θ(g)|`` per row — the lazy heap's initial gains."""
        return kernel.popcount_rows(self.matrix)

    def gains(self) -> np.ndarray:
        """Marginal gain of every row against the current coverage."""
        return kernel.uncovered_counts(self.matrix, self.covered)

    def gain(self, position: int) -> int:
        """Marginal gain of one row (lazy re-evaluation)."""
        return kernel.uncovered_count(self.matrix[position], self.covered)

    def take(self, position: int, answer: list[int], gains: list[int]) -> int:
        """Select one graph: record id and exact gain, fold its
        neighborhood into the covered set.  Returns the gain."""
        gain = kernel.uncovered_count(self.matrix[position], self.covered)
        answer.append(int(self.universe.ids[position]))
        gains.append(int(gain))
        kernel.union_into(self.covered, self.matrix[position])
        return int(gain)

    def covered_ids(self) -> frozenset[int]:
        return self.universe.decode_frozenset(self.covered)


def baseline_greedy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    *,
    range_query: RangeQueryFn | None = None,
    stop_on_zero_gain: bool = False,
    engine=None,
    workers: int | None = None,
) -> QueryResult:
    """Run Algorithm 1.

    Parameters
    ----------
    database, distance:
        The graph database and its metric.
    query_fn:
        Relevance function (see :mod:`repro.graphs.relevance`).
    theta, k:
        Distance threshold and answer budget.
    range_query:
        Optional ``(gid, theta) → candidate ids`` backend used to compute
        θ-neighborhoods instead of all-pairs distance evaluation.
    stop_on_zero_gain:
        End early once no graph adds coverage (the paper's Algorithm 1
        always runs k iterations; this switch is for analyses that prefer
        minimal answer sets).
    engine:
        Optional :class:`~repro.engine.DistanceEngine`; the O(|L_q|²)
        neighborhood materialization then runs as row batches.  The
        selected answer, gains and coverage are identical.
    workers:
        Convenience: build a fresh engine with this process fan-out when
        no ``engine`` is given (same semantics as :meth:`NBIndex.build`).
    """
    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    engine = _maybe_engine(engine, workers, distance, database)
    counting = engine if engine is not None else CountingDistance(distance)
    calls_before = counting.calls

    with obs.span("greedy.run", kind="baseline", theta=theta, k=k):
        started = time.perf_counter()
        relevant = [int(i) for i in database.relevant_indices(query_fn)]
        if range_query is not None:
            coverage = CoverageState.from_range_query(
                relevant, range_query, theta
            )
        else:
            neighborhoods = all_theta_neighborhoods(
                database, counting, relevant, theta, engine=engine,
            )
            coverage = CoverageState(relevant, neighborhoods)
        stats.init_seconds = time.perf_counter() - started
        stats.exact_neighborhoods = len(relevant)

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        remaining = np.ones(coverage.universe.size, dtype=bool)
        for _ in range(min(k, len(relevant))):
            live = int(np.count_nonzero(remaining))
            if not live:
                break
            stats.gain_evaluations += live
            # One batch popcount scans every remaining row; rows are in
            # ascending-id order, so argmax resolves equal gains to the
            # smallest id — the canonical tie-break.
            row_gains = coverage.gains()
            row_gains[~remaining] = -1
            best_position = int(np.argmax(row_gains))
            if row_gains[best_position] == 0 and stop_on_zero_gain:
                break
            coverage.take(best_position, answer, gains)
            remaining[best_position] = False
        stats.search_seconds = time.perf_counter() - started
        stats.distance_calls = counting.calls - calls_before
        obs.counter("greedy.gain_evaluations", stats.gain_evaluations)
        obs.counter("greedy.runs")

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=coverage.covered_ids(),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )


def lazy_greedy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    *,
    range_query: RangeQueryFn | None = None,
    stop_on_zero_gain: bool = False,
    engine=None,
    workers: int | None = None,
) -> QueryResult:
    """Index-free lazy greedy — Algorithm 1 with a max-heap of stale gains.

    Identical output to :func:`baseline_greedy` (same tie-breaking), but
    re-evaluates marginal gains only when a stale entry surfaces.  Isolates
    the benefit of laziness from the benefit of the NB-Index bounds in the
    ablation benchmarks.
    """
    import heapq

    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    engine = _maybe_engine(engine, workers, distance, database)
    counting = engine if engine is not None else CountingDistance(distance)
    calls_before = counting.calls

    with obs.span("greedy.run", kind="lazy", theta=theta, k=k):
        started = time.perf_counter()
        relevant = [int(i) for i in database.relevant_indices(query_fn)]
        if range_query is not None:
            coverage = CoverageState.from_range_query(
                relevant, range_query, theta
            )
        else:
            neighborhoods = all_theta_neighborhoods(
                database, counting, relevant, theta, engine=engine,
            )
            coverage = CoverageState(relevant, neighborhoods)
        stats.init_seconds = time.perf_counter() - started

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        universe = coverage.universe
        # Heap of (-gain, gid, generation); a stale generation triggers
        # re-evaluation.  gid ascending gives smallest-id tie-breaking.
        sizes = coverage.sizes()
        heap = [
            (-int(sizes[position]), int(gid), 0)
            for position, gid in enumerate(universe.ids)
        ]
        heapq.heapify(heap)
        stats.gain_evaluations = len(heap)
        generation = 0
        while heap and len(answer) < min(k, len(relevant)):
            neg_gain, gid, entry_generation = heapq.heappop(heap)
            position = universe.position(gid)
            if entry_generation != generation:
                stats.gain_evaluations += 1
                stats.reheap_count += 1
                fresh = coverage.gain(position)
                heapq.heappush(heap, (-fresh, gid, generation))
                continue
            if -neg_gain == 0 and stop_on_zero_gain:
                break
            coverage.take(position, answer, gains)
            generation += 1
        stats.search_seconds = time.perf_counter() - started
        stats.distance_calls = counting.calls - calls_before
        obs.counter("greedy.gain_evaluations", stats.gain_evaluations)
        obs.counter("greedy.lazy.reheap", stats.reheap_count)
        obs.counter("greedy.runs")

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=coverage.covered_ids(),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )

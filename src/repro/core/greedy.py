"""Baseline greedy for top-k representative queries (Algorithm 1).

The (1 − 1/e)-approximate greedy of Section 5: materialize every relevant
graph's θ-neighborhood, then repeatedly add the graph with the largest
marginal coverage.  The neighborhood materialization costs O(|L_q|²) edit
distances — exactly the bottleneck the NB-Index removes — which is why this
implementation also accepts a range-query backend (C-tree, M-tree, distance
matrix) for the scalability comparisons of Figs. 2(b), 5(i–k) and 6(b–g).

Tie-breaking is deterministic: among graphs of equal marginal gain the one
with the smallest database id wins, making the trajectory reproducible and
directly comparable across engines.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.representative import (
    RangeQueryFn,
    all_theta_neighborhoods,
)
from repro.core.results import QueryResult, QueryStats
from repro.ged.metric import CountingDistance, GraphDistanceFn
from repro.graphs.database import GraphDatabase
from repro.utils.validation import require_positive


def _maybe_engine(engine, workers, distance, database):
    """Build a :class:`DistanceEngine` when ``workers`` is given without one."""
    if engine is not None or workers is None:
        return engine
    from repro.engine import DistanceEngine

    return DistanceEngine(distance, workers=workers, graphs=database.graphs)


def baseline_greedy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    *,
    range_query: RangeQueryFn | None = None,
    stop_on_zero_gain: bool = False,
    engine=None,
    workers: int | None = None,
) -> QueryResult:
    """Run Algorithm 1.

    Parameters
    ----------
    database, distance:
        The graph database and its metric.
    query_fn:
        Relevance function (see :mod:`repro.graphs.relevance`).
    theta, k:
        Distance threshold and answer budget.
    range_query:
        Optional ``(gid, theta) → candidate ids`` backend used to compute
        θ-neighborhoods instead of all-pairs distance evaluation.
    stop_on_zero_gain:
        End early once no graph adds coverage (the paper's Algorithm 1
        always runs k iterations; this switch is for analyses that prefer
        minimal answer sets).
    engine:
        Optional :class:`~repro.engine.DistanceEngine`; the O(|L_q|²)
        neighborhood materialization then runs as row batches.  The
        selected answer, gains and coverage are identical.
    workers:
        Convenience: build a fresh engine with this process fan-out when
        no ``engine`` is given (same semantics as :meth:`NBIndex.build`).
    """
    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    engine = _maybe_engine(engine, workers, distance, database)
    counting = engine if engine is not None else CountingDistance(distance)
    calls_before = counting.calls

    with obs.span("greedy.run", kind="baseline", theta=theta, k=k):
        started = time.perf_counter()
        relevant = [int(i) for i in database.relevant_indices(query_fn)]
        neighborhoods = all_theta_neighborhoods(
            database, counting, relevant, theta, range_query=range_query,
            engine=engine,
        )
        stats.init_seconds = time.perf_counter() - started
        stats.exact_neighborhoods = len(neighborhoods)

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        covered: set[int] = set()
        remaining = set(relevant)
        for _ in range(min(k, len(relevant))):
            best = None
            best_gain = -1
            # Iterate in id order so equal gains resolve to the smallest id.
            for gid in sorted(remaining):
                stats.gain_evaluations += 1
                gain = len(neighborhoods[gid] - covered)
                if gain > best_gain:
                    best_gain = gain
                    best = gid
            if best is None:
                break
            if best_gain == 0 and stop_on_zero_gain:
                break
            answer.append(best)
            gains.append(best_gain)
            covered |= neighborhoods[best]
            remaining.discard(best)
        stats.search_seconds = time.perf_counter() - started
        stats.distance_calls = counting.calls - calls_before
        obs.counter("greedy.gain_evaluations", stats.gain_evaluations)
        obs.counter("greedy.runs")

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )


def lazy_greedy(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    query_fn,
    theta: float,
    k: int,
    *,
    range_query: RangeQueryFn | None = None,
    stop_on_zero_gain: bool = False,
    engine=None,
    workers: int | None = None,
) -> QueryResult:
    """Index-free lazy greedy — Algorithm 1 with a max-heap of stale gains.

    Identical output to :func:`baseline_greedy` (same tie-breaking), but
    re-evaluates marginal gains only when a stale entry surfaces.  Isolates
    the benefit of laziness from the benefit of the NB-Index bounds in the
    ablation benchmarks.
    """
    import heapq

    require_positive(theta, "theta")
    require_positive(k, "k")
    stats = QueryStats()
    engine = _maybe_engine(engine, workers, distance, database)
    counting = engine if engine is not None else CountingDistance(distance)
    calls_before = counting.calls

    with obs.span("greedy.run", kind="lazy", theta=theta, k=k):
        started = time.perf_counter()
        relevant = [int(i) for i in database.relevant_indices(query_fn)]
        neighborhoods = all_theta_neighborhoods(
            database, counting, relevant, theta, range_query=range_query,
            engine=engine,
        )
        stats.init_seconds = time.perf_counter() - started

        started = time.perf_counter()
        answer: list[int] = []
        gains: list[int] = []
        covered: set[int] = set()
        # Heap of (-gain, gid, generation); a stale generation triggers
        # re-evaluation.  gid ascending gives smallest-id tie-breaking.
        heap = [(-len(neighborhoods[gid]), gid, 0) for gid in sorted(relevant)]
        heapq.heapify(heap)
        stats.gain_evaluations = len(heap)
        generation = 0
        while heap and len(answer) < min(k, len(relevant)):
            neg_gain, gid, entry_generation = heapq.heappop(heap)
            if entry_generation != generation:
                stats.gain_evaluations += 1
                stats.reheap_count += 1
                fresh = len(neighborhoods[gid] - covered)
                heapq.heappush(heap, (-fresh, gid, generation))
                continue
            gain = -neg_gain
            if gain == 0 and stop_on_zero_gain:
                break
            answer.append(gid)
            gains.append(gain)
            covered |= neighborhoods[gid]
            generation += 1
        stats.search_seconds = time.perf_counter() - started
        stats.distance_calls = counting.calls - calls_before
        obs.counter("greedy.gain_evaluations", stats.gain_evaluations)
        obs.counter("greedy.lazy.reheap", stats.reheap_count)
        obs.counter("greedy.runs")

    return QueryResult(
        answer=answer,
        gains=gains,
        covered=frozenset(covered),
        num_relevant=len(relevant),
        theta=theta,
        stats=stats,
    )

"""The Set-Cover reduction of Theorem 1, as an executable construction.

The paper proves NP-hardness by mapping a Set Cover instance
``(U, S, k)`` to a graph database of three groups:

* ``D1`` — one object ``s_i`` per subset ``S_i``;
* ``D2`` — one object ``u_j`` per universe element ``e_j``, with
  ``u_j ∈ N(s_i)`` iff ``e_j ∈ S_i``;
* ``D3`` — per subset, a private group of ``x`` objects inside ``N(s_i)``,
  where ``x = max_u π(u)`` over ``D2`` — inflating every ``s_i``'s
  representative power above anything in ``D2 ∪ D3``.

A set cover of size k exists iff some answer set reaches
``π(A) = (|D2| + k(x+1)) / |D|``.

Distances are realized by an explicit three-valued metric
(0 / θ / 2θ — which satisfies the triangle inequality) over placeholder
graphs, so the construction runs through every engine in the library,
including the NB-Index.  This both documents the hardness proof and gives
the test suite instances whose optimum is known by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.database import GraphDatabase
from repro.graphs.graph import LabeledGraph
from repro.utils.validation import require


@dataclass(frozen=True)
class SetCoverInstance:
    """A Set Cover decision instance: cover ``universe_size`` elements with
    ``k`` of the given subsets."""

    universe_size: int
    subsets: tuple[frozenset[int], ...]

    def __post_init__(self):
        require(self.universe_size >= 1, "universe must be non-empty")
        require(len(self.subsets) >= 1, "need at least one subset")
        for subset in self.subsets:
            for element in subset:
                require(
                    0 <= element < self.universe_size,
                    f"element {element} outside universe",
                )
        covered = frozenset().union(*self.subsets)
        require(
            covered == frozenset(range(self.universe_size)),
            "subsets must jointly cover the universe (otherwise no cover exists "
            "for any k and the reduction is vacuous)",
        )

    def is_cover(self, chosen: Sequence[int]) -> bool:
        """Do the chosen subset indices cover the universe?"""
        covered: set[int] = set()
        for index in chosen:
            covered |= self.subsets[index]
        return len(covered) == self.universe_size


class LookupDistance:
    """A metric given by an explicit neighbor relation.

    ``d(g, g) = 0``; ``d = theta`` for declared neighbor pairs; ``d = 2θ``
    otherwise.  Values {0, θ, 2θ} always satisfy the triangle inequality,
    so this is a genuine metric over the placeholder graphs.
    """

    def __init__(self, theta: float, neighbor_pairs: set[tuple[int, int]]):
        self.theta = float(theta)
        self._neighbors = neighbor_pairs

    def __call__(self, g1: LabeledGraph, g2: LabeledGraph) -> float:
        a, b = g1.graph_id, g2.graph_id
        if a == b:
            return 0.0
        key = (a, b) if a < b else (b, a)
        return self.theta if key in self._neighbors else 2.0 * self.theta


@dataclass
class ReducedInstance:
    """The representative-query instance produced by the reduction."""

    database: GraphDatabase
    distance: LookupDistance
    theta: float
    source: SetCoverInstance
    #: database ids of D1 (subset gadgets), D2 (element gadgets), D3 (filler)
    d1_ids: tuple[int, ...]
    d2_ids: tuple[int, ...]
    d3_ids: tuple[int, ...]
    x: int

    @property
    def query_fn(self):
        """Every gadget is relevant (the reduction classifies all three
        groups as relevant)."""
        from repro.graphs.relevance import WeightedScoreThreshold

        return WeightedScoreThreshold([1.0], threshold=0.0)

    def target_coverage(self, k: int) -> int:
        """``|D2| + k(x+1)`` — the covered-count value attainable iff a set
        cover of size k exists."""
        return len(self.d2_ids) + k * (self.x + 1)

    def target_pi(self, k: int) -> float:
        return self.target_coverage(k) / len(self.database)

    def subsets_of_answer(self, answer: Sequence[int]) -> list[int]:
        """Map answer-set database ids back to subset indices (D1 only)."""
        d1_position = {gid: i for i, gid in enumerate(self.d1_ids)}
        return [d1_position[gid] for gid in answer if gid in d1_position]


def reduce_set_cover(instance: SetCoverInstance, theta: float = 1.0) -> ReducedInstance:
    """Construct the Theorem-1 gadget database for a Set Cover instance."""
    subsets = instance.subsets
    num_subsets = len(subsets)
    universe = instance.universe_size

    # x = max_u π(u) over D2 in *counts*: u_j's neighborhood holds itself
    # plus every subset gadget containing e_j.
    frequency = [0] * universe
    for subset in subsets:
        for element in subset:
            frequency[element] += 1
    x = 1 + max(frequency)

    # Database ids: D1 then D2 then D3 (x filler gadgets per subset).
    d1_ids = tuple(range(num_subsets))
    d2_ids = tuple(range(num_subsets, num_subsets + universe))
    d3_start = num_subsets + universe
    d3_ids = tuple(range(d3_start, d3_start + x * num_subsets))

    neighbor_pairs: set[tuple[int, int]] = set()
    for i, subset in enumerate(subsets):
        for element in subset:
            neighbor_pairs.add((d1_ids[i], d2_ids[element]))
        for slot in range(x):
            filler = d3_start + i * x + slot
            neighbor_pairs.add((d1_ids[i], filler))

    total = num_subsets + universe + x * num_subsets
    graphs = [LabeledGraph([f"o{i}"]) for i in range(total)]
    database = GraphDatabase(graphs, np.ones((total, 1)))
    distance = LookupDistance(theta, neighbor_pairs)
    return ReducedInstance(
        database=database,
        distance=distance,
        theta=theta,
        source=instance,
        d1_ids=d1_ids,
        d2_ids=d2_ids,
        d3_ids=d3_ids,
        x=x,
    )

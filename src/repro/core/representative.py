"""Representative power machinery (Definitions 1–2, Eq. 3).

These are the semantic primitives every engine shares: θ-neighborhoods over
the relevant set, set coverage, and the normalized representative power π.
They are deliberately engine-agnostic — computed from explicit distances or
through any range-query backend — so they double as the ground truth that
index-accelerated engines are tested against.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.ged.metric import GraphDistanceFn
from repro.graphs.database import GraphDatabase

_EPS = 1e-9

#: A range-query backend: ``(graph_id, theta) -> candidate ids`` restricted
#: to some universe the backend was built over.
RangeQueryFn = Callable[[int, float], Iterable[int]]


def theta_neighborhood(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    gid: int,
    relevant: Sequence[int],
    theta: float,
) -> frozenset[int]:
    """``N_θ(g)`` over the relevant set, by direct distance evaluation."""
    graph = database[gid]
    members = set()
    for other in relevant:
        other = int(other)
        if other == gid:
            members.add(other)
        elif distance(graph, database[other]) <= theta + _EPS:
            members.add(other)
    return frozenset(members)


def all_theta_neighborhoods(
    database: GraphDatabase,
    distance: GraphDistanceFn,
    relevant: Sequence[int],
    theta: float,
    range_query: RangeQueryFn | None = None,
    engine=None,
) -> dict[int, frozenset[int]]:
    """θ-neighborhoods of every relevant graph.

    This is the quadratic bottleneck of Algorithm 1 (lines 6–7 of the
    paper's pseudocode run over these sets).  When ``range_query`` is
    given — e.g. an M-tree or C-tree range search — candidates come from
    the backend and only they are distance-verified; otherwise all
    ``O(|L_q|²)`` pairs are evaluated (symmetrically, each pair once) —
    as row batches through ``engine`` when one is supplied, producing the
    same membership sets.
    """
    relevant = [int(i) for i in relevant]
    neighborhoods: dict[int, set[int]] = {gid: {gid} for gid in relevant}
    if range_query is not None:
        relevant_set = set(relevant)
        for gid in relevant:
            for candidate in range_query(gid, theta):
                candidate = int(candidate)
                if candidate in relevant_set:
                    neighborhoods[gid].add(candidate)
        return {gid: frozenset(members) for gid, members in neighborhoods.items()}
    if engine is not None:
        attached = engine.graphs is database.graphs
        for a_pos, gid in enumerate(relevant):
            rest = relevant[a_pos + 1:]
            if not rest:
                break
            refs = rest if attached else [database[other] for other in rest]
            source = gid if attached else database[gid]
            mask = engine.within(source, refs, theta)
            for other, within in zip(rest, mask):
                if within:
                    neighborhoods[gid].add(other)
                    neighborhoods[other].add(gid)
        return {gid: frozenset(members) for gid, members in neighborhoods.items()}
    for a_pos, gid in enumerate(relevant):
        graph = database[gid]
        for other in relevant[a_pos + 1:]:
            if distance(graph, database[other]) <= theta + _EPS:
                neighborhoods[gid].add(other)
                neighborhoods[other].add(gid)
    return {gid: frozenset(members) for gid, members in neighborhoods.items()}


def coverage(
    neighborhoods: Mapping[int, frozenset[int]],
    subset: Iterable[int],
) -> frozenset[int]:
    """``∪_{g ∈ subset} N_θ(g)`` — the relevant graphs represented."""
    covered: set[int] = set()
    for gid in subset:
        covered |= neighborhoods[int(gid)]
    return frozenset(covered)


def representative_power(
    neighborhoods: Mapping[int, frozenset[int]],
    subset: Iterable[int],
    num_relevant: int,
) -> float:
    """π(S) per Eq. 3: covered fraction of the relevant set."""
    if num_relevant == 0:
        return 0.0
    return len(coverage(neighborhoods, subset)) / num_relevant


def marginal_gain(
    neighborhoods: Mapping[int, frozenset[int]],
    covered: set[int] | frozenset[int],
    gid: int,
) -> int:
    """``|N_θ(g) \\ covered|`` — the greedy selection criterion."""
    return len(neighborhoods[int(gid)] - covered)


def verify_submodularity(
    neighborhoods: Mapping[int, frozenset[int]],
    num_relevant: int,
    small: Sequence[int],
    large: Sequence[int],
    extra: int,
) -> bool:
    """Check Eq. 4 for one (S ⊆ T, g) witness — used by property tests."""
    small_set = set(int(i) for i in small)
    large_set = set(int(i) for i in large)
    if not small_set <= large_set:
        raise ValueError("small must be a subset of large")
    gain_small = representative_power(
        neighborhoods, small_set | {extra}, num_relevant
    ) - representative_power(neighborhoods, small_set, num_relevant)
    gain_large = representative_power(
        neighborhoods, large_set | {extra}, num_relevant
    ) - representative_power(neighborhoods, large_set, num_relevant)
    return gain_small >= gain_large - 1e-12

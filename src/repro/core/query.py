"""The top-level public API: :class:`TopKRepresentativeQuery`.

A thin facade tying the pieces together for the common workflow:

>>> from repro import TopKRepresentativeQuery, quartile_relevance
>>> engine = TopKRepresentativeQuery(database)          # doctest: +SKIP
>>> q = quartile_relevance(database)                    # doctest: +SKIP
>>> result = engine.run(q, theta=10.0, k=10)            # doctest: +SKIP
>>> [database[i] for i in result.answer]                # doctest: +SKIP

The default distance is the polynomial star edit distance (a true metric,
see DESIGN.md); pass ``distance=ExactGED()`` for exact edit distances on
small databases.  The default engine is the NB-Index; ``method='greedy'``
runs the quadratic Algorithm 1 instead.
"""

from __future__ import annotations

from repro.core.greedy import baseline_greedy
from repro.core.results import QueryResult
from repro.ged.metric import GraphDistanceFn
from repro.ged.star import StarDistance
from repro.graphs.database import GraphDatabase
from repro.index.nbindex import NBIndex, QuerySession


class TopKRepresentativeQuery:
    """Query engine facade over a graph database.

    Parameters
    ----------
    database:
        The graph database to query.
    distance:
        Metric structural distance; defaults to :class:`StarDistance`.
    index:
        A prebuilt :class:`NBIndex`; built lazily on first NB-Index query
        when omitted.
    seed:
        Drives the lazy index build's stochastic choices (int or numpy
        Generator); forwarded to :meth:`NBIndex.build`.
    workers:
        Process fan-out of the lazy build's distance engine; forwarded to
        :meth:`NBIndex.build`.
    index_params:
        Further keyword arguments forwarded to :meth:`NBIndex.build` when
        the index is built lazily (``num_vantage_points``, ``branching``,
        ``thresholds``, ...).
    """

    def __init__(
        self,
        database: GraphDatabase,
        distance: GraphDistanceFn | None = None,
        index: NBIndex | None = None,
        *,
        seed=None,
        workers: int | None = None,
        **index_params,
    ):
        self.database = database
        self.distance = distance if distance is not None else StarDistance()
        self._index = index
        if "rng" in index_params:
            import warnings

            warnings.warn(
                "TopKRepresentativeQuery: the 'rng' argument is deprecated, "
                "use 'seed='",
                DeprecationWarning,
                stacklevel=2,
            )
            if seed is not None:
                raise TypeError(
                    "pass either 'seed=' or the deprecated 'rng=', not both"
                )
            seed = index_params.pop("rng")
        if seed is not None:
            index_params["seed"] = seed
        if workers is not None:
            index_params["workers"] = workers
        self._index_params = index_params

    @property
    def index(self) -> NBIndex:
        """The NB-Index, building it on first use."""
        if self._index is None:
            self._index = NBIndex.build(
                self.database, self.distance, **self._index_params
            )
        return self._index

    def run(
        self,
        query_fn,
        theta: float,
        k: int,
        method: str = "nbindex",
        **kwargs,
    ) -> QueryResult:
        """Answer a top-k representative query.

        ``method='nbindex'`` (default) uses the index; ``method='greedy'``
        runs the baseline Algorithm 1 without any index.
        """
        if method == "nbindex":
            return self.index.query(query_fn, theta, k, **kwargs)
        if method == "greedy":
            return baseline_greedy(
                self.database, self.distance, query_fn, theta, k, **kwargs
            )
        raise ValueError(f"unknown method {method!r}; use 'nbindex' or 'greedy'")

    def session(self, query_fn) -> QuerySession:
        """An interactive session for θ refinement (Sec. 7's zoom mode)."""
        return self.index.session(query_fn)

    def __repr__(self) -> str:
        built = "built" if self._index is not None else "lazy"
        return (
            f"<TopKRepresentativeQuery n={len(self.database)} "
            f"distance={self.distance!r} index={built}>"
        )

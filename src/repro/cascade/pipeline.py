"""The runtime filter pipeline.

:class:`FilterCascade` is the per-query runtime built from a
:class:`~repro.cascade.config.CascadeConfig`: it owns the per-stage
``evals`` / ``prunes`` / ``seconds`` counters and runs the configured
stages over a candidate block between enumeration and exact
verification.  :meth:`run` is the generalization of the engine's
historical ``within`` body — with the default configuration (vantage
stage only, ε = 0) it performs the identical passes, emits the identical
``engine.prefilter.*`` counters and returns the identical mask, which is
what the dual-run identity tests in ``tests/test_cascade.py`` pin down.

Pruning.  A stage removes a candidate once its lower bound exceeds the
relaxed cutoff ``(1−ε)·θ + eps``; exact verification still accepts at
``θ + eps``.  At ε = 0 every prune is justified by the stage's soundness
proof (see :mod:`repro.cascade.stages`), so results are bit-identical to
the unfiltered pipeline for any stage subset or ordering.  At ε > 0 the
answered neighborhood ``N'`` satisfies ``N_{(1−ε)θ} ⊆ N' ⊆ N_θ`` — no
false positives, only borderline members may be dropped — which keeps
the lazy greedy's ``(1 − 1/e − ε)`` approximation guarantee.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.cascade.config import CascadeConfig, resolve_cascade
from repro.cascade.stages import BLOCK_EVALS, batch_lower_bounds


class FilterCascade:
    """Per-query stage runtime with accumulated prune statistics."""

    __slots__ = ("config", "counts")

    def __init__(self, config: CascadeConfig | None = None):
        self.config = config if config is not None else CascadeConfig()
        self.counts: dict[str, dict[str, float]] = {}

    # -- config passthroughs ------------------------------------------
    @property
    def epsilon(self) -> float:
        return self.config.epsilon

    @property
    def approximate(self) -> bool:
        return self.config.approximate

    def generation_theta(self, theta: float) -> float:
        """Relaxed threshold for candidate-window generation."""
        return self.config.generation_theta(theta)

    # -- statistics ---------------------------------------------------
    def _record(self, name, evals, prunes, seconds, accepts=0):
        entry = self.counts.setdefault(
            name, {"evals": 0, "prunes": 0, "accepts": 0, "seconds": 0.0}
        )
        entry["evals"] += evals
        entry["prunes"] += prunes
        entry["accepts"] += accepts
        entry["seconds"] += seconds
        if obs.enabled():
            obs.counter(f"cascade.{name}.evals", evals)
            obs.counter(f"cascade.{name}.prunes", prunes)
            if accepts:
                obs.counter(f"cascade.{name}.accepts", accepts)
            obs.observe_time(f"cascade.{name}.seconds", seconds)

    def snapshot(self) -> dict:
        """Per-stage counters for ``QueryStats.cascade`` (JSON-safe)."""
        return {
            name: {
                "evals": int(entry["evals"]),
                "prunes": int(entry["prunes"]),
                "accepts": int(entry["accepts"]),
                "seconds": float(entry["seconds"]),
            }
            for name, entry in self.counts.items()
        }

    # -- the hot path -------------------------------------------------
    def run(
        self,
        engine,
        source,
        targets: list,
        theta: float,
        eps: float,
        *,
        prefiltered: bool = False,
    ) -> np.ndarray:
        """Boolean mask of ``d(source, t) ≤ θ + eps`` over ``targets``,
        with configured stages pruning at ``(1−ε)·θ + eps`` first.

        ``prefiltered=True`` asserts the caller already ran the vantage
        Chebyshev lower bound over these targets at this (relaxed)
        threshold — e.g. via ``VantageEmbedding.candidates`` — so the
        vantage stage skips the redundant lower pass (it would reject
        exactly zero candidates) and only applies the upper-bound accept.
        """
        n = len(targets)
        mask = np.zeros(n, dtype=bool)
        if not n:
            return mask
        cutoff = self.generation_theta(theta) + eps
        accept = theta + eps
        ints = isinstance(source, (int, np.integer)) and all(
            isinstance(t, (int, np.integer)) for t in targets
        )
        ids = (
            np.asarray([int(t) for t in targets], dtype=np.int64)
            if ints else None
        )
        survivors = np.arange(n)
        for name in self.config.stages:
            if not survivors.size:
                break
            started = time.perf_counter()
            if name == "vantage":
                survivors = self._vantage_stage(
                    engine, source, ids, survivors, mask,
                    cutoff, accept, prefiltered, started,
                )
                continue
            bounds = batch_lower_bounds(name, engine, source, ids, survivors)
            if bounds is None:
                continue
            keep = bounds <= cutoff
            pruned = int(np.count_nonzero(~keep))
            self._record(
                name, int(survivors.size), pruned,
                time.perf_counter() - started,
            )
            survivors = survivors[keep]
        if survivors.size:
            if ids is not None:
                refs = [int(ids[p]) for p in survivors]
            else:
                refs = [targets[p] for p in survivors]
            distances = engine.one_to_many(source, refs)
            mask[survivors] = distances <= accept
        return mask

    def _vantage_stage(
        self, engine, source, ids, survivors, mask,
        cutoff, accept, prefiltered, started,
    ):
        """The Lipschitz sandwich — lower-bound prune plus upper-bound
        accept — mirroring the engine's historical prefilter counters."""
        embedding = engine._embedding
        if embedding is None or ids is None:
            return survivors
        coords = embedding.coords
        source_row = coords[int(source)]
        if prefiltered:
            # The caller's candidate window already applied this exact
            # lower-bound predicate; re-running it would reject nothing
            # (and double-count the block pass).
            rejected = 0
            undecided = survivors
        else:
            obs.counter(BLOCK_EVALS)
            lower = np.max(np.abs(coords[ids[survivors]] - source_row), axis=1)
            keep = lower <= cutoff
            rejected = int(np.count_nonzero(~keep))
            undecided = survivors[keep]
        upper = np.min(coords[ids[undecided]] + source_row, axis=1)
        accepted = upper <= accept
        accepts = int(np.count_nonzero(accepted))
        with engine._cache_lock:
            engine.prefilter_lower_rejections += rejected
            engine.prefilter_upper_accepts += accepts
        mask[undecided[accepted]] = True
        remaining = undecided[~accepted]
        obs.counter("engine.prefilter.candidates", int(survivors.size))
        obs.counter("engine.prefilter.lower_rejections", rejected)
        obs.counter("engine.prefilter.upper_accepts", accepts)
        obs.counter("engine.prefilter.verified", int(remaining.size))
        self._record(
            "vantage", int(survivors.size), rejected,
            time.perf_counter() - started, accepts=accepts,
        )
        return remaining


def runtime_for(cascade, epsilon: float = 0.0) -> FilterCascade | None:
    """Build the per-query runtime from public kwargs; ``None`` for the
    implicit default (legacy hot path, engine-held runtime)."""
    config = resolve_cascade(cascade, epsilon)
    return FilterCascade(config) if config is not None else None

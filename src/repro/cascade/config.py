"""Declarative cascade configuration.

A :class:`CascadeConfig` names the ordered lower-bound filter stages a
query should run between candidate enumeration and exact verification,
plus the relaxation factor ``epsilon`` of the approximate mode.  It is a
frozen value object that serializes to plain JSON (``to_wire`` /
``from_wire``) so service clients, the CLI and replica workers can all
select, reorder or disable stages per query.

The default configuration is the single ``vantage`` stage — exactly the
prefilter :class:`~repro.engine.core.DistanceEngine` has always run — so
a query that never names a cascade keeps its current behavior, counters
and results bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Every stage the pipeline knows how to run, in the catalog order of
#: ``docs/cascade.md``.  ``full`` resolves to this tuple.
KNOWN_STAGES: tuple[str, ...] = ("label_size", "assignment", "star", "vantage")

#: The implicit configuration of a query that asked for nothing: the
#: engine's historical vantage prefilter, and exact verification.
DEFAULT_STAGES: tuple[str, ...] = ("vantage",)

#: The full cheap-to-expensive ladder.
FULL_STAGES: tuple[str, ...] = KNOWN_STAGES

_ALIASES = {
    "full": FULL_STAGES,
    "default": DEFAULT_STAGES,
    "none": (),
    "exact": (),
}


class CascadeConfigError(ValueError):
    """An invalid cascade specification (unknown stage, bad epsilon)."""


@dataclass(frozen=True)
class CascadeConfig:
    """An ordered stage selection plus the ε-relaxation factor.

    Parameters
    ----------
    stages:
        Ordered tuple of stage names from :data:`KNOWN_STAGES`.  The
        empty tuple is legal and means "exact verification only".
    epsilon:
        Relaxation in ``[0, 1)``.  ``0`` is the exact mode (bit-identical
        to the legacy pipeline for any stage subset); ``ε > 0`` shrinks
        candidate-generation windows and bound cutoffs to ``(1−ε)·θ``
        while exact verification still accepts at ``θ``, preserving the
        ``(1 − 1/e − ε)`` greedy guarantee.
    """

    stages: tuple[str, ...] = DEFAULT_STAGES
    epsilon: float = 0.0

    def __post_init__(self):
        stages = tuple(self.stages)
        object.__setattr__(self, "stages", stages)
        seen = set()
        for name in stages:
            if name not in KNOWN_STAGES:
                raise CascadeConfigError(
                    f"unknown cascade stage {name!r}; "
                    f"valid stages: {', '.join(KNOWN_STAGES)}"
                )
            if name in seen:
                raise CascadeConfigError(f"duplicate cascade stage {name!r}")
            seen.add(name)
        try:
            epsilon = float(self.epsilon)
        except (TypeError, ValueError):
            raise CascadeConfigError(
                f"epsilon must be a number in [0, 1), got {self.epsilon!r}"
            ) from None
        if not (0.0 <= epsilon < 1.0) or epsilon != epsilon:
            raise CascadeConfigError(
                f"epsilon must be in [0, 1), got {self.epsilon!r}"
            )
        object.__setattr__(self, "epsilon", epsilon)

    # -- derived ------------------------------------------------------
    @property
    def approximate(self) -> bool:
        """True when this configuration relaxes bounds (``ε > 0``)."""
        return self.epsilon > 0.0

    def is_default(self) -> bool:
        """True for the implicit legacy configuration (vantage-only, ε=0)."""
        return self.stages == DEFAULT_STAGES and self.epsilon == 0.0

    def generation_theta(self, theta: float) -> float:
        """The relaxed threshold ``(1−ε)·θ`` used by bound comparisons."""
        return (1.0 - self.epsilon) * theta

    # -- serialization ------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-safe form, accepted back by :meth:`from_wire`."""
        return {"stages": list(self.stages), "epsilon": self.epsilon}

    @classmethod
    def from_wire(cls, payload) -> "CascadeConfig":
        """Parse the :meth:`to_wire` form; typed errors on malformed input."""
        if not isinstance(payload, dict):
            raise CascadeConfigError(
                f"cascade payload must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"stages", "epsilon"}
        if unknown:
            raise CascadeConfigError(
                f"unknown cascade payload keys: {sorted(unknown)}"
            )
        stages = payload.get("stages", DEFAULT_STAGES)
        if isinstance(stages, str) or not isinstance(stages, (list, tuple)):
            raise CascadeConfigError("cascade stages must be a list of names")
        if not all(isinstance(name, str) for name in stages):
            raise CascadeConfigError("cascade stage names must be strings")
        return cls(stages=tuple(stages), epsilon=payload.get("epsilon", 0.0))

    @classmethod
    def parse(cls, spec: str | None, epsilon: float = 0.0) -> "CascadeConfig":
        """Parse a CLI-style spec: ``full``/``default``/``none`` or a
        comma-separated stage list (e.g. ``label_size,assignment,vantage``)."""
        if spec is None:
            return cls(stages=DEFAULT_STAGES, epsilon=epsilon)
        if not isinstance(spec, str):
            raise CascadeConfigError(
                f"cascade spec must be a string, got {type(spec).__name__}"
            )
        key = spec.strip().lower()
        if key in _ALIASES:
            return cls(stages=_ALIASES[key], epsilon=epsilon)
        stages = tuple(part.strip() for part in key.split(",") if part.strip())
        if not stages:
            raise CascadeConfigError(f"empty cascade spec {spec!r}")
        return cls(stages=stages, epsilon=epsilon)


def resolve_cascade(cascade, epsilon: float = 0.0) -> CascadeConfig | None:
    """Normalize the public ``cascade=``/``epsilon=`` query kwargs.

    Returns ``None`` when both are defaulted — callers keep the legacy
    hot path untouched in that case — otherwise a validated
    :class:`CascadeConfig`.  Accepts a config, a CLI spec string, a
    stage list/tuple, or a wire dict.
    """
    if cascade is None:
        if not epsilon:
            return None
        return CascadeConfig(stages=DEFAULT_STAGES, epsilon=epsilon)
    if isinstance(cascade, CascadeConfig):
        config = cascade
    elif isinstance(cascade, str):
        config = CascadeConfig.parse(cascade)
    elif isinstance(cascade, dict):
        config = CascadeConfig.from_wire(cascade)
    elif isinstance(cascade, (list, tuple)):
        config = CascadeConfig(stages=tuple(cascade))
    else:
        raise CascadeConfigError(
            "cascade must be a CascadeConfig, spec string, stage list or "
            f"wire dict, got {type(cascade).__name__}"
        )
    if epsilon and config.epsilon != float(epsilon):
        config = replace(config, epsilon=float(epsilon))
    return config


__all__ = [
    "KNOWN_STAGES",
    "DEFAULT_STAGES",
    "FULL_STAGES",
    "CascadeConfig",
    "CascadeConfigError",
    "resolve_cascade",
]

"""Filter stages: cheap lower bounds that prune before exact distances.

Each stage exposes a vectorized batch form (used by the pipeline over an
engine's candidate blocks) and, for the structural stages, a pure
per-pair function used directly by the property tests in
``tests/test_cascade_bounds.py``.

Soundness.  Every shipped stage is a true lower bound of the metric the
engine verifies with:

``label_size``
    ``max(|g|,|h|) − Σ_l min(c_g[l], c_h[l])`` — the optimal label
    matching cost.  Each GED node operation moves it by at most 1 and
    edge operations leave it unchanged, so it lower-bounds exact GED;
    against the (unnormalized) star metric each matched star pair costs
    at least its root-label mismatch and each unmatched star at least 1.

``assignment``
    EmbAssi-style linear assignment bound: the label matching cost plus
    half the L1 distance between descending, zero-padded degree
    sequences.  The degree term lower-bounds the edge-operation count
    (one edge edit moves two degrees by one each), and sorted-order
    matching minimizes the L1 sum over all assignments, so the two terms
    charge disjoint cost pools of both exact GED and the star metric.

``star``
    Zeng et al.'s ``λ(g, h) / max(4, Δ+1)`` bound of exact GED via the
    optimal star assignment (:func:`repro.ged.star.star_ged_lower_bound`).
    Only sound against exact GED — it is skipped (trivially true but
    circular) when the engine's metric *is* the star distance.

``vantage``
    Theorem 4's Lipschitz sandwich from the attached vantage embedding:
    ``max_v |d(g,v) − d(h,v)| ≤ d(g,h) ≤ min_v d(g,v) + d(h,v)`` — the
    only stage with an *upper* bound too, so it both prunes and accepts.

A stage that cannot apply to the engine's metric or references skips
silently rather than risking an unsound prune: the structural stages
require an unnormalized :class:`~repro.ged.StarDistance` or a unit-cost
:class:`~repro.ged.ExactGED` base plus integer references, ``star``
requires an exact-GED base, ``vantage`` an attached embedding.
"""

from __future__ import annotations

import numpy as np

from repro.ged.costs import UNIT_COSTS
from repro.ged.exact import ExactGED
from repro.ged.star import StarDistance, star_ged_lower_bound

#: The single counter name for vantage/Chebyshev block evaluations.
#: Every block pass is counted exactly once under this name, whether it
#: runs inside ``VantageEmbedding.candidates``, the shard coordinator's
#: bound ladder, or the cascade's vantage stage (PR 10 deduped the old
#: ``filter.block_evals`` double emission on prefiltered paths).
BLOCK_EVALS = "cascade.vantage.block_evals"


# ----------------------------------------------------------------------
# Pure per-pair bounds (property-tested against exact GED)
# ----------------------------------------------------------------------
def label_size_lower_bound(g, h) -> float:
    """Optimal label matching cost ``max(|g|,|h|) − Σ_l min(c_g, c_h)``."""
    hist_g, hist_h = g.label_histogram(), h.label_histogram()
    common = sum(
        min(count, hist_h.get(label, 0)) for label, count in hist_g.items()
    )
    return float(max(g.num_nodes, h.num_nodes) - common)


def degree_lower_bound(g, h) -> float:
    """Half the L1 gap between descending zero-padded degree sequences."""
    deg_g = sorted((g.degree(v) for v in g.nodes()), reverse=True)
    deg_h = sorted((h.degree(v) for v in h.nodes()), reverse=True)
    width = max(len(deg_g), len(deg_h))
    deg_g += [0] * (width - len(deg_g))
    deg_h += [0] * (width - len(deg_h))
    return 0.5 * sum(abs(a - b) for a, b in zip(deg_g, deg_h))


def assignment_lower_bound(g, h) -> float:
    """EmbAssi-style bound: label matching cost + degree-sequence term."""
    return label_size_lower_bound(g, h) + degree_lower_bound(g, h)


def star_lower_bound(g, h) -> float:
    """Zeng's star-assignment lower bound of exact GED."""
    return star_ged_lower_bound(g, h)


#: Per-pair form of every pure-bound stage, for the property tests.
PAIR_BOUNDS = {
    "label_size": label_size_lower_bound,
    "assignment": assignment_lower_bound,
    "star": star_lower_bound,
}


# ----------------------------------------------------------------------
# Engine gating
# ----------------------------------------------------------------------
def structural_bounds_ok(engine) -> bool:
    """True when ``label_size``/``assignment`` lower-bound the engine's
    metric: an unnormalized star distance or a unit-cost exact GED."""
    base = engine._base_distance
    if type(base) is StarDistance:
        return not base.normalized
    return isinstance(base, ExactGED) and base.costs is UNIT_COSTS


def star_stage_ok(engine) -> bool:
    """The star stage only lower-bounds exact GED; against the star
    metric itself it is circular (it *is* the metric, scaled down)."""
    base = engine._base_distance
    return isinstance(base, ExactGED) and base.costs is UNIT_COSTS


# ----------------------------------------------------------------------
# Batch stage evaluation
# ----------------------------------------------------------------------
def batch_lower_bounds(name, engine, source, ids, survivors) -> np.ndarray | None:
    """Vectorized stage lower bounds for the surviving candidate block.

    Returns ``None`` when the stage does not apply to this engine /
    reference shape (the pipeline then skips the stage without pruning).
    ``ids`` is the integer id array for all targets (or ``None`` for
    graph-object references), ``survivors`` the positions still alive.
    """
    if name in ("label_size", "assignment"):
        if (
            ids is None
            or engine._graphs is None
            or not structural_bounds_ok(engine)
        ):
            return None
        features = engine.stage_features()
        rows = ids[survivors]
        source_graph = engine._resolve(source)
        if name == "label_size":
            return features.label_size_lb(source_graph, rows)
        return features.assignment_lb(source_graph, rows)
    if name == "star":
        if ids is None or engine._graphs is None or not star_stage_ok(engine):
            return None
        source_graph = engine._resolve(source)
        return np.asarray(
            [
                star_ged_lower_bound(source_graph, engine._resolve(int(i)))
                for i in ids[survivors]
            ],
            dtype=np.float64,
        )
    raise KeyError(f"unknown batch stage {name!r}")

"""Vectorized per-graph features backing the structural cascade stages.

The label/size and assignment stages need, for every graph in the
attached list, its node count, label histogram and sorted degree
sequence.  :class:`StageFeatures` materializes those once per engine as
dense matrices so a stage evaluates a whole surviving candidate block
with a handful of numpy reductions instead of a Python loop.

The cache grows monotonically: live mutations append graphs to the
engine's list, and :meth:`sync` extends the matrices (new label columns,
wider degree rows) without touching existing rows.  Row ``i`` always
describes ``graphs[i]`` at the time it was first seen — graphs are
immutable in this codebase, so rows never go stale.
"""

from __future__ import annotations

import numpy as np


class StageFeatures:
    """Dense (sizes, label counts, sorted degrees) over a graph list."""

    def __init__(self):
        self._vocab: dict[str, int] = {}
        self.count = 0
        self.sizes = np.zeros(0, dtype=np.float64)
        self.label_counts = np.zeros((0, 0), dtype=np.float64)
        # Degree sequences sorted descending, zero-padded to the widest
        # graph seen; padding with zeros keeps the sorted order, so the
        # row is exactly the padded sorted degree multiset.
        self.deg_sorted = np.zeros((0, 0), dtype=np.float64)

    def sync(self, graphs) -> None:
        """Extend the matrices to cover ``graphs`` (idempotent)."""
        total = len(graphs)
        if total <= self.count:
            return
        fresh = graphs[self.count:total]
        rows = [self._profile(g) for g in fresh]
        width_deg = max(
            [self.deg_sorted.shape[1]] + [len(deg) for _, _, deg in rows]
        )
        for label in {lab for _, hist, _ in rows for lab in hist}:
            if label not in self._vocab:
                self._vocab[label] = len(self._vocab)
        width_lab = len(self._vocab)

        sizes = np.zeros(total, dtype=np.float64)
        label_counts = np.zeros((total, width_lab), dtype=np.float64)
        deg_sorted = np.zeros((total, width_deg), dtype=np.float64)
        sizes[: self.count] = self.sizes
        label_counts[: self.count, : self.label_counts.shape[1]] = self.label_counts
        deg_sorted[: self.count, : self.deg_sorted.shape[1]] = self.deg_sorted
        for offset, (size, hist, deg) in enumerate(rows):
            row = self.count + offset
            sizes[row] = size
            for label, n in hist.items():
                label_counts[row, self._vocab[label]] = n
            if deg:
                deg_sorted[row, : len(deg)] = deg
        self.sizes = sizes
        self.label_counts = label_counts
        self.deg_sorted = deg_sorted
        self.count = total

    @staticmethod
    def _profile(graph):
        size = float(graph.num_nodes)
        hist = dict(graph.label_histogram())
        deg = sorted((graph.degree(v) for v in graph.nodes()), reverse=True)
        return size, hist, deg

    # -- source-side projections --------------------------------------
    def source_row(self, graph):
        """``(size, dense label counts, padded degree row, overflow)`` for
        an arbitrary query graph.

        Labels outside the cached vocabulary cannot match any target
        label, so dropping them only shrinks the common-label term —
        the bound stays a valid lower bound and is exact whenever the
        source's labels all appear in the vocabulary.  Degrees beyond the
        cached width match against implicit zero padding; their sum is
        returned as ``overflow`` and added to every L1 term.
        """
        size, hist, deg = self._profile(graph)
        counts = np.zeros(self.label_counts.shape[1], dtype=np.float64)
        for label, n in hist.items():
            column = self._vocab.get(label)
            if column is not None:
                counts[column] = n
        width = self.deg_sorted.shape[1]
        deg_row = np.zeros(width, dtype=np.float64)
        head = deg[:width]
        if head:
            deg_row[: len(head)] = head
        overflow = float(sum(deg[width:]))
        return size, counts, deg_row, overflow

    # -- vectorized lower bounds --------------------------------------
    def label_size_lb(self, source_graph, target_rows: np.ndarray) -> np.ndarray:
        """Label-histogram matching cost ``max(|g|,|h|) − Σ_l min(c_g, c_h)``
        for the source against every target row (≥ the plain size gap)."""
        size, counts, _, _ = self.source_row(source_graph)
        return self._label_lb(size, counts, target_rows)

    def assignment_lb(self, source_graph, target_rows: np.ndarray) -> np.ndarray:
        """EmbAssi-style linear assignment-cost bound: label matching cost
        plus half the L1 distance between sorted degree sequences."""
        size, counts, deg_row, overflow = self.source_row(source_graph)
        label = self._label_lb(size, counts, target_rows)
        l1 = np.abs(self.deg_sorted[target_rows] - deg_row).sum(axis=1) + overflow
        return label + 0.5 * l1

    def _label_lb(self, size, counts, target_rows):
        common = np.minimum(self.label_counts[target_rows], counts).sum(axis=1)
        return np.maximum(self.sizes[target_rows], size) - common

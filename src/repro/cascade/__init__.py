"""repro.cascade — pluggable lower-bound filter cascade (PR 10).

An ordered, configurable pipeline of cheap-to-expensive lower-bound
stages between candidate enumeration and exact distance verification,
plus the ε-relaxed approximate query mode.  See ``docs/cascade.md``.
"""

from repro.cascade.config import (
    DEFAULT_STAGES,
    FULL_STAGES,
    KNOWN_STAGES,
    CascadeConfig,
    CascadeConfigError,
    resolve_cascade,
)
from repro.cascade.pipeline import FilterCascade, runtime_for
from repro.cascade.stages import (
    BLOCK_EVALS,
    PAIR_BOUNDS,
    assignment_lower_bound,
    degree_lower_bound,
    label_size_lower_bound,
    star_lower_bound,
)

__all__ = [
    "KNOWN_STAGES",
    "DEFAULT_STAGES",
    "FULL_STAGES",
    "CascadeConfig",
    "CascadeConfigError",
    "resolve_cascade",
    "FilterCascade",
    "runtime_for",
    "BLOCK_EVALS",
    "PAIR_BOUNDS",
    "label_size_lower_bound",
    "degree_lower_bound",
    "assignment_lower_bound",
    "star_lower_bound",
]

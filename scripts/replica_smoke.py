#!/usr/bin/env python
"""CI chaos gate for replicated multi-process serving.

Serves one shard bundle (S=4) twice through the real CLI:

1. **Reference** — ``repro serve --shards`` (single-process coordinator).
2. **Chaos** — ``repro serve --shards --replicas 2`` with a ``FaultPlan``
   injected into the service process (via sitecustomize) that kills
   replica 0 of every shard every 40 ops *forever* and wedges one worker
   past the supervisor's wedge timeout.

Both runs answer the same 1000 mixed requests (queries, pings, stats).
The gate asserts:

* zero service exits (both processes finish their conversation and exit 0),
* a clean drain on both sides,
* every query and ping response is **byte-identical** between the runs —
  kills, wedge-kills, restarts, and failovers may move work around but
  must never change an answer bit,
* the chaos actually happened (failovers > 0, restarts > 0),
* no query was shed, failed, or flagged partial.

Run from the repo root: ``python scripts/replica_smoke.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
NUM_REQUESTS = 1000
NUM_SHARDS = 4
REPLICAS = 2


def build_requests() -> list[str]:
    """Deterministic mix: 70% queries over varying (θ, k, quantile),
    20% pings, 10% stats."""
    lines = []
    for i in range(NUM_REQUESTS):
        bucket = i % 10
        if bucket < 7:
            lines.append(json.dumps({
                "id": i, "op": "query", "theta": 6.0 + (i % 4),
                "k": 1 + (i % 5), "quantile": 0.4 + 0.1 * (i % 3),
            }))
        elif bucket < 9:
            lines.append(json.dumps({"id": i, "op": "ping"}))
        else:
            lines.append(json.dumps({"id": i, "op": "stats"}))
    return lines


def run_cli(*argv, timeout=300):
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=ROOT, capture_output=True, text=True, timeout=timeout,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    if completed.returncode != 0:
        print(completed.stdout)
        print(completed.stderr, file=sys.stderr)
        raise SystemExit(f"setup command failed: {argv}")
    return completed


def serve(db, requests, *extra_args, pythonpath, metrics=None):
    argv = [sys.executable, "-m", "repro.cli", "serve", str(db),
            "--concurrency", "2", "--max-queue", str(NUM_REQUESTS + 8),
            *extra_args]
    if metrics is not None:
        argv += ["--metrics", str(metrics)]
    return subprocess.run(
        argv, cwd=ROOT, input="\n".join(requests) + "\n",
        capture_output=True, text=True, timeout=540,
        env={"PYTHONPATH": pythonpath, "PATH": "/usr/bin:/bin"},
    )


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="replica-smoke-"))
    db = tmp / "db.jsonl"
    shards = tmp / "shards"
    metrics = tmp / "metrics.json"

    run_cli("generate", "dblp", "--num-graphs", "48", "--seed", "7",
            "--output", str(db))
    run_cli("shard-build", str(db), "--shards", str(NUM_SHARDS),
            "--output", str(shards), "--vantage-points", "5",
            "--branching", "4")
    manifest = shards / "manifest.json"

    requests = build_requests()
    src_path = str(ROOT / "src")

    # Reference: single-process scatter-gather coordinator.
    reference = serve(db, requests, "--shards", str(manifest),
                      pythonpath=src_path)

    # Chaos: replica 0 of every shard dies every 40 ops (each restarted
    # process serves 39 more and dies again — sustained churn), and one
    # worker wedges past the supervisor's 5s wedge timeout, forcing a
    # wedge-kill plus failover.  Replica 1 never dies, so every answer
    # must still come out bit-identical.
    wedge_token = tmp / "wedge-token"
    wedge_token.write_text("wedge")
    (tmp / "sitecustomize.py").write_text(
        "from repro.resilience import faults\n"
        "from repro.resilience.faults import FaultPlan\n"
        "faults.install(FaultPlan(\n"
        "    replica_kill_every=40,\n"
        "    replica_kill_replicas=(0,),\n"
        f"    replica_wedge_token={str(wedge_token)!r},\n"
        "    replica_wedge_seconds=8.0,\n"
        "))\n"
    )
    chaos = serve(db, requests, "--shards", str(manifest),
                  "--replicas", str(REPLICAS), metrics=metrics,
                  pythonpath=f"{tmp}:{src_path}")

    failures = []
    for name, completed in (("reference", reference), ("chaos", chaos)):
        if completed.returncode != 0:
            failures.append(
                f"{name} service exited {completed.returncode} "
                f"(stderr: {completed.stderr[-2000:]})"
            )
        if ("drained" not in completed.stderr
                or "'clean': True" not in completed.stderr):
            failures.append(
                f"{name}: no clean drain: {completed.stderr[-500:]}"
            )

    # Workers answer out of request order under --concurrency 2, so key
    # every response by id before comparing.
    def by_id(completed, name):
        responses = {}
        for line in completed.stdout.splitlines():
            if not line.strip():
                continue
            obj = json.loads(line)
            responses[obj.get("id")] = (line, obj)
        if len(responses) != NUM_REQUESTS:
            failures.append(
                f"{name}: expected {NUM_REQUESTS} responses, "
                f"got {len(responses)}"
            )
        return responses

    ref_responses = by_id(reference, "reference")
    chaos_responses = by_id(chaos, "chaos")

    compared = mismatched = 0
    for rid in sorted(set(ref_responses) & set(chaos_responses)):
        ref_line, ref_obj = ref_responses[rid]
        chaos_line, chaos_obj = chaos_responses[rid]
        if not (ref_obj.get("ok") and chaos_obj.get("ok")):
            failures.append(
                f"non-ok response: id={rid} "
                f"ref={ref_obj.get('error')} chaos={chaos_obj.get('error')}"
            )
            continue
        result = chaos_obj.get("result", {})
        if result.get("partial"):
            failures.append(
                f"id={rid}: flagged partial under pinned chaos "
                f"(replica 1 never dies — a group went down)"
            )
        if "pong" in result or "answer" in result:
            compared += 1
            if ref_line != chaos_line:  # byte-identical, not just equal
                mismatched += 1
                if mismatched <= 3:
                    failures.append(
                        f"answer diverged under chaos: id={rid}\n"
                        f"  ref:   {ref_line[:220]}\n"
                        f"  chaos: {chaos_line[:220]}"
                    )

    if mismatched:
        failures.append(f"{mismatched}/{compared} answers diverged")
    if compared < NUM_REQUESTS * 8 // 10:
        failures.append(
            f"only {compared} comparable responses — mix generator broke?"
        )
    if wedge_token.exists():
        failures.append("wedge token never claimed — wedge chaos inert")

    if not metrics.exists():
        failures.append("chaos run flushed no metrics document")
    else:
        counters = json.loads(metrics.read_text())["metrics"]["counters"]
        for needed in ("replica.failovers", "replica.restarts"):
            if not counters.get(needed):
                failures.append(
                    f"chaos never exercised {needed} "
                    f"(counters: { {k: v for k, v in counters.items() if k.startswith('replica.')} })"
                )
        print("replica counters:", {
            k: v for k, v in sorted(counters.items())
            if k.startswith("replica.")
        })

    print(f"compared {compared} answers under kill/wedge chaos; "
          f"{mismatched} diverged")
    if failures:
        print("\nREPLICA SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("replica smoke OK: zero exits, clean drains, bit-identical "
          "answers under sustained replica churn")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

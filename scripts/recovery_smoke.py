#!/usr/bin/env python
"""CI power-failure chaos gate for the durability layer (`repro.durability`).

Re-invokes itself as a driver subprocess with ``REPRO_FAULT_KILL`` set,
so the process is killed — ``os._exit(137)``, no cleanup, no atexit —
at randomized fsync/rename points during mutation, checkpoint, backup
and restore.  After every kill the parent asserts the crash-consistency
contract:

* ``base + journal = database``: a fresh ``repro query --journal`` CLI
  process over the survivors answers **byte-for-byte** identically to a
  from-scratch rebuild over the logical database the survivors encode;
* ``checkpoint`` (both the in-process admin op and the offline CLI)
  shrinks the live journal to zero mutation records and a crash at any
  injected point reopens at exactly the old or the new generation;
* a killed ``backup``/``restore`` leaves either nothing or a fully
  verified archive/deployment — never a partial one — and ``repro
  verify`` refuses every single-bit flip injected into an archive;
* the scrubber detects 100% of injected single-bit flips across shard
  npz / manifest / journal artifacts and heals shard corruption from
  the loaded objects, with ``durability.*`` counters in the metrics
  document (validated against ``scripts/metrics_schema.json``).

Run from the repo root: ``python scripts/recovery_smoke.py``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

BASE_GRAPHS = 36
THETA = "10"
QUERY_ARGS = ("--k", "5", "--theta", THETA, "--seed", "3")

#: Kill points swept for the mutate-then-checkpoint driver.  ``None`` is
#: the clean control run; ``site:N`` skips the first N hits so the kill
#: lands mid-sequence, not on the first append.
MUTATE_KILLS = [
    None,
    "durability.journal.append",
    "durability.journal.fsync:2",
    "durability.checkpoint.base",
    "durability.checkpoint.journal",
    "durability.checkpoint.commit",
]


def run_cli(*args, env_extra=None) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"}
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=env, timeout=600,
    )


def run_driver(mode: str, *args, kill: str | None) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"}
    if kill is not None:
        env["REPRO_FAULT_KILL"] = kill
    return subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--driver", mode, *args],
        capture_output=True, text=True, env=env, timeout=600,
    )


# ---------------------------------------------------------------------------
# Driver half (runs in the subprocess that gets killed)
# ---------------------------------------------------------------------------
def driver_mutate(args) -> int:
    """Insert/delete/update, checkpoint online, mutate again.  With
    ``REPRO_FAULT_KILL`` in the environment some step never returns."""
    import repro
    from repro.graphs.io import load_database

    full_db = load_database(args.full)
    index = repro.open_index(
        args.artifact, args.base, mutable=True,
        journal=args.journal, shards=args.sharded,
    )
    for gid in range(BASE_GRAPHS, BASE_GRAPHS + 3):
        index.insert(full_db[gid], full_db.features[gid])
    index.delete(3)
    index.update(7, full_db[BASE_GRAPHS + 3], full_db.features[BASE_GRAPHS + 3])
    index.checkpoint()
    index.insert(full_db[BASE_GRAPHS + 4], full_db.features[BASE_GRAPHS + 4])
    index.delete(11)
    index.close()
    return 0


def driver_backup(args) -> int:
    from repro.durability import create_backup

    create_backup(
        args.out, database=args.base or None, journal=args.journal,
        index=args.index or None, shards=args.shards or None,
    )
    return 0


def driver_restore(args) -> int:
    from repro.durability import restore_backup

    restore_backup(args.backup, args.dest)
    return 0


# ---------------------------------------------------------------------------
# Parent half: assertions after each kill
# ---------------------------------------------------------------------------
def snapshot_logical_database(artifact, base, journal, sharded, out_path):
    """Reopen the survivors (journal replay) and save the logical
    database — tombstones round-trip through the file."""
    import repro
    from repro.graphs.io import save_database

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # torn tails
        reopened = repro.open_index(
            artifact, base, mutable=True, journal=journal, shards=sharded,
        )
    snapshot = reopened.database.subset(range(len(reopened.database)))
    for gid in reopened.database.deleted:
        snapshot.mark_deleted(gid)
    save_database(snapshot, out_path)
    generation = reopened.journal.generation
    records = reopened.journal.num_records
    reopened.close()
    return generation, records


def assert_bit_identical_reopen(
    name, artifact, base, journal, sharded, cli_flags, tmp, failures,
):
    """The gate: CLI query over base+journal vs a from-scratch rebuild."""
    mutated = tmp / f"{name}-mutated.jsonl"
    generation, records = snapshot_logical_database(
        artifact, base, journal, sharded, mutated,
    )
    live = run_cli("query", str(base), *cli_flags,
                   "--journal", str(journal), *QUERY_ARGS)
    rebuilt = run_cli("query", str(mutated), *QUERY_ARGS)
    if live.returncode != 0:
        failures.append(f"{name}: live query failed: {live.stderr}")
    if rebuilt.returncode != 0:
        failures.append(f"{name}: rebuild query failed: {rebuilt.stderr}")
    if live.stdout != rebuilt.stdout:
        failures.append(
            f"{name}: reopen is not bit-identical to rebuild:\n"
            f"--- live (base + journal) ---\n{live.stdout}"
            f"--- rebuilt from scratch ---\n{rebuilt.stdout}"
        )
    return generation, records


def sweep_mutate_kills(tmp, full_path, base_path, idx, bundle, failures):
    from repro.delta.journal import scan_journal

    layouts = [
        ("single", idx, False, ("--index", str(idx)), MUTATE_KILLS),
        ("sharded", bundle / "manifest.json", True,
         ("--shards", str(bundle / "manifest.json")),
         [None, "durability.journal.append",
          "durability.checkpoint.journal", "durability.checkpoint.commit"]),
    ]
    for name, artifact, sharded, cli_flags, kills in layouts:
        for kill in kills:
            tag = f"{name}/{kill or 'clean'}"
            journal = tmp / f"{name}-{(kill or 'clean').replace(':', '-')}.journal"
            driver_args = [
                "--artifact", str(artifact), "--base", str(base_path),
                "--journal", str(journal), "--full", str(full_path),
            ]
            if sharded:
                driver_args.append("--sharded")
            proc = run_driver("mutate", *driver_args, kill=kill)
            if kill is None and proc.returncode != 0:
                failures.append(f"{tag}: clean run failed: {proc.stderr}")
                continue
            if kill is not None and proc.returncode != 137:
                failures.append(
                    f"{tag}: expected the driver killed with exit 137, "
                    f"got {proc.returncode}: {proc.stderr}"
                )
                continue
            generation, records = assert_bit_identical_reopen(
                tag.replace("/", "-"), artifact, base_path, journal,
                sharded, cli_flags, tmp, failures,
            )
            if kill is None:
                # Checkpoint shrank the journal: generation 1 holds only
                # the two post-checkpoint records.
                if generation != 1 or records != 2:
                    failures.append(
                        f"{tag}: expected generation 1 with 2 carried "
                        f"records, got generation {generation} with "
                        f"{records}"
                    )
                # The offline CLI folds those too.
                folded = run_cli("checkpoint", str(base_path),
                                 "--journal", str(journal))
                if folded.returncode != 0:
                    failures.append(
                        f"{tag}: offline checkpoint failed: {folded.stderr}"
                    )
                scan = scan_journal(journal)
                if scan["generation"] != 2 or scan["records"] != 0:
                    failures.append(
                        f"{tag}: offline checkpoint left generation "
                        f"{scan['generation']} with {scan['records']} "
                        f"records, expected a 0-record generation 2"
                    )
                assert_bit_identical_reopen(
                    f"{tag.replace('/', '-')}-folded", artifact, base_path,
                    journal, sharded, cli_flags, tmp, failures,
                )
            elif kill.startswith("durability.checkpoint"):
                expected = 1 if kill.endswith("commit") else 0
                if generation != expected:
                    failures.append(
                        f"{tag}: reopened at generation {generation}, "
                        f"expected {expected} (commit point is the rename)"
                    )


def sweep_backup_restore_kills(tmp, base_path, idx, failures):
    # A journal with real records to snapshot.
    journal = tmp / "bk.journal"
    proc = run_driver(
        "mutate", "--artifact", str(idx), "--base", str(base_path),
        "--journal", str(journal), "--full", str(tmp / "full.jsonl"),
        kill=None,
    )
    if proc.returncode != 0:
        failures.append(f"backup setup mutate failed: {proc.stderr}")
        return

    for kill in ("durability.backup.copy", "durability.backup.manifest",
                 "durability.backup.commit"):
        out = tmp / f"bk-{kill.rsplit('.', 1)[1]}"
        proc = run_driver(
            "backup", "--out", str(out), "--journal", str(journal),
            "--index", str(idx), kill=kill,
        )
        if proc.returncode != 137:
            failures.append(f"{kill}: expected exit 137, got "
                            f"{proc.returncode}: {proc.stderr}")
            continue
        committed = kill.endswith("commit")
        if out.exists() != committed:
            failures.append(
                f"{kill}: backup dir {'missing' if committed else 'exists'} "
                f"after the kill — partial archive"
            )
        if not committed:
            # Stale staging from the hard kill must never block a retry.
            retry = run_driver(
                "backup", "--out", str(out), "--journal", str(journal),
                "--index", str(idx), kill=None,
            )
            if retry.returncode != 0:
                failures.append(
                    f"{kill}: retry after the kill failed: {retry.stderr}"
                )
        verify = run_cli("verify", str(out))
        if verify.returncode != 0:
            failures.append(
                f"{kill}: backup fails verify after "
                f"{'the kill' if committed else 'the retry'}: "
                f"{verify.stderr}"
            )

    # A clean archive for the restore sweep and the flip audit.
    archive = tmp / "bk-clean"
    proc = run_driver("backup", "--out", str(archive),
                      "--journal", str(journal), "--index", str(idx),
                      kill=None)
    if proc.returncode != 0:
        failures.append(f"clean backup failed: {proc.stderr}")
        return

    for kill in ("durability.restore.install", "durability.restore.commit"):
        dest = tmp / f"restored-{kill.rsplit('.', 1)[1]}"
        proc = run_driver("restore", "--backup", str(archive),
                          "--dest", str(dest), kill=kill)
        if proc.returncode != 137:
            failures.append(f"{kill}: expected exit 137, got "
                            f"{proc.returncode}: {proc.stderr}")
            continue
        committed = kill.endswith("commit")
        if dest.exists() != committed:
            failures.append(
                f"{kill}: destination {'missing' if committed else 'exists'} "
                f"after the kill — partial install"
            )

    # Every single-bit flip in the archive is refused, loudly.  (The
    # checkpointed journal pinned its own base, so that file — not the
    # original base.jsonl — is what the archive carries.)
    victim = next(archive.glob("*.base-gen*.jsonl"))
    pristine = victim.read_bytes()
    flipped = bytearray(pristine)
    flipped[len(flipped) // 2] ^= 0x01
    victim.write_bytes(bytes(flipped))
    if run_cli("verify", str(archive)).returncode == 0:
        failures.append("verify accepted an archive with a flipped bit")
    if run_cli("restore", str(archive), str(tmp / "poisoned")).returncode == 0:
        failures.append("restore installed from an archive that fails verify")
    if (tmp / "poisoned").exists():
        failures.append("refused restore still wrote its destination")
    victim.write_bytes(pristine)

    # Clean restore round-trips: the restored deployment answers
    # byte-identically to the original.
    restored = tmp / "restored-clean"
    if run_cli("restore", str(archive), str(restored)).returncode != 0:
        failures.append("clean restore failed")
        return
    live = run_cli("query", str(base_path), "--index", str(idx),
                   "--journal", str(journal), *QUERY_ARGS)
    restored_base = next(restored.glob("*.base-gen*.jsonl"))
    again = run_cli("query", str(restored_base),
                    "--index", str(restored / "idx.npz"),
                    "--journal", str(restored / "bk.journal"), *QUERY_ARGS)
    if live.stdout != again.stdout or again.returncode != 0:
        failures.append(
            f"restored deployment answers differently:\n--- original ---\n"
            f"{live.stdout}--- restored ---\n{again.stdout}{again.stderr}"
        )


def scrub_gate(tmp, base_path, bundle, failures):
    """In-process: the scrubber must detect every injected flip and heal
    shard corruption without moving query answers."""
    import repro
    from repro import obs
    from repro.durability import Scrubber, verify_deployment

    manifest_path = bundle / "manifest.json"
    journal = tmp / "scrub.journal"
    with repro.observe() as run:
        index = repro.open_index(
            manifest_path, base_path, mutable=True,
            journal=journal, shards=True,
        )
        from repro.graphs.io import load_database

        full_db = load_database(tmp / "full.jsonl")
        index.insert(full_db[40], full_db.features[40])
        index.delete(5)
        theta = float(THETA)
        before = index.query(lambda g: True, theta, 5)
        scrubber = Scrubber(index, database_path=base_path)

        detected = healed = injected = 0
        for victim in sorted(bundle.glob("*.npz")) + [manifest_path]:
            pristine = victim.read_bytes()
            corrupt = bytearray(pristine)
            corrupt[len(corrupt) // 2] ^= 0x01
            victim.write_bytes(bytes(corrupt))
            injected += 1
            report = scrubber.scrub_once()
            detected += 1 if report["corruptions"] else 0
            healed += 1 if report["healed"] else 0
        # A flipped *non-final* journal record: detected, escalated,
        # never silently healed (the journal is the only copy).
        lines = journal.read_bytes().splitlines(keepends=True)
        record = bytearray(lines[1])
        record[14] ^= 0x01
        lines[1] = bytes(record)
        pristine_journal = journal.read_bytes()
        journal.write_bytes(b"".join(lines))
        injected += 1
        report = scrubber.scrub_once()
        if report["corruptions"]:
            detected += 1
        if report["healed"]:
            failures.append("scrubber 'healed' a corrupt journal")
        if not report["escalations"]:
            failures.append("journal corruption did not escalate")
        journal.write_bytes(pristine_journal)

        if detected != injected:
            failures.append(
                f"scrubber detected {detected}/{injected} injected flips"
            )
        if healed != injected - 1:  # every artifact but the journal heals
            failures.append(
                f"scrubber healed {healed}/{injected - 1} healable flips"
            )
        if not verify_deployment(bundle)["ok"]:
            failures.append("bundle does not verify after the heals")
        after = index.query(lambda g: True, theta, 5)
        if (after.answer, after.gains) != (before.answer, before.gains):
            failures.append("queries moved while the scrubber healed")
        index.close()

        metrics_path = tmp / "scrub-metrics.json"
        run.write(str(metrics_path))

    validate = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "validate_metrics.py"),
         str(metrics_path),
         "--require", "durability.scrub_cycles",
         "--require", "durability.scrub_corruptions",
         "--require", "durability.scrub_heals"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=600,
    )
    if validate.returncode != 0:
        failures.append(
            f"scrub metrics fail schema validation: "
            f"{validate.stdout}{validate.stderr}"
        )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--driver", choices=["mutate", "backup", "restore"])
    parser.add_argument("--artifact")
    parser.add_argument("--base")
    parser.add_argument("--journal")
    parser.add_argument("--full")
    parser.add_argument("--sharded", action="store_true")
    parser.add_argument("--out")
    parser.add_argument("--index")
    parser.add_argument("--shards")
    parser.add_argument("--backup")
    parser.add_argument("--dest")
    args = parser.parse_args()
    if args.driver == "mutate":
        return driver_mutate(args)
    if args.driver == "backup":
        return driver_backup(args)
    if args.driver == "restore":
        return driver_restore(args)

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        full_path = tmp / "full.jsonl"
        generated = run_cli("generate", "dud", "--num-graphs", "44",
                            "--seed", "3", "--output", str(full_path))
        if generated.returncode != 0:
            print(generated.stderr, file=sys.stderr)
            return 1

        from repro.graphs.io import load_database, save_database

        full_db = load_database(full_path)
        base_path = tmp / "base.jsonl"
        save_database(full_db.subset(range(BASE_GRAPHS)), base_path)

        idx = tmp / "idx.npz"
        bundle = tmp / "bundle"
        for step in (
            run_cli("build-index", str(base_path), "--output", str(idx),
                    "--seed", "3"),
            run_cli("shard-build", str(base_path), "--output", str(bundle),
                    "--shards", "4", "--seed", "3"),
        ):
            if step.returncode != 0:
                print(step.stderr, file=sys.stderr)
                return 1

        sweep_mutate_kills(tmp, full_path, base_path, idx, bundle, failures)
        sweep_backup_restore_kills(tmp, base_path, idx, failures)
        scrub_gate(tmp, base_path, bundle, failures)

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("recovery smoke: OK (kill -9 at every injected fsync/rename "
          "point reopens bit-identical; checkpoint shrinks the journal; "
          "backup/restore all-or-nothing; scrubber detected and healed "
          "every injected flip)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Assemble results/REPORT.md from the per-experiment artifacts.

After a benchmark run (``pytest benchmarks/ --benchmark-only`` or
``repro experiment --all``), this script stitches every table/chart in
``results/`` into one reviewable document, ordered by the paper's
experiment numbering.

    python scripts/build_report.py
"""

from __future__ import annotations

import datetime
import platform
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
RESULTS = ROOT / "results"

#: Presentation order: prefix → section heading.
SECTIONS = (
    ("fig2a", "Fig. 2(a) — DisC answer-set growth"),
    ("fig2b", "Fig. 2(b) — Algorithm 1 over NN-indexes"),
    ("table4", "Table 4 — answer-set quality"),
    ("fig5ab", "Figs. 5(a–b) — distance CDFs"),
    ("fig5ce", "Figs. 5(c–e) — distance histograms"),
    ("fig5fh", "Figs. 5(f–h) — vantage FPR"),
    ("fig5ik", "Figs. 5(i–k) — query time vs θ"),
    ("fig5l6a", "Figs. 5(l)/6(a) — π̂ ladder gap"),
    ("fig6bd", "Figs. 6(b–d) — query time vs size"),
    ("fig6eg", "Figs. 6(e–g) — query time vs k"),
    ("fig6h", "Fig. 6(h) — feature dimensionality"),
    ("fig6i", "Fig. 6(i) — interactive zoom"),
    ("fig6j", "Fig. 6(j) — zoom scaling"),
    ("fig6k", "Fig. 6(k) — index construction"),
    ("fig6l", "Fig. 6(l) — index memory"),
    ("fig7", "Fig. 7 — qualitative comparison"),
    ("ablation", "Ablations (beyond the paper)"),
)


def main() -> int:
    if not RESULTS.is_dir():
        print("results/ not found — run the benchmarks first", file=sys.stderr)
        return 1
    artifacts = sorted(RESULTS.glob("*.txt"))
    if not artifacts:
        print("results/ is empty — run the benchmarks first", file=sys.stderr)
        return 1

    lines = [
        "# Reproduction report",
        "",
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} on "
        f"Python {platform.python_version()} ({platform.machine()}).",
        "",
        "Per-experiment tables and ASCII charts as produced by the benchmark",
        "harness; see EXPERIMENTS.md for the paper-vs-measured comparison.",
        "",
    ]
    used: set[Path] = set()
    for prefix, heading in SECTIONS:
        matching = [p for p in artifacts if p.name.startswith(prefix)]
        if not matching:
            continue
        lines += [f"## {heading}", ""]
        for path in matching:
            used.add(path)
            lines += ["```", path.read_text().rstrip(), "```", ""]
    leftovers = [p for p in artifacts if p not in used and p.name != "REPORT.md"]
    if leftovers:
        lines += ["## Other artifacts", ""]
        for path in leftovers:
            lines += ["```", path.read_text().rstrip(), "```", ""]

    output = RESULTS / "REPORT.md"
    output.write_text("\n".join(lines) + "\n")
    print(f"wrote {output} from {len(artifacts)} artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())

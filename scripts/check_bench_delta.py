"""Guard the bitset kernel microbenchmarks against perf regressions.

Re-runs :func:`repro.bench.hotpath.kernel_microbench` at the same universe
size as the committed ``BENCH_bitset_hotpath.json`` and fails when any
primitive's median latency regressed by more than the threshold (default
25%) against that baseline.

Timing baselines are machine-specific, so the check is **opt-in on CI**:
when ``CI`` is set it only runs if ``REPRO_BENCH_DELTA=1`` is also set
(flip it in the workflow to enable).  It is likewise skipped — exit 0,
not an error — when the benchmark document has not been committed yet.

It also structurally validates the committed ``BENCH_cascade.json``
(exact-call reduction >= 2x, measured pi-loss <= epsilon per configured
epsilon, per-stage prune sanity) — that part is machine-independent, so
it always runs, CI or not.

Usage::

    python scripts/check_bench_delta.py [--threshold 0.25] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_JSON = _REPO_ROOT / "BENCH_bitset_hotpath.json"
_CASCADE_JSON = _REPO_ROOT / "BENCH_cascade.json"
_META_KEYS = ("nbits", "rows")


def check_cascade_document(path: Path = _CASCADE_JSON) -> int:
    """Validate the committed cascade benchmark gates (structural, no
    re-run): >= 2x exact-call reduction, pi-loss <= epsilon, prune
    counters consistent.  Skips cleanly when not committed yet."""
    if not path.exists():
        print(f"check_bench_delta: skipped — {path} not committed yet")
        return 0
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    sys.path.insert(0, str(_REPO_ROOT / "benchmarks"))
    from bench_cascade import check_document

    document = json.loads(path.read_text())
    problems = check_document(document)
    if problems:
        for problem in problems:
            print(f"FAIL {path.name}: {problem}")
        return 1
    reduction = document["call_reduction"]["reduction_vs_unfiltered"]
    print(f"OK: {path.name} — {reduction}x exact-call reduction, "
          f"pi-loss within epsilon for every configured epsilon")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=_DEFAULT_JSON,
                        help="committed benchmark document to compare against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown per kernel "
                             "(default: 0.25 = +25%%)")
    parser.add_argument("--force", action="store_true",
                        help="run even on CI without REPRO_BENCH_DELTA=1")
    args = parser.parse_args(argv)

    # Structural gates on the cascade benchmark document: machine
    # independent, so they run everywhere (before the timing opt-out).
    cascade_status = check_cascade_document()
    if cascade_status:
        return cascade_status

    if (os.environ.get("CI") and not os.environ.get("REPRO_BENCH_DELTA")
            and not args.force):
        print("check_bench_delta: skipped on CI "
              "(set REPRO_BENCH_DELTA=1 to opt in)")
        return 0
    if not args.json.exists():
        print(f"check_bench_delta: skipped — {args.json} not committed yet")
        return 0

    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.bench.hotpath import kernel_microbench

    baseline = json.loads(args.json.read_text()).get("kernels")
    if not baseline:
        print("check_bench_delta: skipped — document has no kernel baselines")
        return 0

    fresh = kernel_microbench(int(baseline["nbits"]), rows=int(baseline["rows"]))
    regressions = []
    print(f"{'kernel':<26}{'baseline ms':>12}{'fresh ms':>10}{'delta':>8}")
    for name, base_ms in baseline.items():
        if name in _META_KEYS:
            continue
        got_ms = fresh[name]
        delta = (got_ms - base_ms) / max(base_ms, 1e-9)
        flag = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"{name:<26}{base_ms:>12.4f}{got_ms:>10.4f}{delta:>+7.0%}{flag}")
        if delta > args.threshold:
            regressions.append(name)

    if regressions:
        print(f"FAIL: {len(regressions)} kernel(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print(f"OK: all kernels within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

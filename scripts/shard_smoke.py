#!/usr/bin/env python
"""CI smoke test for the sharded NB-Index.

Drives the real CLI end to end: generate a small database, build a
2-shard bundle with ``repro shard-build``, run the same query through
``repro query`` (single index, built in-process) and ``repro query
--shards`` (scatter-gather coordinator), and assert the two outputs are
**byte-for-byte identical** — same answer ids, gains, π, ordering, and
formatting.  Then queries the bundle through ``repro serve --shards`` over
the line protocol and checks the served answer and per-shard stats.

Run from the repo root: ``python scripts/shard_smoke.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def run_cli(*args, stdin: str | None = None) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        input=stdin, capture_output=True, text=True, env=env, timeout=600,
    )


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        db = tmp / "db.jsonl"
        bundle = tmp / "shards"

        generated = run_cli(
            "generate", "dud", "--num-graphs", "50", "--seed", "3",
            "--output", str(db),
        )
        if generated.returncode != 0:
            print(generated.stderr, file=sys.stderr)
            return 1

        built = run_cli(
            "shard-build", str(db), "--output", str(bundle),
            "--shards", "2", "--seed", "3",
        )
        if built.returncode != 0:
            failures.append(f"shard-build failed: {built.stderr}")
        manifest = bundle / "manifest.json"
        if not manifest.exists():
            failures.append("shard-build wrote no manifest.json")
        if failures:
            for failure in failures:
                print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
            return 1

        # Byte-for-byte: single-index output vs coordinator output.
        query_args = (str(db), "--k", "5", "--theta", "10", "--seed", "3")
        single = run_cli("query", *query_args)
        sharded = run_cli("query", *query_args, "--shards", str(manifest))
        if single.returncode != 0:
            failures.append(f"single query failed: {single.stderr}")
        if sharded.returncode != 0:
            failures.append(f"sharded query failed: {sharded.stderr}")
        if single.stdout != sharded.stdout:
            failures.append(
                "sharded output differs from single index:\n"
                f"--- single ---\n{single.stdout}"
                f"--- sharded ---\n{sharded.stdout}"
            )

        # The bundle serves: one query + stats over the line protocol.
        requests = "\n".join([
            json.dumps({"id": 1, "op": "query", "theta": 10.0, "k": 5}),
            json.dumps({"id": 2, "op": "stats"}),
        ]) + "\n"
        served = run_cli(
            "serve", str(db), "--shards", str(manifest), stdin=requests
        )
        if served.returncode != 0:
            failures.append(f"serve --shards failed: {served.stderr}")
        else:
            responses = [
                json.loads(line) for line in served.stdout.splitlines()
            ]
            if len(responses) != 2 or not all(r["ok"] for r in responses):
                failures.append(f"serve responses not ok: {served.stdout}")
            else:
                answer = responses[0]["result"]["answer"]
                expected = [
                    int(line.split()[1])
                    for line in single.stdout.splitlines()
                    if line and line.split()[0].isdigit()
                ]
                if answer != expected:
                    failures.append(
                        f"served answer {answer} != CLI answer {expected}"
                    )
                index_stats = responses[1]["result"]["index"]
                if index_stats.get("num_shards") != 2:
                    failures.append(
                        f"stats missing shard roll-up: {index_stats}"
                    )

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("shard smoke: OK (2-shard bundle byte-identical to single index)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI smoke test for the query service.

Starts ``repro serve`` as a real subprocess over a small SBM-backed
dataset (the DBLP analog), fires a mixed batch of valid, invalid, and
oversized requests at it — with a chaos ``FaultPlan`` active inside the
service via ``REPRO_FAULT_SLOW`` wiring below — and asserts:

* the process never exits mid-conversation (zero crashes),
* every request line gets exactly one response line, ids echoed,
* valid queries succeed, invalid/oversized are rejected with typed codes,
* the drain at EOF is clean.

Run from the repo root: ``python scripts/service_smoke.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
NUM_REQUESTS = 50


def build_requests() -> list[str]:
    """A deterministic mix: ~60% valid, the rest malformed in every way
    the protocol rejects."""
    lines = []
    for i in range(NUM_REQUESTS):
        bucket = i % 10
        if bucket < 5:  # valid queries with varying parameters
            lines.append(json.dumps({
                "id": i, "op": "query", "theta": 6.0 + (i % 4),
                "k": 1 + (i % 3), "quantile": 0.5 + 0.1 * (i % 3),
            }))
        elif bucket == 5:
            lines.append(json.dumps({"id": i, "op": "ping"}))
        elif bucket == 6:  # invalid: bad theta
            lines.append(json.dumps({"id": i, "op": "query",
                                     "theta": -1, "k": 2}))
        elif bucket == 7:  # invalid: not JSON
            lines.append(f"garbage line {i}")
        elif bucket == 8:  # oversized: blows the request byte cap
            lines.append(json.dumps({"id": i, "op": "query", "theta": 8.0,
                                     "k": 2, "pad": "x" * (70 * 1024)}))
        else:  # unknown op
            lines.append(json.dumps({"id": i, "op": "explode"}))
    return lines


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    db = tmp / "db.jsonl"
    idx = tmp / "idx.npz"
    crash_log = tmp / "crashes.jsonl"
    metrics = tmp / "metrics.json"

    def run_cli(*argv):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            cwd=ROOT, capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        if completed.returncode != 0:
            print(completed.stdout)
            print(completed.stderr, file=sys.stderr)
            raise SystemExit(f"setup command failed: {argv}")
        return completed

    # The DBLP analog rides on the SBM substrate — a small community-
    # structured dataset, built and indexed through the real CLI.
    run_cli("generate", "dblp", "--num-graphs", "40", "--seed", "7",
            "--output", str(db))
    run_cli("build-index", str(db), "--output", str(idx),
            "--vantage-points", "5", "--branching", "4")

    requests = build_requests()
    # sitecustomize injects the chaos plan into the service process:
    # one slow query via the service's own fault hook site.
    (tmp / "sitecustomize.py").write_text(
        "from repro.resilience import faults\n"
        "from repro.resilience.faults import FaultPlan\n"
        "faults.install(FaultPlan(slow_sites={'service.query': 0.3},"
        " slow_limit=1))\n"
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", str(db),
         "--index", str(idx), "--concurrency", "2", "--max-queue", "8",
         "--deadline-ms", "60000", "--crash-log", str(crash_log),
         "--metrics", str(metrics)],
        cwd=ROOT, input="\n".join(requests) + "\n",
        capture_output=True, text=True, timeout=600,
        env={"PYTHONPATH": f"{tmp}:{ROOT / 'src'}", "PATH": "/usr/bin:/bin"},
    )

    failures = []
    if completed.returncode != 0:
        failures.append(f"service exited {completed.returncode} "
                        f"(stderr: {completed.stderr[-2000:]})")

    responses = [json.loads(line) for line in completed.stdout.splitlines()
                 if line.strip()]
    # Shed requests answer too (typed overloaded), so: one response per
    # request, in request order for the ones that carried an id.
    if len(responses) != len(requests):
        failures.append(
            f"{len(responses)} responses for {len(requests)} requests")

    ok = sum(1 for r in responses if r.get("ok"))
    codes = {}
    for response in responses:
        if not response.get("ok"):
            code = response["error"]["code"]
            codes[code] = codes.get(code, 0) + 1
    print(f"responses: {len(responses)}  ok: {ok}  rejections: {codes}")

    if not ok:
        failures.append("no successful responses at all")
    if codes.get("invalid_request", 0) < NUM_REQUESTS * 3 // 10:
        failures.append(f"expected the malformed 40% to be rejected "
                        f"as invalid_request, got {codes}")
    unexpected = set(codes) - {"invalid_request", "overloaded"}
    if unexpected:
        failures.append(f"unexpected error codes: {unexpected}")
    if "drained" not in completed.stderr or "'clean': True" not in completed.stderr:
        failures.append(f"no clean drain in stderr: {completed.stderr[-500:]}")
    if crash_log.exists() and crash_log.read_text().strip():
        failures.append(f"crash journal not empty: {crash_log.read_text()}")
    if not metrics.exists():
        failures.append("metrics document was not flushed on drain")
    else:
        counters = json.loads(metrics.read_text())["metrics"]["counters"]
        # The pump offers all 50 lines at once, so admissions saturate at
        # max_queue + concurrency and the rest shed — that's the design.
        admitted = counters.get("service.admitted", 0)
        shed = counters.get("service.shed", 0)
        if admitted < 10:
            failures.append(f"fewer admissions than capacity: {counters}")
        if admitted + shed + codes.get("invalid_request", 0) != NUM_REQUESTS:
            failures.append(
                f"accounting leak: admitted={admitted} shed={shed} "
                f"invalid={codes.get('invalid_request', 0)} "
                f"!= {NUM_REQUESTS}")

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("service smoke: OK (zero process exits, clean drain)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

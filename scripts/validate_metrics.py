#!/usr/bin/env python3
"""Validate a repro.obs metrics document against scripts/metrics_schema.json.

Used by CI after ``repro query --metrics out.json`` on a tiny synthetic
database, and handy for checking any ``--metrics`` / benchmark-sidecar
artifact by hand::

    python scripts/validate_metrics.py out.json \
        --require query.count --require engine.evaluations

The validator is dependency-free: it implements exactly the JSON-Schema
subset the schema file uses (type, const, required, properties,
additionalProperties, items, ``$ref`` into ``$defs``) plus semantic
checks the schema language can't express (histogram bucket/count
arities, timer and span consistency, cascade per-stage counter
coherence).  ``--require NAME`` additionally
asserts a counter is present and positive — CI uses it to pin the
instrumented query path to the bench-script counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "metrics_schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


class ValidationError(Exception):
    pass


def _fail(path: str, message: str):
    raise ValidationError(f"{path or '$'}: {message}")


def _check_type(value, expected: str, path: str) -> None:
    python_type = _TYPES[expected]
    ok = isinstance(value, python_type)
    if ok and expected in ("integer", "number") and isinstance(value, bool):
        ok = False  # bool is an int subclass; schemas mean numbers
    if expected == "integer" and isinstance(value, float):
        ok = value == int(value)  # JSON has one number type
    if not ok:
        _fail(path, f"expected {expected}, got {type(value).__name__}")


def validate_node(value, schema: dict, root: dict, path: str = "") -> None:
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/$defs/"):
            _fail(path, f"unsupported $ref {ref!r}")
        validate_node(value, root["$defs"][ref.split("/")[-1]], root, path)
        return
    if "const" in schema and value != schema["const"]:
        _fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                _fail(path, f"missing required key {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, item in value.items():
            child_path = f"{path}.{name}" if path else name
            if name in properties:
                validate_node(item, properties[name], root, child_path)
            elif additional is False:
                _fail(path, f"unexpected key {name!r}")
            elif isinstance(additional, dict):
                validate_node(item, additional, root, child_path)
    if isinstance(value, list) and "items" in schema:
        for position, item in enumerate(value):
            validate_node(item, schema["items"], root, f"{path}[{position}]")


def _cascade_checks(document: dict, schema: dict) -> None:
    """Cascade counters are structured: ``cascade.<stage>.<metric>``.

    The stage must come from the schema's ``cascade_stages`` enum (the
    mirror of ``repro.cascade.KNOWN_STAGES``) and the metric suffix from
    ``cascade_stage_metrics``; a stage that reports ``evals`` must also
    report ``prunes`` with ``prunes <= evals`` — a pruned pair is by
    definition one the stage evaluated.
    """
    stages = set(schema["$defs"]["cascade_stages"]["enum"])
    metrics = set(schema["$defs"]["cascade_stage_metrics"]["enum"])
    counters = document["metrics"]["counters"]
    for name in counters:
        if not name.startswith("cascade."):
            continue
        path = f"metrics.counters.{name}"
        parts = name.split(".")
        if len(parts) != 3:
            _fail(path, "cascade counters must be cascade.<stage>.<metric>")
        _, stage, metric = parts
        if stage not in stages:
            _fail(path, f"unknown cascade stage {stage!r} "
                        f"(schema allows: {', '.join(sorted(stages))})")
        if metric not in metrics:
            _fail(path, f"unknown cascade metric {metric!r} "
                        f"(schema allows: {', '.join(sorted(metrics))})")
    for stage in stages:
        evals = counters.get(f"cascade.{stage}.evals")
        if evals is None:
            continue
        prunes = counters.get(f"cascade.{stage}.prunes")
        if prunes is None:
            _fail(f"metrics.counters.cascade.{stage}.evals",
                  f"stage reports evals but no cascade.{stage}.prunes")
        if prunes > evals:
            _fail(f"metrics.counters.cascade.{stage}.prunes",
                  f"prunes ({prunes}) exceed evals ({evals})")
    for name in document["metrics"]["timers"]:
        if not name.startswith("cascade."):
            continue
        parts = name.split(".")
        if len(parts) != 3 or parts[1] not in stages or parts[2] != "seconds":
            _fail(f"metrics.timers.{name}",
                  "cascade timers must be cascade.<known-stage>.seconds")


def _semantic_checks(document: dict) -> None:
    """Consistency rules beyond the schema subset."""
    for name, entry in document["metrics"]["histograms"].items():
        path = f"metrics.histograms.{name}"
        if len(entry["counts"]) != len(entry["buckets"]) + 1:
            _fail(path, "counts must have one overflow slot beyond buckets")
        if sum(entry["counts"]) != entry["count"]:
            _fail(path, "bucket counts must sum to count")
        if list(entry["buckets"]) != sorted(entry["buckets"]):
            _fail(path, "bucket bounds must be sorted")
    for name, entry in document["metrics"]["timers"].items():
        path = f"metrics.timers.{name}"
        if entry["count"] < 1:
            _fail(path, "recorded timer must have count >= 1")
        if not entry["min"] <= entry["max"]:
            _fail(path, "min must be <= max")

    def walk(span, path):
        if span["seconds"] < 0:
            _fail(path, "span seconds must be non-negative")
        for position, child in enumerate(span["children"]):
            walk(child, f"{path}.children[{position}]")

    for position, span in enumerate(document["spans"]):
        walk(span, f"spans[{position}]")


def validate(document: dict, required_counters=()) -> list[str]:
    """All problems found (empty list == valid)."""
    schema = json.loads(SCHEMA_PATH.read_text())
    problems: list[str] = []
    try:
        validate_node(document, schema, schema)
        _semantic_checks(document)
        _cascade_checks(document, schema)
    except ValidationError as error:
        return [str(error)]
    counters = document["metrics"]["counters"]
    for name in required_counters:
        if counters.get(name, 0) <= 0:
            problems.append(f"required counter {name!r} missing or zero")
    return problems


def validate_index_stats(document: dict) -> list[str]:
    """Validate a normalized ``Index.stats()`` dict (JSON) against the
    ``index_stats`` definition — the one key schema NBIndex,
    ShardedIndex and MutableIndex all speak."""
    schema = json.loads(SCHEMA_PATH.read_text())
    try:
        validate_node(
            document, schema["$defs"]["index_stats"], schema
        )
    except ValidationError as error:
        return [str(error)]
    problems: list[str] = []
    shards = document.get("shards")
    if shards is not None and len(shards) != document["num_shards"]:
        problems.append(
            f"shards lists {len(shards)} entries but num_shards is "
            f"{document['num_shards']}"
        )
    delta = document.get("delta")
    if delta is not None:
        if delta["indexed_graphs"] + delta["memtable_size"] != document["num_graphs"]:
            problems.append(
                "delta.indexed_graphs + delta.memtable_size must equal "
                "num_graphs"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("document", help="metrics JSON file to validate")
    parser.add_argument(
        "--require", action="append", default=[], metavar="COUNTER",
        help="counter that must be present and positive (repeatable)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="the document is a normalized Index.stats() dict (from "
             "NBIndex/ShardedIndex/MutableIndex) rather than a metrics "
             "document",
    )
    args = parser.parse_args(argv)
    try:
        document = json.loads(Path(args.document).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read {args.document}: {error}", file=sys.stderr)
        return 2
    if args.stats:
        problems = validate_index_stats(document)
        if args.require:
            problems.append("--require applies to metrics documents only")
        if problems:
            for problem in problems:
                print(f"INVALID {args.document}: {problem}", file=sys.stderr)
            return 1
        print(
            f"OK {args.document}: index stats — {document['num_graphs']} "
            f"graphs, {document['num_shards']} shard(s)"
            + (", mutable" if document.get("delta") else "")
        )
        return 0
    problems = validate(document, args.require)
    if problems:
        for problem in problems:
            print(f"INVALID {args.document}: {problem}", file=sys.stderr)
        return 1
    counters = len(document["metrics"]["counters"])
    print(f"OK {args.document}: schema {document['schema']}, "
          f"{counters} counters, {len(document['spans'])} root spans")
    return 0


if __name__ == "__main__":
    sys.exit(main())
